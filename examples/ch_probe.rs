use std::sync::Arc;
use std::time::Instant;
use watter_core::{NodeId, TravelCost};
use watter_road::ChOracle;
use watter_workload::CityProfile;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let graph = Arc::new(CityProfile::Chengdu.city_config(side).generate(7));
    let n = graph.node_count();
    let t0 = Instant::now();
    let ch = ChOracle::build(Arc::clone(&graph));
    let build = t0.elapsed().as_secs_f64();
    eprintln!(
        "side={side} n={n} build={build:.1}s shortcuts={} ({:.2}x n) bytes={}",
        ch.shortcut_count(),
        ch.shortcut_count() as f64 / n as f64,
        ch.resident_bytes()
    );
    let mut acc = 0i64;
    let t0 = Instant::now();
    let q = 2000;
    for i in 0..q {
        let a = NodeId(((i * 37) % n) as u32);
        let b = NodeId(((i * 101 + 13) % n) as u32);
        acc = acc.wrapping_add(ch.cost(a, b));
    }
    std::hint::black_box(acc);
    eprintln!("query={:.1}us", t0.elapsed().as_secs_f64() * 1e6 / q as f64);
    let mut tot = [0usize; 5];
    for i in 0..200 {
        let a = NodeId(((i * 37) % n) as u32);
        let b = NodeId(((i * 101 + 13) % n) as u32);
        let (_, s) = ch.cost_with_stats(a, b);
        for (t, v) in tot.iter_mut().zip(s) {
            *t += v;
        }
    }
    eprintln!(
        "per-query: settled={} relaxed={} stalled={} scanned={} entries={}",
        tot[0] / 200,
        tot[1] / 200,
        tot[2] / 200,
        tot[3] / 200,
        tot[4] / 200
    );
}
