//! Simulate a rush-hour window in each synthetic city.
//!
//! Shows the workload substrate end-to-end: three city profiles with
//! different demand concentration, the rush-hour temporal model, commuter
//! flow echoes, and how the same WATTER dispatcher behaves across cities —
//! the cross-dataset comparison underlying the paper's Figures 3–4.
//!
//! ```text
//! cargo run --release --example city_day
//! ```

use watter::prelude::*;
use watter::runner::{run_algorithm, Algo};

fn main() {
    println!(
        "{:<6} {:>7} {:>8} {:>10} {:>12} {:>11} {:>9} {:>8}",
        "city", "orders", "workers", "mean trip", "extra(s)", "unified", "service", "avg|g|"
    );
    for profile in CityProfile::ALL {
        let params = ScenarioParams::default_for(profile);
        let scenario = Scenario::build(params);
        let stats = run_algorithm(&scenario, Algo::WatterOnline);
        println!(
            "{:<6} {:>7} {:>8} {:>9.0}s {:>12.0} {:>11.0} {:>8.1}% {:>8.2}",
            profile.tag(),
            scenario.orders.len(),
            scenario.workers.len(),
            scenario.mean_direct_cost(),
            stats.extra_time,
            stats.unified_cost,
            stats.service_rate_pct,
            stats.mean_group_size
        );
    }

    // Demand concentration diagnostic: share of pick-ups in the busiest
    // 10% of grid cells (NYC-like demand should be the most concentrated).
    println!("\npick-up concentration (busiest 10% of cells):");
    for profile in CityProfile::ALL {
        let scenario = Scenario::build(ScenarioParams::default_for(profile));
        let mut counts = vec![0usize; scenario.grid.cells()];
        for o in &scenario.orders {
            counts[scenario.grid.cell_of(o.pickup)] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = counts.len().div_ceil(10);
        let share: usize = counts[..top].iter().sum();
        println!(
            "  {:<6} {:>5.1}%",
            profile.tag(),
            100.0 * share as f64 / scenario.orders.len() as f64
        );
    }
}
