//! Compare all dispatch algorithms on one scenario.
//!
//! Runs GDP, GAS, the non-sharing baseline and the three WATTER variants
//! (online / timeout / expect) on the same synthetic city and order stream,
//! printing the paper's four measurements per algorithm — a miniature of
//! Figure 3's default point.
//!
//! ```text
//! cargo run --release --example compare_strategies [profile] [n_orders] [n_workers]
//! ```

use std::sync::Arc;
use watter::prelude::*;
use watter::runner::{run_algorithm, Algo};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = match args.get(1).map(|s| s.as_str()) {
        Some("nyc") => CityProfile::Nyc,
        Some("xia") => CityProfile::Xian,
        _ => CityProfile::Chengdu,
    };
    let mut params = ScenarioParams::default_for(profile);
    if let Some(n) = args.get(2).and_then(|s| s.parse().ok()) {
        params.n_orders = n;
    }
    if let Some(m) = args.get(3).and_then(|s| s.parse().ok()) {
        params.n_workers = m;
    }

    println!(
        "profile={} n={} m={} τ={} Kw={} η={} Δt={}s",
        profile.tag(),
        params.n_orders,
        params.n_workers,
        params.deadline_scale,
        params.max_capacity,
        params.wait_scale,
        params.check_period
    );

    // Evaluation scenario + a disjoint training scenario (different seed =
    // a different "day", as the paper trains on other days of the month).
    let scenario = Scenario::build(params.clone());
    let mut train_params = params;
    train_params.seed ^= 0xDEAD_BEEF;
    let training = Scenario::build(train_params);

    eprintln!("training value function on the training day …");
    let trained = train(&training, &TrainingConfig::default());
    eprintln!(
        "  history={} samples, transitions={}, final loss={:.1}",
        trained.history_len,
        trained.transitions,
        trained.losses.last().copied().unwrap_or(f32::NAN)
    );

    let algos: Vec<Algo> = vec![
        Algo::Gdp,
        Algo::Gas,
        Algo::NonSharing,
        Algo::WatterOnline,
        Algo::WatterTimeout,
        Algo::WatterExpectGmm(Arc::new(trained.gmm.clone())),
        Algo::WatterExpectValue(Arc::new(trained.value)),
    ];

    println!(
        "{:<20} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "algorithm", "extra time(s)", "unified cost", "service(%)", "run(ms/ord)", "avg|g|"
    );
    for algo in algos {
        let name = algo.name();
        let t0 = std::time::Instant::now();
        let stats = run_algorithm(&scenario, algo);
        println!(
            "{:<20} {:>14.0} {:>14.0} {:>12.1} {:>12.4} {:>10.2}   ({:.1}s wall)",
            name,
            stats.extra_time,
            stats.unified_cost,
            stats.service_rate_pct,
            stats.running_time * 1e3,
            stats.mean_group_size,
            t0.elapsed().as_secs_f64()
        );
    }
}
