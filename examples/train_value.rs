//! Train the value function end-to-end and inspect what it learned.
//!
//! Walks the full offline pipeline of Sections V-C and VI-B — extra-time
//! history under the online policy, GMM fit, experience generation with
//! the GMM threshold policy, DQN-style training — then probes the learned
//! thresholds across the grid and compares the resulting WATTER-expect
//! against the untrained variants.
//!
//! ```text
//! cargo run --release --example train_value [profile]
//! ```

use std::sync::Arc;
use watter::prelude::*;
use watter::runner::{run_algorithm, Algo};
use watter_strategy::{DecisionContext, ThresholdProvider};

fn main() {
    let profile = match std::env::args().nth(1).as_deref() {
        Some("nyc") => CityProfile::Nyc,
        Some("xia") => CityProfile::Xian,
        _ => CityProfile::Chengdu,
    };
    let params = ScenarioParams::default_for(profile);
    let mut train_params = params.clone();
    train_params.seed ^= 0xDEAD_BEEF;
    let training = Scenario::build(train_params);
    let evaluation = Scenario::build(params);

    println!(
        "training on {} ({} orders, {} workers) …",
        profile.tag(),
        training.orders.len(),
        training.workers.len()
    );
    let t0 = std::time::Instant::now();
    let trained = train(&training, &TrainingConfig::default());
    println!(
        "  {} extra-time samples, {} transitions, {:.1}s",
        trained.history_len,
        trained.transitions,
        t0.elapsed().as_secs_f64()
    );

    println!("\nfitted GMM components (weight, mean, sd):");
    for comp in trained.gmm.components() {
        println!(
            "  π={:.2}  μ={:>6.1}s  σ={:>6.1}s",
            comp.weight,
            comp.mean,
            comp.var.sqrt()
        );
    }

    println!("\ntraining loss (downsampled):");
    let step = (trained.losses.len() / 10).max(1);
    let pts: Vec<String> = trained
        .losses
        .iter()
        .step_by(step)
        .map(|l| format!("{l:.0}"))
        .collect();
    println!("  {}", pts.join(" → "));

    // Probe learned thresholds for a few orders in different environments.
    let env = watter_sim::build_env(
        &evaluation.grid,
        evaluation.orders.iter().take(50),
        evaluation.workers.iter().take(20).map(|w| w.home),
    );
    println!("\nlearned thresholds θ = p − V(s) for sample orders:");
    for o in evaluation.orders.iter().take(5) {
        let ctx = DecisionContext {
            now: o.release,
            env: &env,
        };
        let theta = trained.value.threshold(o, &ctx);
        println!(
            "  {}: direct {:>4}s penalty {:>4}s → θ = {:>6.1}s",
            o.id,
            o.direct_cost,
            o.penalty(),
            theta
        );
    }

    println!("\nevaluation on the held-out day:");
    for (name, algo) in [
        ("WATTER-online", Algo::WatterOnline),
        ("WATTER-timeout", Algo::WatterTimeout),
        (
            "WATTER-expect-gmm",
            Algo::WatterExpectGmm(Arc::new(trained.gmm.clone())),
        ),
        (
            "WATTER-expect",
            Algo::WatterExpectValue(Arc::new(trained.value)),
        ),
    ] {
        let s = run_algorithm(&evaluation, algo);
        println!(
            "  {:<18} extra {:>9.0}s  unified {:>9.0}  service {:>5.1}%",
            name, s.extra_time, s.unified_cost, s.service_rate_pct
        );
    }
}
