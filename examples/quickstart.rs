//! Quickstart: the paper's Example 1 on the public API.
//!
//! Builds the 6-node road network of Figure 1, releases the four orders of
//! Table I, and shows how the WATTER order pool discovers the optimal
//! groups {o1, o3} and {o2, o4} whose routes total 5 minutes — versus 12
//! minutes without sharing.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use watter::prelude::*;
use watter_core::{NodeId, OrderId, WorkerId};
use watter_pool::{cliques::CliqueLimits, OrderPool, PlanLimits, PoolConfig};
use watter_road::graph::Edge;
use watter_sim::run;

fn main() {
    // Figure 1: 6 nodes a..f, 7 two-way streets, 1 minute per segment.
    let names = ["a", "b", "c", "d", "e", "f"];
    let edge = |a: u32, b: u32| Edge {
        from: NodeId(a),
        to: NodeId(b),
        travel: 60,
    };
    let graph = RoadGraph::from_undirected_edges(
        vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (0.0, 1.0),
            (1.0, 1.0),
            (2.0, 1.0),
        ],
        vec![
            edge(0, 1), // a-b
            edge(1, 2), // b-c
            edge(2, 5), // c-f
            edge(5, 4), // f-e
            edge(4, 3), // e-d
            edge(0, 3), // a-d
            edge(1, 4), // b-e
        ],
    );
    let oracle = CostMatrix::build(&graph);

    // Table I: o1: a→c @5s, o2: d→f @8s, o3: d→c @10s, o4: e→f @12s.
    let spec = [(5i64, 0u32, 2u32), (8, 3, 5), (10, 3, 2), (12, 4, 5)];
    let orders: Vec<Order> = spec
        .iter()
        .enumerate()
        .map(|(i, &(t, p, d))| {
            let direct = oracle.cost(NodeId(p), NodeId(d));
            Order::from_scales(
                OrderId(i as u32),
                NodeId(p),
                NodeId(d),
                1,
                t,
                direct,
                6.0,
                2.0,
            )
        })
        .collect();

    println!("orders:");
    for o in &orders {
        println!(
            "  {}: {} -> {} released at {:>2}s, direct {:>3}s",
            o.id,
            names[o.pickup.index()],
            names[o.dropoff.index()],
            o.release,
            o.direct_cost
        );
    }

    // Peek into the order pool: insert all four orders and inspect the
    // best groups the temporal shareability graph maintains.
    let mut pool = OrderPool::new(PoolConfig {
        limits: PlanLimits { capacity: 4 },
        clique: CliqueLimits::default(),
        weights: CostWeights::default(),
    });
    for o in &orders {
        pool.insert(o.clone(), o.release, &&oracle);
    }
    println!("\nshareability graph: {} edges", pool.graph().edge_count());
    for o in &orders {
        if let Some(g) = pool.best_group(o.id) {
            let members: Vec<String> = g.order_ids().map(|m| m.to_string()).collect();
            println!(
                "  best group of {}: {{{}}} route {}s",
                o.id,
                members.join(", "),
                g.route.cost()
            );
        }
    }

    // Full simulation: two idle workers (w1 at d, w2 at a) and the WATTER
    // pooling dispatcher, versus the non-sharing baseline.
    let workers = vec![
        Worker::new(WorkerId(0), NodeId(3), 4),
        Worker::new(WorkerId(1), NodeId(0), 4),
    ];
    let grid = GridIndex::build(&graph, 2);
    let cfg = SimConfig {
        check_period: 10,
        weights: CostWeights::default(),
        drain_horizon: 3600,
        parallelism: watter::core::DispatchParallelism::SEQUENTIAL,
    };

    let mut watter = WatterDispatcher::new(
        WatterConfig {
            pool: PoolConfig {
                limits: PlanLimits { capacity: 4 },
                clique: CliqueLimits::default(),
                weights: CostWeights::default(),
            },
            spatial: Some(watter_pool::SpatialPrune::for_graph(&graph, grid.clone())),
            grid,
            check_period: 10,
            cancellation: watter_sim::CancellationModel::OFF,
            cancel_seed: 0,
            parallelism: watter::core::DispatchParallelism::SEQUENTIAL,
        },
        OnlinePolicy,
    );
    let m = run(orders.clone(), workers.clone(), &mut watter, &oracle, cfg);
    println!(
        "\nWATTER pooling : {} served, group routes {:.0} min (+ {:.0} min approach)",
        m.served_orders,
        m.route_travel() / 60.0,
        m.approach_travel / 60.0
    );

    let mut nonshare = watter::baselines::NonSharingDispatcher::new();
    let m = run(orders, workers, &mut nonshare, &oracle, cfg);
    println!(
        "non-sharing    : {} served, total travel {:.0} min",
        m.served_orders,
        m.worker_travel / 60.0
    );
    println!("\n(the paper's Example 1: pooling 5 min vs non-sharing 12 min)");
}
