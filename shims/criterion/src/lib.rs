//! Offline stand-in for `criterion`.
//!
//! With no crates.io access, this shim keeps the workspace's benchmark
//! targets compiling and runnable: each `bench_function` closure is timed
//! over `sample_size` iterations (after one warm-up call) and the mean
//! wall-clock time per iteration is printed. There is no statistical
//! analysis, outlier detection, or HTML report — it is a smoke-capable
//! harness, not a measurement instrument.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work. Forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.sample_size, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group<N: AsRef<str>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.as_ref().to_string(),
            sample_size,
        }
    }

    /// Print the closing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    sample_size: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.sample_size as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed.as_secs_f64() / b.iters as f64
    } else {
        0.0
    };
    println!(
        "bench {name:<40} {:>12.3} µs/iter  ({} iters)",
        per_iter * 1e6,
        b.iters
    );
}

/// Declare a group of benchmark functions, in either criterion form:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(c: &mut Criterion) {
        let mut g = c.benchmark_group("probe");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        // warm-up + 3 timed iterations
        assert_eq!(count, 4);
    }

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default().sample_size(5);
        probe(&mut c);
        c.bench_function("top", |b| b.iter(|| black_box(1 + 1)));
    }
}
