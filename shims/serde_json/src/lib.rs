//! Offline stand-in for `serde_json`, backed by the serde shim's [`Value`]
//! tree. Provides the three entry points the WATTER workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`].

pub use serde::{Error, Value};

/// Render `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render())
}

/// Render `value` as pretty JSON with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_pretty())
}

/// Parse JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_json_value(&parse_value(s)?)
}

/// Parse JSON text into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    serde::parse_json(s)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: f64,
        y: i64,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Event {
        Ping,
        Move { dx: i32, dy: i32 },
        Tag(String),
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u32);

    #[test]
    fn struct_roundtrip() {
        let p = Point {
            x: 1.5,
            y: -3,
            label: "a \"b\"\n".to_string(),
        };
        let s = super::to_string(&p).unwrap();
        assert_eq!(super::from_str::<Point>(&s).unwrap(), p);
        let pretty = super::to_string_pretty(&p).unwrap();
        assert_eq!(super::from_str::<Point>(&pretty).unwrap(), p);
    }

    #[test]
    fn enum_roundtrip() {
        for e in [
            Event::Ping,
            Event::Move { dx: -1, dy: 9 },
            Event::Tag("x".into()),
        ] {
            let s = super::to_string(&e).unwrap();
            assert_eq!(super::from_str::<Event>(&s).unwrap(), e);
        }
        assert_eq!(super::to_string(&Event::Ping).unwrap(), "\"Ping\"");
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(super::to_string(&Wrapper(7)).unwrap(), "7");
        assert_eq!(super::from_str::<Wrapper>("7").unwrap(), Wrapper(7));
    }

    #[test]
    fn vec_and_option() {
        let v: Vec<Option<u8>> = vec![Some(1), None, Some(3)];
        let s = super::to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        assert_eq!(super::from_str::<Vec<Option<u8>>>(&s).unwrap(), v);
    }
}
