//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this shim implements
//! the slice of the proptest API used by the workspace's property tests:
//! range and tuple strategies, [`Strategy::prop_map`],
//! `prop::collection::vec`, the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! inputs via `Debug` where available but is not minimized), and the RNG
//! seed is a deterministic function of the test-function name, so failures
//! always reproduce.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed `prop_assert*` inside a property body.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Source of random values for strategies (wraps the deterministic
/// [`StdRng`] from the rand shim).
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Runner seeded deterministically from a test-identifying string.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A recipe for generating random values of type `Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draw one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.new_value(runner),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{Strategy, TestRunner};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s whose length is drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generate vectors of values from `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let len = runner.rng().gen_range(self.size.clone());
                (0..len).map(|_| self.element.new_value(runner)).collect()
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Run properties against many random inputs. Mirrors proptest's macro of
/// the same name for the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(0i64..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::TestRunner::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&$strategy, &mut runner);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} for `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 2u32..9, y in -4i64..=4, f in 0.25f64..0.75) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn map_and_vec(v in prop::collection::vec((0u32..10, 0u32..10), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for &(a, b) in &v {
                prop_assert!(a < 10 && b < 10);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = (0u64..1_000_000, 0u64..1_000_000);
        let mut a = crate::TestRunner::deterministic("t");
        let mut b = crate::TestRunner::deterministic("t");
        for _ in 0..16 {
            assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
        }
    }
}
