//! Offline stand-in for `serde_derive`.
//!
//! With no crates.io access there is no `syn`/`quote`, so this crate parses
//! the deriving item's token stream by hand and emits the impl source as
//! text. Supported shapes — which cover every derive in the WATTER
//! workspace — are:
//!
//! * structs with named fields,
//! * tuple structs (single-field newtypes serialize transparently, larger
//!   tuples as arrays),
//! * unit structs,
//! * enums with any mix of unit / tuple / struct variants, using serde's
//!   externally-tagged representation (`"Variant"` for unit variants,
//!   `{"Variant": ...}` otherwise).
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! compile error naming this shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the serde shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive the serde shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("::std::compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Item model + token-stream parsing
// ---------------------------------------------------------------------------

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Body {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

struct Item {
    name: String,
    body: Body,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip `#[...]` (and `#![...]`) attributes.
    fn skip_attributes(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    if let Some(TokenTree::Punct(p)) = self.peek() {
                        if p.as_char() == '!' {
                            self.pos += 1;
                        }
                    }
                    if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                    {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    /// Consume tokens until a `,` at angle-bracket depth zero (the comma is
    /// consumed too). Returns false when the cursor was already at the end.
    ///
    /// The `>` of a joint `->` pair (fn-pointer return types) is not a
    /// closing angle bracket and must not affect the depth.
    fn skip_until_comma(&mut self) -> bool {
        if self.at_end() {
            return false;
        }
        let mut depth = 0i32;
        let mut prev_joint_minus = false;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if !prev_joint_minus => depth -= 1,
                    ',' if depth == 0 => return true,
                    _ => {}
                }
                prev_joint_minus = p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint;
            } else {
                prev_joint_minus = false;
            }
        }
        true
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();

    let kind = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive shim: expected `struct`/`enum`, got {other:?}"
            ))
        }
    };
    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive shim: expected item name, got {other:?}"
            ))
        }
    };
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported"
        ));
    }

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_struct_shape(&mut c)?),
        "enum" => {
            let group = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => {
                    return Err(format!(
                        "serde_derive shim: expected enum body for `{name}`, got {other:?}"
                    ))
                }
            };
            Body::Enum(parse_variants(Cursor::new(group.stream()))?)
        }
        other => {
            return Err(format!(
                "serde_derive shim: cannot derive for `{other} {name}`"
            ))
        }
    };
    Ok(Item { name, body })
}

fn parse_struct_shape(c: &mut Cursor) -> Result<Shape, String> {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Named(parse_named_fields(Cursor::new(g.stream()))?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Shape::Tuple(count_tuple_fields(Cursor::new(g.stream()))))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::Unit),
        None => Ok(Shape::Unit),
        other => Err(format!(
            "serde_derive shim: unexpected struct body token {other:?}"
        )),
    }
}

fn parse_named_fields(mut c: Cursor) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            return Ok(fields);
        }
        c.skip_visibility();
        let field = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive shim: expected field name, got {other:?}"
                ))
            }
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde_derive shim: expected `:`, got {other:?}")),
        }
        fields.push(field);
        c.skip_until_comma();
    }
}

fn count_tuple_fields(mut c: Cursor) -> usize {
    let mut count = 0;
    loop {
        c.skip_attributes();
        if c.at_end() {
            return count;
        }
        c.skip_visibility();
        count += 1;
        c.skip_until_comma();
    }
}

fn parse_variants(mut c: Cursor) -> Result<Vec<(String, Shape)>, String> {
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            return Ok(variants);
        }
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive shim: expected variant name, got {other:?}"
                ))
            }
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(Cursor::new(g.stream()))?;
                c.pos += 1;
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(Cursor::new(g.stream()));
                c.pos += 1;
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        variants.push((name, shape));
        // Skip a possible `= discriminant` and the trailing comma.
        c.skip_until_comma();
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn field_pairs(prefix: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_json_value({prefix}{f})),"
            )
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Body::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Body::Struct(Shape::Tuple(n)) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Body::Struct(Shape::Named(fields)) => {
            let pairs = field_pairs("&self.", fields);
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_json_value(x0)".to_string()
                        } else {
                            let items: String = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b}),"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{items}])")
                        };
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({v:?}), {inner})]),",
                            binds = binders.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let pairs = field_pairs("", fields);
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({v:?}), \
                              ::serde::Value::Object(::std::vec![{pairs}]))]),",
                            binds = fields.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_json_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Shape::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Body::Struct(Shape::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_json_value(v)?))")
        }
        Body::Struct(Shape::Tuple(n)) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::de_element(v, {i}, {n})?,"))
                .collect();
            format!("::std::result::Result::Ok({name}({elems}))")
        }
        Body::Struct(Shape::Named(fields)) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(v, {f:?})?,"))
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Body::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => String::new(),
                    Shape::Tuple(1) => format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_json_value(inner)?)),"
                    ),
                    Shape::Tuple(n) => {
                        let elems: String = (0..*n)
                            .map(|i| format!("::serde::de_element(inner, {i}, {n})?,"))
                            .collect();
                        format!("{v:?} => ::std::result::Result::Ok({name}::{v}({elems})),")
                    }
                    Shape::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(inner, {f:?})?,"))
                            .collect();
                        format!("{v:?} => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),")
                    }
                })
                .collect();
            let has_unit = !unit_arms.is_empty();
            let has_payload = !payload_arms.is_empty();
            let mut arms = String::new();
            if has_unit {
                arms.push_str(&format!(
                    "::serde::Value::Str(tag) => match tag.as_str() {{ {unit_arms} \
                     other => ::std::result::Result::Err(\
                     ::serde::Error::unknown_variant(other, {name:?})), }},"
                ));
            }
            if has_payload {
                arms.push_str(&format!(
                    "::serde::Value::Object(fields) if fields.len() == 1 => {{ \
                     let (tag, inner) = &fields[0]; \
                     match tag.as_str() {{ {payload_arms} \
                     other => ::std::result::Result::Err(\
                     ::serde::Error::unknown_variant(other, {name:?})), }} }},"
                ));
            }
            format!(
                "match v {{ {arms} other => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"externally tagged enum\", other)), }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_json_value(v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
