//! The JSON value tree shared by the `serde` and `serde_json` shims, plus
//! the rendering (compact and pretty) and parsing routines.

use std::fmt;

/// A parsed or to-be-rendered JSON document.
///
/// Integers keep their signedness (`Int` / `UInt`) so that `u64`/`i64`
/// round-trip losslessly; `Float` covers everything parsed with a decimal
/// point or exponent.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer without fractional part.
    Int(i64),
    /// Unsigned integer without fractional part.
    UInt(u64),
    /// Any other finite number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Coerce to `i64` if the value is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// Coerce to `u64` if the value is a non-negative in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            // `u64::MAX as f64` rounds up to exactly 2^64, so `< 2^64`
            // is the precise bound for a lossless-in-range cast.
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Coerce any numeric value to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Short human-readable name of the value's JSON type.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Render as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render as pretty JSON with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    if f.fract() == 0.0 && f.abs() < 1.0e16 {
                        // Keep whole floats recognizable as numbers ("1.0").
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&f.to_string());
                    }
                } else {
                    // serde_json renders non-finite floats as null.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialization / deserialization error for the serde + serde_json shims.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    /// Error from a plain message.
    pub fn msg(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// "expected X, got Y" type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self::msg(format!("expected {what}, got {}", got.kind()))
    }

    /// Unknown enum variant tag.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        Self::msg(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parse a JSON document into a [`Value`] tree.
pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::msg(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let src = r#"{"a": [1, -2, 3.5, true, null], "b": {"nested": "x\ny"}, "c": 18446744073709551615}"#;
        let v = parse(src).unwrap();
        let back = parse(&v.render()).unwrap();
        assert_eq!(v, back);
        let pretty = parse(&v.render_pretty()).unwrap();
        assert_eq!(v, pretty);
    }

    #[test]
    fn numbers_keep_integerness() {
        assert_eq!(parse("7").unwrap(), Value::Int(7));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("7.0").unwrap(), Value::Float(7.0));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn float_coercions_respect_integer_ranges() {
        // 1.85e19 exceeds u64::MAX (~1.845e19): must not saturate.
        assert_eq!(Value::Float(1.85e19).as_u64(), None);
        assert_eq!(Value::Float(-1.0).as_u64(), None);
        assert_eq!(Value::Float(12.0).as_u64(), Some(12));
        assert_eq!(Value::Float(1.0e19).as_i64(), None);
        assert_eq!(Value::Float(-12.0).as_i64(), Some(-12));
        assert_eq!(Value::Float(0.5).as_i64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
