//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this shim provides the
//! slice of serde used by the WATTER workspace: `#[derive(Serialize,
//! Deserialize)]` plus JSON round-tripping through `serde_json`. Instead of
//! serde's visitor machinery, both traits go through an intermediate
//! [`Value`] tree; the derive macros (re-exported from `serde_derive`)
//! generate `to_json_value` / `from_json_value` impls for plain structs,
//! tuple structs and enums with unit/tuple/struct variants, using serde's
//! externally-tagged representation so the JSON shape matches real serde.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Error, Value};

/// Parse JSON text into a [`Value`] tree (used by the `serde_json` shim).
pub fn parse_json(s: &str) -> Result<Value, Error> {
    value::parse(s)
}

/// A type that can be converted into a JSON [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a JSON value.
    fn to_json_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::expected("number", v))
            }
        }
    )*};
}
impl_float!(f32, f64);

// 128-bit integers render as u64/i64 when in range and as decimal strings
// otherwise (real serde_json needs arbitrary-precision for these too).
impl Serialize for u128 {
    fn to_json_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::UInt(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| Error::msg(format!("invalid u128 `{s}`"))),
            other => other
                .as_u64()
                .map(u128::from)
                .ok_or_else(|| Error::expected("unsigned integer", other)),
        }
    }
}

impl Serialize for i128 {
    fn to_json_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::Int(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| Error::msg(format!("invalid i128 `{s}`"))),
            other => other
                .as_i64()
                .map(i128::from)
                .ok_or_else(|| Error::expected("integer", other)),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

// Shared-ownership pointers serialize transparently, like real serde with
// the `rc` feature. Deserialization always produces a fresh allocation (no
// sharing is reconstructed), which matches serde's documented behaviour.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(std::rc::Rc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected array of length {expected}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_json_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("array", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, fv)| Ok((k.clone(), V::from_json_value(fv)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, fv)| Ok((k.clone(), V::from_json_value(fv)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Derive support helpers (used by serde_derive-generated code)
// ---------------------------------------------------------------------------

/// Look up and deserialize a named struct field. Missing keys only succeed
/// for types that accept `null` (i.e. `Option`).
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == name) {
            Some((_, fv)) => {
                T::from_json_value(fv).map_err(|e| Error::msg(format!("field `{name}`: {e}")))
            }
            None => T::from_json_value(&Value::Null)
                .map_err(|_| Error::msg(format!("missing field `{name}`"))),
        },
        other => Err(Error::expected("object", other)),
    }
}

/// Deserialize the `idx`-th element of a tuple-struct / tuple-variant array.
pub fn de_element<T: Deserialize>(v: &Value, idx: usize, len: usize) -> Result<T, Error> {
    match v {
        Value::Array(items) if items.len() == len => {
            T::from_json_value(&items[idx]).map_err(|e| Error::msg(format!("element {idx}: {e}")))
        }
        Value::Array(items) => Err(Error::msg(format!(
            "expected array of length {len}, got {}",
            items.len()
        ))),
        other => Err(Error::expected("array", other)),
    }
}
