//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, deterministic implementation of the slice of the rand 0.8 API
//! that the WATTER crates use: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded via SplitMix64 —
//! high quality, tiny, and reproducible across platforms.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`f32`/`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// Panics when the range is empty, matching rand 0.8.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`, matching rand 0.8.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be drawn from the "standard" distribution of rand 0.8.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `gen_range` can sample uniformly. Mirrors rand's `SampleUniform`;
/// keeping the range impls generic over one `T` (instead of one impl per
/// concrete range type) is what lets integer-literal ranges infer their type
/// from surrounding arithmetic, exactly as with real rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges a value of type `T` can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value; panics if the range is empty.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Multiply-shift rejection-free bounded sampling (Lemire); the tiny modulo
/// bias of the plain multiply is irrelevant for simulation workloads.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

// The span must be computed at 64-bit width: subtracting at a narrower
// width (e.g. `-100i8..100`) wraps and then sign-extends into a bogus huge
// span. For signed types the i64 difference reinterpreted as u64 is exact
// even when it overflows i64 (two's-complement modular arithmetic), and
// `lo.wrapping_add` folds the draw back into range.
macro_rules! uniform_int {
    ($cast:ty => $($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $cast).wrapping_sub(lo as $cast) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $cast).wrapping_sub(lo as $cast) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
uniform_int!(u64 => u8, u16, u32, u64, usize);
uniform_int!(i64 => i8, i16, i32, i64, isize);

// Endpoint care: `lo + u*(hi-lo)` can round up to exactly `hi` even though
// `u < 1`, so the half-open form clamps to the largest value below `hi`;
// the inclusive form draws `u` from [0, 1] (denominator 2^bits − 1) so `hi`
// is genuinely reachable, and clamps against rounding past either end.
macro_rules! uniform_float {
    ($($t:ty, $bits:expr);*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = <$t as Standard>::sample(rng); // [0, 1)
                let v = lo + u * (hi - lo);
                if v >= hi {
                    hi.next_down().max(lo)
                } else {
                    v.max(lo)
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let draw = rng.next_u64() >> (64 - $bits);
                let u = draw as $t / (((1u64 << $bits) - 1) as $t); // [0, 1]
                (lo + u * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}
uniform_float!(f32, 24; f64, 53);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u32);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            // Narrow signed ranges whose span overflows the type width.
            let n = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&n));
            let m = rng.gen_range(i8::MIN..=i8::MAX);
            assert!((i8::MIN..=i8::MAX).contains(&m));
            let f = rng.gen_range(-0.25..0.25f64);
            assert!((-0.25..0.25).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_half_open_excludes_hi_even_under_rounding() {
        // A generator pinned at the maximal draw (u = 1 − 2⁻⁵³) makes
        // `lo + u*(hi-lo)` round to exactly `hi` when hi = next_up(lo).
        struct MaxRng;
        impl RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let lo = 1.0f64;
        let hi = lo.next_up();
        let v = f64::sample_half_open(&mut MaxRng, lo, hi);
        assert!(v < hi, "half-open draw produced hi = {hi}");
        assert!(v >= lo);
        // Inclusive form reaches hi at the maximal draw.
        let w = f64::sample_inclusive(&mut MaxRng, 0.25f64, 0.75);
        assert_eq!(w, 0.75);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
