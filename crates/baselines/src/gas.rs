//! GAS: batch-based additive-tree grouping \[2\].
//!
//! Orders are collected into fixed batch windows. At each batch boundary,
//! every idle worker enumerates feasible order groups **additively** — the
//! additive tree of the source paper: level 1 holds feasible singletons,
//! level k extends level-(k−1) groups by one more order, pruning infeasible
//! branches — and the platform greedily commits the (worker, group) pair
//! with the highest utility until no positive-utility pair remains.
//! Utility follows the source's revenue framing: the penalties avoided by
//! serving the group minus the total travel cost spent.
//!
//! Orders not assigned in their batch roll over while still solo-feasible,
//! then are rejected.

use std::collections::BTreeMap;
use watter_core::{Dur, Group, Order, OrderId, Ts, WorkerId};
use watter_pool::{plan_with_start, PlanLimits};
use watter_sim::{Dispatcher, SimCtx};

/// GAS parameters.
#[derive(Clone, Copy, Debug)]
pub struct GasConfig {
    /// Batch window in seconds (the engine must check at least this often).
    pub batch_window: Dur,
    /// Maximum group size explored in the additive tree.
    pub max_group_size: usize,
    /// Beam width: groups kept per level per worker (the additive tree of
    /// the source grows exponentially; the beam keeps the reproduction
    /// laptop-friendly while preserving the greedy-utility behaviour).
    pub beam_width: usize,
}

impl Default for GasConfig {
    fn default() -> Self {
        Self {
            batch_window: 10,
            max_group_size: 4,
            beam_width: 8,
        }
    }
}

/// The GAS dispatcher.
pub struct GasDispatcher {
    cfg: GasConfig,
    /// Orders waiting for the current batch boundary (or rolled over).
    backlog: BTreeMap<OrderId, Order>,
    next_batch: Ts,
}

impl GasDispatcher {
    /// Build the dispatcher.
    pub fn new(cfg: GasConfig) -> Self {
        Self {
            cfg,
            backlog: BTreeMap::new(),
            next_batch: 0,
        }
    }

    /// One (worker, group) candidate with its utility.
    fn candidates(&self, ctx: &SimCtx<'_>) -> Vec<(WorkerId, Group, f64)> {
        let mut out = Vec::new();
        let orders: Vec<&Order> = self.backlog.values().collect();
        for wid in ctx.fleet.idle_workers(ctx.now) {
            let w = ctx.fleet.worker(wid);
            let start = ctx.fleet.location(wid);
            let limits = PlanLimits {
                capacity: w.capacity,
            };
            // level 1: feasible singletons
            let mut level: Vec<(Vec<&Order>, Dur)> = Vec::new();
            for &o in &orders {
                if let Some((_, total)) = plan_with_start(start, &[o], ctx.now, limits, &ctx.oracle)
                {
                    level.push((vec![o], total));
                }
            }
            level.sort_by_key(|(_, c)| *c);
            level.truncate(self.cfg.beam_width);
            let mut all_levels = level.clone();
            // additive expansion
            for _ in 2..=self.cfg.max_group_size {
                let mut next: Vec<(Vec<&Order>, Dur)> = Vec::new();
                for (grp, _) in &level {
                    let last_id = grp.last().expect("non-empty group").id;
                    for &o in &orders {
                        if o.id <= last_id || grp.iter().any(|g| g.id == o.id) {
                            continue;
                        }
                        let mut cand = grp.clone();
                        cand.push(o);
                        if let Some((_, total)) =
                            plan_with_start(start, &cand, ctx.now, limits, &ctx.oracle)
                        {
                            next.push((cand, total));
                        }
                    }
                }
                next.sort_by_key(|(_, c)| *c);
                next.truncate(self.cfg.beam_width);
                if next.is_empty() {
                    break;
                }
                all_levels.extend(next.clone());
                level = next;
            }
            for (grp, total) in all_levels {
                // Revenue framing of the source paper: each served order
                // earns a fare proportional to its direct trip (we reuse
                // the unified-cost factor 10×direct), the route spends its
                // travel time.
                let revenue: f64 = grp.iter().map(|o| 10.0 * o.direct_cost as f64).sum();
                let utility = revenue - total as f64;
                if let Some((route, _)) = plan_with_start(start, &grp, ctx.now, limits, &ctx.oracle)
                {
                    let group =
                        Group::new(grp.iter().map(|&o| o.clone()).collect(), route, &ctx.oracle);
                    out.push((wid, group, utility));
                }
            }
        }
        out
    }

    fn run_batch(&mut self, ctx: &mut SimCtx<'_>) {
        // Greedy maximum-utility assignment over disjoint workers/orders.
        let mut candidates = self.candidates(ctx);
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("utility NaN"));
        let mut used_workers = Vec::new();
        for (wid, group, utility) in candidates {
            if utility <= 0.0 {
                break;
            }
            if used_workers.contains(&wid) {
                continue;
            }
            if !group.order_ids().all(|id| self.backlog.contains_key(&id)) {
                continue;
            }
            if ctx.dispatch_group_to(wid, &group) {
                used_workers.push(wid);
                for id in group.order_ids() {
                    self.backlog.remove(&id);
                }
            }
        }
        // Strict batch-response semantics: the platform answers every order
        // at the end of its batch round — orders left unassigned are
        // rejected (batch methods cannot wait for future opportunities,
        // which is precisely the weakness Section I attributes to them).
        let unassigned: Vec<OrderId> = self.backlog.keys().copied().collect();
        for id in unassigned {
            let o = self.backlog.remove(&id).expect("listed above");
            ctx.reject(&o);
        }
    }
}

impl Dispatcher for GasDispatcher {
    fn on_arrival(&mut self, order: Order, ctx: &mut SimCtx<'_>) {
        if self.next_batch == 0 {
            self.next_batch = ctx.now + self.cfg.batch_window;
        }
        self.backlog.insert(order.id, order);
    }

    fn on_check(&mut self, ctx: &mut SimCtx<'_>) {
        if ctx.now >= self.next_batch {
            self.run_batch(ctx);
            self.next_batch = ctx.now + self.cfg.batch_window;
        }
    }

    fn pending(&self) -> usize {
        self.backlog.len()
    }

    fn name(&self) -> String {
        "GAS".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{CostWeights, Measurements, NodeId, Worker};
    use watter_sim::Fleet;

    struct Line;
    impl watter_core::TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl watter_core::TravelBound for Line {}

    fn order(id: u32, p: u32, d: u32, release: Ts) -> Order {
        let direct = (p as i64 - d as i64).abs() * 10;
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline: release + 5 * direct,
            wait_limit: direct,
            direct_cost: direct,
        }
    }

    #[test]
    fn batch_groups_compatible_orders() {
        let workers = vec![Worker::new(WorkerId(0), NodeId(0), 4)];
        let mut fleet = Fleet::new(workers);
        let mut m = Measurements::default();
        let mut d = GasDispatcher::new(GasConfig::default());
        {
            let mut ctx = SimCtx {
                now: 0,
                fleet: &mut fleet,
                measurements: &mut m,
                oracle: &Line,
                weights: CostWeights::default(),
                exec: &watter_core::Exec::sequential(),
                effects: &mut Vec::new(),
            };
            d.on_arrival(order(0, 0, 10, 0), &mut ctx);
            d.on_arrival(order(1, 2, 8, 0), &mut ctx);
        }
        {
            let mut ctx = SimCtx {
                now: 10,
                fleet: &mut fleet,
                measurements: &mut m,
                oracle: &Line,
                weights: CostWeights::default(),
                exec: &watter_core::Exec::sequential(),
                effects: &mut Vec::new(),
            };
            d.on_check(&mut ctx);
        }
        assert_eq!(m.served_orders, 2);
        assert_eq!(d.pending(), 0);
        // both served by the single worker in one group
        assert_eq!(m.group_size_hist, vec![0, 2]);
    }

    #[test]
    fn infeasible_backlog_rejected_eventually() {
        let workers = vec![Worker::new(WorkerId(0), NodeId(0), 4)];
        let mut fleet = Fleet::new(workers);
        // keep the worker busy forever
        fleet.assign(WorkerId(0), NodeId(0), 0, 1_000_000);
        let mut m = Measurements::default();
        let mut d = GasDispatcher::new(GasConfig::default());
        {
            let mut ctx = SimCtx {
                now: 0,
                fleet: &mut fleet,
                measurements: &mut m,
                oracle: &Line,
                weights: CostWeights::default(),
                exec: &watter_core::Exec::sequential(),
                effects: &mut Vec::new(),
            };
            d.on_arrival(order(0, 0, 10, 0), &mut ctx);
        }
        // deadline = 500; direct = 100 → dead from t = 400
        let mut ctx = SimCtx {
            now: 500,
            fleet: &mut fleet,
            measurements: &mut m,
            oracle: &Line,
            weights: CostWeights::default(),
            exec: &watter_core::Exec::sequential(),
            effects: &mut Vec::new(),
        };
        d.on_check(&mut ctx);
        assert_eq!(m.rejected_orders, 1);
        assert_eq!(d.pending(), 0);
    }
}
