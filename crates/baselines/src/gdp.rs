//! GDP: greedy insertion online dispatch \[9\].
//!
//! Each arriving order is immediately inserted into the worker route whose
//! cheapest feasible insertion adds the least travel cost; if no worker can
//! absorb it, the order is rejected on the spot. Workers run continuous
//! routes (unlike the paper's WATTER worker model, GDP's source models
//! workers with evolving schedules), so this dispatcher tracks its own
//! per-worker [`Schedule`]s and bypasses the engine fleet's one-group
//! bookkeeping.

use crate::insertion::Schedule;
use watter_core::Worker;
use watter_sim::{Dispatcher, SimCtx};

/// GDP parameters.
#[derive(Clone, Copy, Debug)]
pub struct GdpConfig {
    /// Cap on remaining stops per worker route (keeps the O(k²) insertion
    /// scan bounded; generous versus the capacity bound in practice).
    pub max_route_stops: usize,
}

impl Default for GdpConfig {
    fn default() -> Self {
        Self {
            max_route_stops: 12,
        }
    }
}

/// The GDP dispatcher.
pub struct GdpDispatcher {
    cfg: GdpConfig,
    schedules: Vec<Schedule>,
}

impl GdpDispatcher {
    /// Build from the worker roster (same roster handed to the engine).
    pub fn new(cfg: GdpConfig, workers: &[Worker]) -> Self {
        let schedules = workers
            .iter()
            .map(|w| Schedule::idle(w.home, 0, w.capacity))
            .collect();
        Self { cfg, schedules }
    }

    fn advance_all(&mut self, now: watter_core::Ts) {
        for s in &mut self.schedules {
            s.advance(now);
        }
    }
}

impl Dispatcher for GdpDispatcher {
    fn on_arrival(&mut self, order: watter_core::Order, ctx: &mut SimCtx<'_>) {
        self.advance_all(ctx.now);
        // Find the globally cheapest feasible insertion.
        let mut best: Option<(usize, crate::insertion::Insertion)> = None;
        for (wi, s) in self.schedules.iter().enumerate() {
            if s.stops.len() + 2 > self.cfg.max_route_stops {
                continue;
            }
            if let Some(ins) = s.best_insertion(&order, ctx.now, &ctx.oracle) {
                if best.is_none_or(|(_, b)| ins.added_cost < b.added_cost) {
                    best = Some((wi, ins));
                }
            }
        }
        match best {
            Some((wi, ins)) => {
                // Served: GDP notifies instantly (response ≈ 0); the detour
                // is the gap between the promised drop-off ETA and the
                // ideal release + direct trip. No worker in the effect: GDP
                // routes via its own schedules, not the engine fleet.
                let detour = (ins.dropoff_eta - order.release - order.direct_cost).max(0);
                ctx.record_served(&order, detour, 1, None);
                ctx.measurements.record_worker_travel(ins.added_cost);
                self.schedules[wi].apply_insertion(order, ins, ctx.now, &ctx.oracle);
            }
            None => ctx.reject(&order),
        }
    }

    fn on_check(&mut self, ctx: &mut SimCtx<'_>) {
        self.advance_all(ctx.now);
    }

    fn pending(&self) -> usize {
        0 // GDP answers at arrival; nothing is ever pending.
    }

    fn name(&self) -> String {
        "GDP".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{CostWeights, Dur, Measurements, NodeId, Order, OrderId, Ts, WorkerId};
    use watter_sim::Fleet;

    struct Line;
    impl watter_core::TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl watter_core::TravelBound for Line {}

    fn order(id: u32, p: u32, d: u32, release: Ts, scale: f64) -> Order {
        let direct = (p as i64 - d as i64).abs() * 10;
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline: release + (scale * direct as f64) as i64,
            wait_limit: direct,
            direct_cost: direct,
        }
    }

    fn harness(workers: Vec<Worker>) -> (GdpDispatcher, Fleet, Measurements) {
        let d = GdpDispatcher::new(GdpConfig::default(), &workers);
        (d, Fleet::new(workers), Measurements::default())
    }

    #[test]
    fn serves_feasible_order() {
        let (mut d, mut fleet, mut m) = harness(vec![Worker::new(WorkerId(0), NodeId(0), 4)]);
        let mut ctx = SimCtx {
            now: 0,
            fleet: &mut fleet,
            measurements: &mut m,
            oracle: &Line,
            weights: CostWeights::default(),
            exec: &watter_core::Exec::sequential(),
            effects: &mut Vec::new(),
        };
        d.on_arrival(order(0, 2, 7, 0, 3.0), &mut ctx);
        assert_eq!(m.served_orders, 1);
        assert_eq!(m.worker_travel, 70.0);
    }

    #[test]
    fn rejects_when_no_feasible_insertion() {
        let (mut d, mut fleet, mut m) = harness(vec![Worker::new(WorkerId(0), NodeId(100), 4)]);
        let mut ctx = SimCtx {
            now: 0,
            fleet: &mut fleet,
            measurements: &mut m,
            oracle: &Line,
            weights: CostWeights::default(),
            exec: &watter_core::Exec::sequential(),
            effects: &mut Vec::new(),
        };
        // worker 1000 s away; deadline only allows 1.2× direct (120 s)
        d.on_arrival(order(0, 2, 7, 0, 1.2), &mut ctx);
        assert_eq!(m.rejected_orders, 1);
    }

    #[test]
    fn shares_route_with_nested_order() {
        let (mut d, mut fleet, mut m) = harness(vec![Worker::new(WorkerId(0), NodeId(0), 4)]);
        {
            let mut ctx = SimCtx {
                now: 0,
                fleet: &mut fleet,
                measurements: &mut m,
                oracle: &Line,
                weights: CostWeights::default(),
                exec: &watter_core::Exec::sequential(),
                effects: &mut Vec::new(),
            };
            d.on_arrival(order(0, 0, 10, 0, 3.0), &mut ctx);
            d.on_arrival(order(1, 4, 6, 0, 5.0), &mut ctx);
        }
        assert_eq!(m.served_orders, 2);
        // Second order inserted inside the first route: zero added travel.
        assert_eq!(m.worker_travel, 100.0);
    }
}
