//! Non-sharing sequential baseline (Example 1's first method).
//!
//! Every order is served solo by the nearest idle worker; orders queue
//! while all workers are busy and are rejected once even a solo trip can no
//! longer meet the deadline.

use std::collections::VecDeque;
use watter_core::Order;
use watter_sim::{
    DegradableDispatcher, Dispatcher, DispatcherState, SimCtx, SnapshotDispatcher, SnapshotError,
};

/// First-come-first-served solo dispatcher.
#[derive(Default)]
pub struct NonSharingDispatcher {
    queue: VecDeque<Order>,
}

impl NonSharingDispatcher {
    /// Build the dispatcher.
    pub fn new() -> Self {
        Self::default()
    }

    fn drain(&mut self, ctx: &mut SimCtx<'_>) {
        let mut still_waiting = VecDeque::new();
        while let Some(order) = self.queue.pop_front() {
            match ctx.solo_group(&order) {
                None => ctx.reject(&order), // deadline unreachable even solo
                Some(solo) => {
                    if ctx.dispatch_group(&solo).is_none() {
                        still_waiting.push_back(order); // no idle worker yet
                    }
                }
            }
        }
        self.queue = still_waiting;
    }
}

impl Dispatcher for NonSharingDispatcher {
    fn on_arrival(&mut self, order: Order, ctx: &mut SimCtx<'_>) {
        self.queue.push_back(order);
        self.drain(ctx);
    }

    fn on_check(&mut self, ctx: &mut SimCtx<'_>) {
        self.drain(ctx);
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> String {
        "NonSharing".into()
    }
}

/// Already solo-only: there is no cheaper path to fall back to, so the
/// default "mode unsupported" implementation is exactly right.
impl DegradableDispatcher for NonSharingDispatcher {}

impl SnapshotDispatcher for NonSharingDispatcher {
    fn save_state(&self) -> DispatcherState {
        DispatcherState::Queue {
            orders: self.queue.iter().cloned().collect(),
        }
    }

    fn load_state(&mut self, state: &DispatcherState) -> Result<(), SnapshotError> {
        match state {
            DispatcherState::Queue { orders } => {
                self.queue = orders.iter().cloned().collect();
                Ok(())
            }
            _ => Err(SnapshotError::DispatcherMismatch {
                expected: "FIFO queue",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{CostWeights, Dur, Measurements, NodeId, OrderId, Ts, Worker, WorkerId};
    use watter_sim::Fleet;

    struct Line;
    impl watter_core::TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl watter_core::TravelBound for Line {}

    fn order(id: u32, p: u32, d: u32, release: Ts) -> Order {
        let direct = (p as i64 - d as i64).abs() * 10;
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline: release + 4 * direct,
            wait_limit: direct,
            direct_cost: direct,
        }
    }

    #[test]
    fn serves_sequentially_and_queues() {
        let workers = vec![Worker::new(WorkerId(0), NodeId(0), 4)];
        let mut fleet = Fleet::new(workers);
        let mut m = Measurements::default();
        let mut d = NonSharingDispatcher::new();
        {
            let mut ctx = SimCtx {
                now: 0,
                fleet: &mut fleet,
                measurements: &mut m,
                oracle: &Line,
                weights: CostWeights::default(),
                exec: &watter_core::Exec::sequential(),
                effects: &mut Vec::new(),
            };
            d.on_arrival(order(0, 0, 5, 0), &mut ctx);
            d.on_arrival(order(1, 5, 9, 0), &mut ctx);
        }
        assert_eq!(m.served_orders, 1);
        assert_eq!(d.pending(), 1);
        // Worker frees at t = 50; the queued order dispatches at a check.
        let mut ctx = SimCtx {
            now: 60,
            fleet: &mut fleet,
            measurements: &mut m,
            oracle: &Line,
            weights: CostWeights::default(),
            exec: &watter_core::Exec::sequential(),
            effects: &mut Vec::new(),
        };
        d.on_check(&mut ctx);
        assert_eq!(m.served_orders, 2);
        assert_eq!(d.pending(), 0);
        // Every served order rode solo.
        assert_eq!(m.group_size_hist, vec![2]);
    }

    #[test]
    fn queued_order_eventually_rejected() {
        let workers = vec![Worker::new(WorkerId(0), NodeId(0), 4)];
        let mut fleet = Fleet::new(workers);
        fleet.assign(WorkerId(0), NodeId(0), 0, 1_000_000);
        let mut m = Measurements::default();
        let mut d = NonSharingDispatcher::new();
        {
            let mut ctx = SimCtx {
                now: 0,
                fleet: &mut fleet,
                measurements: &mut m,
                oracle: &Line,
                weights: CostWeights::default(),
                exec: &watter_core::Exec::sequential(),
                effects: &mut Vec::new(),
            };
            d.on_arrival(order(0, 0, 5, 0), &mut ctx);
        }
        let mut ctx = SimCtx {
            now: 500, // deadline 200 long gone
            fleet: &mut fleet,
            measurements: &mut m,
            oracle: &Line,
            weights: CostWeights::default(),
            exec: &watter_core::Exec::sequential(),
            effects: &mut Vec::new(),
        };
        d.on_check(&mut ctx);
        assert_eq!(m.rejected_orders, 1);
    }
}
