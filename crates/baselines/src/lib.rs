//! # watter-baselines
//!
//! Comparison algorithms of the paper's evaluation (Section VII-A):
//!
//! * [`GdpDispatcher`] — **GDP** \[9\]: an online algorithm that greedily
//!   inserts each arriving order's pick-up and drop-off into some worker's
//!   current route at minimal added cost, responding immediately (serve or
//!   reject) without pooling;
//! * [`GasDispatcher`] — **GAS** \[2\]: a batch algorithm that groups the
//!   orders of each batch window per worker via an additive tree of
//!   feasible groups and greedily assigns maximum-utility (worker, group)
//!   pairs;
//! * [`NonSharingDispatcher`] — the sequential non-sharing method of
//!   Example 1: every order is served solo by the nearest idle worker.
//!
//! All three implement `watter_sim::Dispatcher`, so they run on exactly the
//! same event streams, fleet and metrics as the WATTER variants.

pub mod gas;
pub mod gdp;
pub mod insertion;
pub mod nonshare;

pub use gas::{GasConfig, GasDispatcher};
pub use gdp::{GdpConfig, GdpDispatcher};
pub use nonshare::NonSharingDispatcher;
