//! Route schedules and the greedy insertion operator used by GDP.
//!
//! A [`Schedule`] is one worker's remaining stop sequence with ETAs. The
//! insertion operator tries every (pick-up, drop-off) position pair,
//! keeping the cheapest insertion that preserves every onboard/planned
//! order's deadline and the vehicle capacity — the classic operator of the
//! GDP line of work \[9\].

use std::collections::BTreeMap;
use watter_core::{Dur, NodeId, Order, OrderId, Stop, StopKind, TravelCost, Ts};

/// A stop with its estimated arrival time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduledStop {
    /// The stop.
    pub stop: Stop,
    /// Estimated arrival timestamp.
    pub eta: Ts,
}

/// A feasible insertion position for a new order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Insertion {
    /// Index (in the remaining stop list) before which the pick-up goes.
    pub pickup_pos: usize,
    /// Index before which the drop-off goes (counted *after* the pick-up
    /// has been inserted, so `dropoff_pos > pickup_pos`).
    pub dropoff_pos: usize,
    /// Added travel cost of the detour.
    pub added_cost: Dur,
    /// Resulting drop-off ETA of the new order.
    pub dropoff_eta: Ts,
}

/// One worker's live route plan.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Location at `time` (last passed stop or the start position).
    pub loc: NodeId,
    /// Timestamp at which the worker is/was at `loc`.
    pub time: Ts,
    /// Remaining stops with ETAs.
    pub stops: Vec<ScheduledStop>,
    /// Vehicle capacity.
    pub capacity: u32,
    /// Riders currently on board (boarded before `loc`/`time`).
    pub onboard: u32,
    /// Active orders (picked up or planned, not yet dropped off).
    pub orders: BTreeMap<OrderId, Order>,
}

impl Schedule {
    /// An idle worker's empty schedule.
    pub fn idle(loc: NodeId, time: Ts, capacity: u32) -> Self {
        Self {
            loc,
            time,
            stops: Vec::new(),
            capacity,
            onboard: 0,
            orders: BTreeMap::new(),
        }
    }

    /// Whether the schedule has no remaining stops.
    pub fn is_idle(&self) -> bool {
        self.stops.is_empty()
    }

    /// Pop every stop whose ETA has passed, updating position, onboard
    /// count and the active-order set. Returns completed (dropped-off)
    /// order ids.
    pub fn advance(&mut self, now: Ts) -> Vec<OrderId> {
        let mut done = Vec::new();
        while let Some(first) = self.stops.first().copied() {
            if first.eta > now {
                break;
            }
            self.stops.remove(0);
            self.loc = first.stop.node;
            self.time = first.eta;
            let riders = self
                .orders
                .get(&first.stop.order)
                .map(|o| o.riders)
                .unwrap_or(0);
            match first.stop.kind {
                StopKind::Pickup => self.onboard += riders,
                StopKind::Dropoff => {
                    self.onboard = self.onboard.saturating_sub(riders);
                    self.orders.remove(&first.stop.order);
                    done.push(first.stop.order);
                }
            }
        }
        self.stops.first().copied().map(|_| ()).unwrap_or(());
        done
    }

    /// Total remaining travel cost (from `loc` through every stop).
    pub fn remaining_cost<C: TravelCost>(&self, oracle: &C) -> Dur {
        let mut cost = 0;
        let mut cur = self.loc;
        for s in &self.stops {
            cost += oracle.cost(cur, s.stop.node);
            cur = s.stop.node;
        }
        cost
    }

    /// Find the cheapest feasible insertion of `order` at time `now`, or
    /// `None`. Does not mutate the schedule.
    pub fn best_insertion<C: TravelCost>(
        &self,
        order: &Order,
        now: Ts,
        oracle: &C,
    ) -> Option<Insertion> {
        if order.riders > self.capacity {
            return None;
        }
        let n = self.stops.len();
        let mut best: Option<Insertion> = None;
        for i in 0..=n {
            for j in i..=n {
                if let Some(ins) = self.evaluate_insertion(order, now, i, j, oracle) {
                    if best.is_none_or(|b| ins.added_cost < b.added_cost) {
                        best = Some(ins);
                    }
                }
            }
        }
        best
    }

    /// Evaluate inserting pick-up before original index `i` and drop-off
    /// before original index `j` (`j ≥ i`; the drop-off directly follows
    /// the pick-up when `j == i`).
    fn evaluate_insertion<C: TravelCost>(
        &self,
        order: &Order,
        now: Ts,
        i: usize,
        j: usize,
        oracle: &C,
    ) -> Option<Insertion> {
        // Build the tentative stop sequence lazily via an iterator of
        // (node, order-id, kind) triples.
        let mut seq: Vec<Stop> = Vec::with_capacity(self.stops.len() + 2);
        for (idx, s) in self.stops.iter().enumerate() {
            if idx == i {
                seq.push(Stop::pickup(order.pickup, order.id));
            }
            if idx == j {
                seq.push(Stop::dropoff(order.dropoff, order.id));
            }
            seq.push(s.stop);
        }
        if i == self.stops.len() {
            seq.push(Stop::pickup(order.pickup, order.id));
        }
        if j == self.stops.len() {
            seq.push(Stop::dropoff(order.dropoff, order.id));
        }
        // Walk the sequence checking capacity and deadlines.
        let start_time = self.time.max(now);
        let mut t = start_time;
        let mut cur = self.loc;
        let mut load = self.onboard;
        let mut dropoff_eta = None;
        let mut total_cost: Dur = 0;
        for s in &seq {
            let leg = oracle.cost(cur, s.node);
            t += leg;
            total_cost += leg;
            cur = s.node;
            let o = if s.order == order.id {
                order
            } else {
                self.orders.get(&s.order)?
            };
            match s.kind {
                StopKind::Pickup => {
                    load += o.riders;
                    if load > self.capacity {
                        return None;
                    }
                }
                StopKind::Dropoff => {
                    load = load.saturating_sub(o.riders);
                    if t >= o.deadline {
                        return None;
                    }
                    if s.order == order.id {
                        dropoff_eta = Some(t);
                    }
                }
            }
        }
        let dropoff_eta = dropoff_eta?;
        let added = total_cost - self.remaining_cost(oracle);
        Some(Insertion {
            pickup_pos: i,
            dropoff_pos: j + 1, // account for the inserted pick-up
            added_cost: added,
            dropoff_eta,
        })
    }

    /// Commit an insertion previously returned by [`Self::best_insertion`]
    /// (recomputing all ETAs), registering the order as active.
    pub fn apply_insertion<C: TravelCost>(
        &mut self,
        order: Order,
        ins: Insertion,
        now: Ts,
        oracle: &C,
    ) {
        let pickup = Stop::pickup(order.pickup, order.id);
        let dropoff = Stop::dropoff(order.dropoff, order.id);
        self.stops.insert(
            ins.pickup_pos,
            ScheduledStop {
                stop: pickup,
                eta: 0,
            },
        );
        self.stops.insert(
            ins.dropoff_pos,
            ScheduledStop {
                stop: dropoff,
                eta: 0,
            },
        );
        self.orders.insert(order.id, order);
        // Recompute every ETA from the current position.
        let mut t = self.time.max(now);
        let mut cur = self.loc;
        for s in self.stops.iter_mut() {
            t += oracle.cost(cur, s.stop.node);
            cur = s.stop.node;
            s.eta = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl watter_core::TravelBound for Line {}

    fn order(id: u32, p: u32, d: u32, deadline: Ts) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release: 0,
            deadline,
            wait_limit: 1_000,
            direct_cost: Line.cost(NodeId(p), NodeId(d)),
        }
    }

    #[test]
    fn insert_into_idle_schedule() {
        let s = Schedule::idle(NodeId(0), 0, 4);
        let o = order(0, 2, 7, 10_000);
        let ins = s.best_insertion(&o, 0, &Line).unwrap();
        // approach 20 + trip 50
        assert_eq!(ins.added_cost, 70);
        assert_eq!(ins.dropoff_eta, 70);
    }

    #[test]
    fn apply_then_advance_completes_order() {
        let mut s = Schedule::idle(NodeId(0), 0, 4);
        let o = order(0, 2, 7, 10_000);
        let ins = s.best_insertion(&o, 0, &Line).unwrap();
        s.apply_insertion(o, ins, 0, &Line);
        assert_eq!(s.stops.len(), 2);
        assert!(s.advance(30).is_empty()); // past pick-up only
        assert_eq!(s.onboard, 1);
        let done = s.advance(100);
        assert_eq!(done, vec![OrderId(0)]);
        assert!(s.is_idle());
        assert_eq!(s.loc, NodeId(7));
    }

    #[test]
    fn nested_insertion_is_cheaper_than_append() {
        let mut s = Schedule::idle(NodeId(0), 0, 4);
        let big = order(0, 0, 10, 10_000);
        let ins = s.best_insertion(&big, 0, &Line).unwrap();
        s.apply_insertion(big, ins, 0, &Line);
        // Nested order 4→6 should be inserted inside, adding zero cost.
        let small = order(1, 4, 6, 10_000);
        let ins = s.best_insertion(&small, 0, &Line).unwrap();
        assert_eq!(ins.added_cost, 0);
    }

    #[test]
    fn capacity_blocks_insertion() {
        let mut s = Schedule::idle(NodeId(0), 0, 1);
        let a = order(0, 0, 10, 10_000);
        let ins = s.best_insertion(&a, 0, &Line).unwrap();
        s.apply_insertion(a, ins, 0, &Line);
        // Overlapping second order cannot fit a 1-seat vehicle...
        let b = order(1, 4, 6, 10_000);
        let ins = s.best_insertion(&b, 0, &Line);
        // ...except after the first drop-off (sequential service).
        let ins = ins.unwrap();
        assert!(ins.pickup_pos >= 2, "must insert after o0's drop-off");
    }

    #[test]
    fn deadline_of_existing_order_respected() {
        let mut s = Schedule::idle(NodeId(0), 0, 4);
        let urgent = order(0, 0, 10, 105); // direct 100, slack 5
        let ins = s.best_insertion(&urgent, 0, &Line).unwrap();
        s.apply_insertion(urgent, ins, 0, &Line);
        // Any detour > 0 busts o0's deadline; order 5→4 (backwards) must
        // be appended after o0's drop-off or rejected.
        let other = order(1, 5, 4, 130);
        assert!(s.best_insertion(&other, 0, &Line).is_none());
    }

    #[test]
    fn deadline_of_new_order_respected() {
        let s = Schedule::idle(NodeId(0), 0, 4);
        let late = order(0, 2, 7, 60); // needs 70 s from worker start
        assert!(s.best_insertion(&late, 0, &Line).is_none());
    }

    #[test]
    fn remaining_cost_walks_stops() {
        let mut s = Schedule::idle(NodeId(0), 0, 4);
        let o = order(0, 2, 7, 10_000);
        let ins = s.best_insertion(&o, 0, &Line).unwrap();
        s.apply_insertion(o, ins, 0, &Line);
        assert_eq!(s.remaining_cost(&Line), 70);
    }
}
