//! Pool observation interface for offline experience generation.
//!
//! Section VI-B trains the value function on experience generated "by
//! simulating the dispatch process of the framework incorporated with the
//! proposed grouping strategy". The simulator reports every per-order
//! decision event through [`PoolObserver`]; `watter-learn` implements it to
//! featurize states and fill the replay memory, while production runs use
//! [`NoopObserver`] at zero cost.

use watter_core::{Dur, EnvSnapshot, Order, Ts};

/// Receives the life-cycle events of pooled orders during simulation.
pub trait PoolObserver {
    /// The order stayed in the pool through the check at `now` (a *wait*
    /// action, `a = 0`).
    fn on_wait(&mut self, order: &Order, now: Ts, env: &EnvSnapshot);

    /// The order was dispatched at `now` with realized detour `detour`
    /// (a *dispatch* action, `a = 1`).
    fn on_dispatch(&mut self, order: &Order, detour: Dur, now: Ts, env: &EnvSnapshot);

    /// The order expired / was rejected at `now`.
    fn on_expire(&mut self, order: &Order, now: Ts, env: &EnvSnapshot);
}

/// Observer that ignores everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl PoolObserver for NoopObserver {
    fn on_wait(&mut self, _: &Order, _: Ts, _: &EnvSnapshot) {}
    fn on_dispatch(&mut self, _: &Order, _: Dur, _: Ts, _: &EnvSnapshot) {}
    fn on_expire(&mut self, _: &Order, _: Ts, _: &EnvSnapshot) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{NodeId, OrderId};

    #[test]
    fn noop_observer_is_inert() {
        let mut obs = NoopObserver;
        let env = EnvSnapshot::empty(2);
        let o = Order {
            id: OrderId(0),
            pickup: NodeId(0),
            dropoff: NodeId(1),
            riders: 1,
            release: 0,
            deadline: 100,
            wait_limit: 10,
            direct_cost: 50,
        };
        obs.on_wait(&o, 0, &env);
        obs.on_dispatch(&o, 5, 10, &env);
        obs.on_expire(&o, 20, &env);
    }
}
