//! # watter-strategy
//!
//! Dispatch decision strategies (Section V).
//!
//! The order pool hands the decision maker a candidate best group; the
//! policy answers **dispatch now** or **keep holding** (Algorithm 2's
//! `MakeDecision`). Three policies are provided, matching the paper's three
//! WATTER variants:
//!
//! * [`OnlinePolicy`] — WATTER-online: dispatch as early as possible;
//! * [`TimeoutPolicy`] — WATTER-timeout: dispatch as late as possible;
//! * [`ThresholdPolicy`] — WATTER-expect: Algorithm 2, dispatch when the
//!   group's mean extra time is at most the mean expected threshold `θ̄`.
//!
//! Thresholds come from a pluggable [`ThresholdProvider`] so the same policy
//! runs with a constant threshold, the GMM-optimal threshold of Section V-C,
//! or the learned value function of Section VI (`θ = p − V(s)`).

use watter_core::{Dur, EnvSnapshot, Group, GroupQuality, Order, Ts};

pub mod observer;
pub use observer::{NoopObserver, PoolObserver};

/// Everything a policy may consult besides the group itself.
#[derive(Clone, Copy, Debug)]
pub struct DecisionContext<'a> {
    /// Current system timestamp `t_s`.
    pub now: Ts,
    /// Spatio-temporal demand/supply snapshot (Section VI-A state).
    pub env: &'a EnvSnapshot,
}

/// Supplies the expected extra-time threshold `θ^(i)` for an order in the
/// current spatio-temporal environment.
pub trait ThresholdProvider {
    /// The threshold `θ^(i)` for `order` (seconds of extra time).
    fn threshold(&self, order: &Order, ctx: &DecisionContext<'_>) -> f64;
}

/// A constant threshold for every order — the simplest ablation and the
/// base case of Section V-A's discussion.
#[derive(Clone, Copy, Debug)]
pub struct ConstantThreshold(pub f64);

impl ThresholdProvider for ConstantThreshold {
    fn threshold(&self, _order: &Order, _ctx: &DecisionContext<'_>) -> f64 {
        self.0
    }
}

/// A threshold proportional to the order's rejection penalty,
/// `θ^(i) = fraction · p^(i)` — a useful scale-aware baseline provider.
#[derive(Clone, Copy, Debug)]
pub struct PenaltyFractionThreshold {
    /// Fraction of the penalty used as threshold, in `[0, 1]`.
    pub fraction: f64,
}

impl ThresholdProvider for PenaltyFractionThreshold {
    fn threshold(&self, order: &Order, _ctx: &DecisionContext<'_>) -> f64 {
        self.fraction * order.penalty() as f64
    }
}

/// Dispatch-or-hold decision maker (Algorithm 2's role).
pub trait DecisionPolicy {
    /// Decide whether to dispatch `group` now. `quality` carries the mean
    /// extra time, earliest watching-window timeout and group expiry already
    /// evaluated at `ctx.now`.
    fn decide(&mut self, group: &Group, quality: GroupQuality, ctx: &DecisionContext<'_>) -> bool;

    /// Short name used in experiment tables.
    fn name(&self) -> &'static str;
}

/// WATTER-online: dispatch every order as early as possible (the instant a
/// feasible shared group exists).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlinePolicy;

impl DecisionPolicy for OnlinePolicy {
    fn decide(
        &mut self,
        _group: &Group,
        _quality: GroupQuality,
        _ctx: &DecisionContext<'_>,
    ) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "WATTER-online"
    }
}

/// WATTER-timeout: dispatch as late as possible — only when some member's
/// watching window has elapsed or the group would expire before the next
/// periodic check.
#[derive(Clone, Copy, Debug)]
pub struct TimeoutPolicy {
    /// Period of the asynchronous pool checks (Algorithm 1's cadence); the
    /// policy must not let a group expire between two checks.
    pub check_period: Dur,
}

impl DecisionPolicy for TimeoutPolicy {
    fn decide(&mut self, _group: &Group, quality: GroupQuality, ctx: &DecisionContext<'_>) -> bool {
        ctx.now >= quality.earliest_timeout || ctx.now + self.check_period > quality.expires_at
    }

    fn name(&self) -> &'static str {
        "WATTER-timeout"
    }
}

/// WATTER-expect: the average extra-time threshold strategy (Algorithm 2).
///
/// * line 1–3: if some member exceeded its watching window, dispatch;
/// * line 4–6: dispatch iff `t̄_e ≤ θ̄` where `θ̄` is the mean expected
///   threshold over members.
pub struct ThresholdPolicy<P> {
    provider: P,
    /// Like [`TimeoutPolicy`], never silently lose a group to expiry between
    /// checks (the pool would recompute, but the opportunity is gone).
    pub check_period: Dur,
}

impl<P: ThresholdProvider> ThresholdPolicy<P> {
    /// Build the policy around a threshold provider.
    pub fn new(provider: P, check_period: Dur) -> Self {
        Self {
            provider,
            check_period,
        }
    }

    /// Access the provider (e.g. to inspect a learned model).
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// Mean threshold `θ̄` over the group's members (Algorithm 2 line 5).
    pub fn mean_threshold(&self, group: &Group, ctx: &DecisionContext<'_>) -> f64 {
        if group.is_empty() {
            return 0.0;
        }
        let sum: f64 = group
            .orders
            .iter()
            .map(|o| self.provider.threshold(o, ctx))
            .sum();
        sum / group.len() as f64
    }
}

impl<P: ThresholdProvider> DecisionPolicy for ThresholdPolicy<P> {
    fn decide(&mut self, group: &Group, quality: GroupQuality, ctx: &DecisionContext<'_>) -> bool {
        // Algorithm 2 lines 1–3: earliest watching-window timeout elapsed.
        if ctx.now > quality.earliest_timeout {
            return true;
        }
        // Expiry guard (engineering): the group becomes infeasible before
        // the next check, so it is now or never for this grouping.
        if ctx.now + self.check_period > quality.expires_at {
            return true;
        }
        // Algorithm 2 lines 4–6.
        quality.mean_extra_time <= self.mean_threshold(group, ctx)
    }

    fn name(&self) -> &'static str {
        "WATTER-expect"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{CostWeights, NodeId, OrderId, Route, Stop, TravelCost};

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }

    fn order(id: u32, p: u32, d: u32, release: Ts, deadline: Ts) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline,
            wait_limit: 100,
            direct_cost: Line.cost(NodeId(p), NodeId(d)),
        }
    }

    fn pair_group() -> Group {
        let o0 = order(0, 0, 10, 0, 10_000);
        let o1 = order(1, 2, 8, 0, 10_000);
        let route = Route::new(
            vec![
                Stop::pickup(NodeId(0), OrderId(0)),
                Stop::pickup(NodeId(2), OrderId(1)),
                Stop::dropoff(NodeId(8), OrderId(1)),
                Stop::dropoff(NodeId(10), OrderId(0)),
            ],
            &Line,
        );
        Group::new(vec![o0, o1], route, &Line)
    }

    fn ctx(now: Ts, env: &EnvSnapshot) -> DecisionContext<'_> {
        DecisionContext { now, env }
    }

    #[test]
    fn online_always_dispatches() {
        let env = EnvSnapshot::empty(2);
        let g = pair_group();
        let q = g.quality(0, CostWeights::default(), &Line);
        assert!(OnlinePolicy.decide(&g, q, &ctx(0, &env)));
    }

    #[test]
    fn timeout_waits_until_window() {
        let env = EnvSnapshot::empty(2);
        let g = pair_group();
        let mut p = TimeoutPolicy { check_period: 10 };
        let q_early = g.quality(0, CostWeights::default(), &Line);
        assert!(!p.decide(&g, q_early, &ctx(0, &env)));
        let q_late = g.quality(100, CostWeights::default(), &Line);
        assert!(p.decide(&g, q_late, &ctx(100, &env)));
    }

    #[test]
    fn timeout_rescues_expiring_group() {
        let env = EnvSnapshot::empty(2);
        let g = pair_group();
        let mut p = TimeoutPolicy { check_period: 10 };
        let exp = g.expires_at(&Line);
        let q = g.quality(exp - 5, CostWeights::default(), &Line);
        assert!(p.decide(&g, q, &ctx(exp - 5, &env)));
    }

    #[test]
    fn threshold_compares_mean_extra_to_mean_theta() {
        let env = EnvSnapshot::empty(2);
        let g = pair_group();
        // At now=0: o0 detour 0/response 0; o1 subroute 80 vs direct 60 →
        // detour 20 (includes the pre-board ride per Definition 5); mean
        // extra = 10.
        let q = g.quality(0, CostWeights::default(), &Line);
        assert!((q.mean_extra_time - 10.0).abs() < 1e-9);
        let mut low = ThresholdPolicy::new(ConstantThreshold(5.0), 10);
        let mut high = ThresholdPolicy::new(ConstantThreshold(15.0), 10);
        assert!(!low.decide(&g, q, &ctx(0, &env)));
        assert!(high.decide(&g, q, &ctx(0, &env)));
    }

    #[test]
    fn threshold_forces_dispatch_after_window() {
        let env = EnvSnapshot::empty(2);
        let g = pair_group();
        let mut p = ThresholdPolicy::new(ConstantThreshold(0.0), 10);
        let q = g.quality(101, CostWeights::default(), &Line);
        assert!(p.decide(&g, q, &ctx(101, &env)));
    }

    #[test]
    fn penalty_fraction_scales_with_order() {
        let env = EnvSnapshot::empty(2);
        let o = order(0, 0, 10, 0, 10_000); // penalty = 10000 − 100 = 9900
        let p = PenaltyFractionThreshold { fraction: 0.1 };
        let c = ctx(0, &env);
        assert!((p.threshold(&o, &c) - 990.0).abs() < 1e-9);
    }

    #[test]
    fn mean_threshold_averages_members() {
        let env = EnvSnapshot::empty(2);
        let g = pair_group();
        let pol = ThresholdPolicy::new(ConstantThreshold(7.0), 10);
        assert!((pol.mean_threshold(&g, &ctx(0, &env)) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn policy_names() {
        assert_eq!(OnlinePolicy.name(), "WATTER-online");
        assert_eq!(TimeoutPolicy { check_period: 1 }.name(), "WATTER-timeout");
        assert_eq!(
            ThresholdPolicy::new(ConstantThreshold(0.0), 1).name(),
            "WATTER-expect"
        );
    }
}
