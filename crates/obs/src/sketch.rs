//! Bounded streaming percentile sketch.
//!
//! A fixed-size log₂-bucket histogram with running count/sum/min/max,
//! plus the raw samples retained only while the population is small
//! (≤ [`EXACT_CAP`]). Small runs — every test, every reproduction
//! study — therefore report *exact* nearest-rank percentiles,
//! byte-identical to sorting the sample `Vec`; long daemon runs
//! degrade gracefully to bucket-resolution estimates (≤ 2× relative
//! error, clamped to the observed min/max) while memory stays
//! constant no matter how many ticks the run accumulates.
//!
//! Serialization is plain field-by-field serde, so sketches embed in
//! snapshots and KPI reports unchanged. Recording is deterministic:
//! the bucket index is derived from the f64 exponent bits, not a
//! floating `log2`, so the same sample stream yields the same sketch
//! on every platform.

use serde::{Deserialize, Serialize};

/// Exact samples are kept verbatim up to this population, then the
/// sketch drops them and answers from buckets alone. Large enough that
/// unit tests and the paper-scale studies stay exact; small enough
/// that a multi-day daemon holds constant memory.
pub const EXACT_CAP: usize = 4096;

/// Number of log₂ buckets. Bucket `i` holds samples with
/// `floor(log2(v)) == MIN_EXP + i` (clamped at both ends), covering
/// ~2⁻²⁰ … 2⁴³ — sub-microsecond nanoseconds up to ~100 days.
const BUCKETS: usize = 64;

/// Exponent of the lowest bucket's lower edge.
const MIN_EXP: i32 = -20;

/// Log₂-bucket index of a sample. Zero, negatives, NaN and subnormals
/// all land in bucket 0. Uses the IEEE-754 exponent field directly so
/// the mapping is exact and platform-independent.
fn bucket_of(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    (exp - MIN_EXP).clamp(0, BUCKETS as i32 - 1) as usize
}

/// Bounded streaming summary of a sample population.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sketch {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// `BUCKETS` log₂ buckets (a `Vec` so plain serde derives apply;
    /// length is fixed by construction).
    buckets: Vec<u64>,
    /// Raw samples, retained only while `count <= EXACT_CAP`.
    exact: Vec<f64>,
}

impl Default for Sketch {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![0; BUCKETS],
            exact: Vec::new(),
        }
    }
}

impl Sketch {
    /// Empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if self.count == 1 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.sum += v;
        // Tolerate a deserialized sketch with a truncated bucket vec.
        let idx = bucket_of(v).min(self.buckets.len().saturating_sub(1));
        if let Some(b) = self.buckets.get_mut(idx) {
            *b += 1;
        }
        if self.count as usize <= EXACT_CAP {
            self.exact.push(v);
        } else if !self.exact.is_empty() {
            // Crossing the cap: drop the exact window for good — from
            // here on percentiles come from the buckets.
            self.exact = Vec::new();
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// `true` while the sketch still holds every sample verbatim, i.e.
    /// quantiles are exact nearest-rank values.
    pub fn is_exact(&self) -> bool {
        self.count == 0 || !self.exact.is_empty()
    }

    /// Nearest-rank percentile (`p` in 0–100; 0 when empty). Exact
    /// while the population is within [`EXACT_CAP`]; afterwards the
    /// upper edge of the covering log₂ bucket, clamped to the observed
    /// `[min, max]`.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        if !self.exact.is_empty() {
            let mut sorted = self.exact.clone();
            sorted.sort_by(f64::total_cmp);
            return sorted[rank as usize - 1];
        }
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let edge = 2.0f64.powi(MIN_EXP + i as i32 + 1);
                return edge.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_nearest_rank_under_cap() {
        let mut s = Sketch::new();
        for i in (1..=100).rev() {
            s.record(i as f64);
        }
        assert!(s.is_exact());
        assert_eq!(s.quantile(50.0), 50.0);
        assert_eq!(s.quantile(90.0), 90.0);
        assert_eq!(s.quantile(99.0), 99.0);
        assert_eq!(s.quantile(100.0), 100.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.mean(), 50.5);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s = Sketch::new();
        s.record(7.5);
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(s.quantile(p), 7.5);
        }
    }

    #[test]
    fn empty_sketch_reports_zeros() {
        let s = Sketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(50.0), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn memory_bounded_past_cap() {
        let mut s = Sketch::new();
        for i in 0..(EXACT_CAP as u64 * 3) {
            s.record((i % 1000) as f64 + 1.0);
        }
        assert!(!s.is_exact());
        assert!(s.exact.is_empty());
        assert_eq!(s.buckets.len(), BUCKETS);
        assert_eq!(s.count(), EXACT_CAP as u64 * 3);
        // Bucket estimate: within one power of two of the true p50
        // (~500), clamped into the observed range.
        let p50 = s.quantile(50.0);
        assert!((256.0..=1000.0).contains(&p50), "p50 estimate {p50}");
        assert_eq!(s.quantile(100.0), 1000.0);
    }

    #[test]
    fn all_equal_samples_collapse() {
        let mut s = Sketch::new();
        for _ in 0..(EXACT_CAP + 10) {
            s.record(42.0);
        }
        // Even in bucket mode every quantile clamps to [min, max] = 42.
        for p in [1.0, 50.0, 99.0] {
            assert_eq!(s.quantile(p), 42.0);
        }
    }

    #[test]
    fn zero_and_negative_land_in_bucket_zero() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-3.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(1e-300), 0);
        let mut s = Sketch::new();
        s.record(0.0);
        s.record(-1.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.min(), -1.0);
    }

    #[test]
    fn bucket_index_matches_log2() {
        assert_eq!(bucket_of(1.0), (-MIN_EXP) as usize);
        assert_eq!(bucket_of(2.0), (1 - MIN_EXP) as usize);
        assert_eq!(bucket_of(3.9), (1 - MIN_EXP) as usize);
        assert_eq!(bucket_of(4.0), (2 - MIN_EXP) as usize);
        assert_eq!(bucket_of(1e300), BUCKETS - 1);
    }

    #[test]
    fn json_round_trip() {
        let mut s = Sketch::new();
        for v in [3.5, 1.0, 99.25] {
            s.record(v);
        }
        let text = serde_json::to_string(&s).expect("serialize");
        let back: Sketch = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, s);
        assert_eq!(back.quantile(50.0), s.quantile(50.0));
    }
}
