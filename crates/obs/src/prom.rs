//! Exposition: the deterministic registry snapshot, its Prometheus
//! text rendering, and a strict parser used by tests and CI to prove
//! the rendering stays valid.
//!
//! The snapshot is the single serialization surface of the registry:
//! `#metrics PATH` writes it as JSON (`serde`) next to the Prometheus
//! text ([`render_prometheus`]), and `--kpis`-style consumers embed
//! it in their reports. Ordering is fixed (enum order for counters,
//! gauges and stages; ascending window start), so equal registries
//! produce byte-equal expositions.

use serde::{Deserialize, Serialize};

/// One counter sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name (snake_case, no namespace prefix).
    pub name: String,
    /// Monotone value.
    pub value: u64,
}

/// One gauge sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Instantaneous level.
    pub value: i64,
}

/// Latency summary of one hot-path stage, microseconds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageSample {
    /// Stage label (`Stage::name`).
    pub stage: String,
    /// Recorded calls.
    pub count: u64,
    /// Total stage time.
    pub sum_us: f64,
    /// Mean call latency.
    pub mean_us: f64,
    /// Median call latency.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst call.
    pub max_us: f64,
}

/// One virtual-time window row with its derived rates.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowSample {
    /// Window start on the run clock.
    pub start: i64,
    /// Orders admitted in this window.
    pub admitted: u64,
    /// Orders served.
    pub served: u64,
    /// Orders rejected.
    pub rejected: u64,
    /// Orders shed.
    pub shed: u64,
    /// Checks executed.
    pub checks: u64,
    /// Backlog high-water mark.
    pub backlog_max: u64,
    /// Worst watermark band touched.
    pub band_max: u64,
    /// Admission throughput over the window width.
    pub orders_per_sec: f64,
    /// In-window service rate.
    pub service_rate_pct: f64,
}

/// Deterministic-ordered snapshot of the whole registry.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// `false` for the empty snapshot of a disabled recorder.
    pub enabled: bool,
    /// Every counter, in [`crate::Counter::ALL`] order.
    pub counters: Vec<CounterSample>,
    /// Every gauge, in [`crate::Gauge::ALL`] order.
    pub gauges: Vec<GaugeSample>,
    /// Stages with at least one recorded call, in
    /// [`crate::Stage::ALL`] order.
    pub stages: Vec<StageSample>,
    /// Window width of the series below, virtual seconds.
    pub window_secs: i64,
    /// Retained windows, ascending by start.
    pub windows: Vec<WindowSample>,
    /// Next trace sequence number (events emitted so far).
    pub trace_seq: u64,
    /// Trace records lost to ring-buffer overflow.
    pub trace_dropped: u64,
}

impl ObsSnapshot {
    /// Fetch one counter by name (testing convenience).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Fetch one stage sample by label.
    pub fn stage(&self, name: &str) -> Option<&StageSample> {
        self.stages.iter().find(|s| s.stage == name)
    }
}

fn prom_name(kind: &str, name: &str) -> String {
    format!(
        "watter_{name}{}",
        if kind == "counter" { "_total" } else { "" }
    )
}

/// Render a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` comments, `_total`-suffixed counters,
/// plain gauges, and one summary family
/// `watter_stage_latency_microseconds{stage=...,quantile=...}` for
/// the per-stage latency percentiles.
pub fn render_prometheus(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = prom_name("counter", &c.name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }
    for g in &snap.gauges {
        let name = prom_name("gauge", &g.name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
    }
    if !snap.stages.is_empty() {
        out.push_str("# TYPE watter_stage_latency_microseconds summary\n");
        for s in &snap.stages {
            for (q, v) in [("0.5", s.p50_us), ("0.9", s.p90_us), ("0.99", s.p99_us)] {
                out.push_str(&format!(
                    "watter_stage_latency_microseconds{{stage=\"{}\",quantile=\"{q}\"}} {v}\n",
                    s.stage
                ));
            }
            out.push_str(&format!(
                "watter_stage_latency_microseconds_sum{{stage=\"{}\"}} {}\n",
                s.stage, s.sum_us
            ));
            out.push_str(&format!(
                "watter_stage_latency_microseconds_count{{stage=\"{}\"}} {}\n",
                s.stage, s.count
            ));
        }
    }
    if !snap.windows.is_empty() {
        out.push_str("# TYPE watter_window_orders_per_sec gauge\n");
        out.push_str("# TYPE watter_window_service_rate_pct gauge\n");
        out.push_str("# TYPE watter_window_backlog_max gauge\n");
        for w in &snap.windows {
            out.push_str(&format!(
                "watter_window_orders_per_sec{{start=\"{}\"}} {}\n",
                w.start, w.orders_per_sec
            ));
            out.push_str(&format!(
                "watter_window_service_rate_pct{{start=\"{}\"}} {}\n",
                w.start, w.service_rate_pct
            ));
            out.push_str(&format!(
                "watter_window_backlog_max{{start=\"{}\",band=\"{}\"}} {}\n",
                w.start, w.band_max, w.backlog_max
            ));
        }
    }
    out.push_str(&format!(
        "# TYPE watter_trace_seq counter\nwatter_trace_seq {}\n",
        snap.trace_seq
    ));
    out.push_str(&format!(
        "# TYPE watter_trace_dropped_total counter\nwatter_trace_dropped_total {}\n",
        snap.trace_dropped
    ));
    out
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_labels(s: &str) -> bool {
    // `name="value",name="value"` — values may not contain unescaped
    // quotes (we never emit any, so reject them outright).
    for pair in s.split(',') {
        let Some((k, v)) = pair.split_once('=') else {
            return false;
        };
        if !valid_metric_name(k) {
            return false;
        }
        if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
            return false;
        }
        if v[1..v.len() - 1].contains('"') {
            return false;
        }
    }
    true
}

/// Strictly validate a Prometheus text exposition; returns the number
/// of samples or the first offending line. Used by tests and the CI
/// smoke to prove [`render_prometheus`]'s output stays scrapeable.
pub fn parse_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let c = comment.trim_start();
            if !(c.starts_with("TYPE ") || c.starts_with("HELP ") || c.is_empty()) {
                return Err(format!("line {}: malformed comment `{line}`", lineno + 1));
            }
            continue;
        }
        // `name[{labels}] value [timestamp]`
        let (name_part, rest) = match line.find(['{', ' ']) {
            Some(i) => line.split_at(i),
            None => return Err(format!("line {}: no value in `{line}`", lineno + 1)),
        };
        if !valid_metric_name(name_part) {
            return Err(format!(
                "line {}: invalid metric name `{name_part}`",
                lineno + 1
            ));
        }
        let rest = if let Some(labels_and_more) = rest.strip_prefix('{') {
            let Some((labels, tail)) = labels_and_more.split_once('}') else {
                return Err(format!("line {}: unterminated labels", lineno + 1));
            };
            if !valid_labels(labels) {
                return Err(format!(
                    "line {}: malformed labels `{{{labels}}}`",
                    lineno + 1
                ));
            }
            tail
        } else {
            rest
        };
        let mut fields = rest.split_whitespace();
        let Some(value) = fields.next() else {
            return Err(format!("line {}: no value in `{line}`", lineno + 1));
        };
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {}: non-numeric value `{value}`", lineno + 1));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {}: bad timestamp `{ts}`", lineno + 1));
            }
        }
        if fields.next().is_some() {
            return Err(format!("line {}: trailing fields", lineno + 1));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Counter, Gauge, Recorder, Stage};
    use crate::window::WindowField;

    fn populated() -> ObsSnapshot {
        let r = Recorder::enabled();
        r.add(Counter::OrdersAdmitted, 40);
        r.add(Counter::OrdersServed, 31);
        r.gauge_set(Gauge::Backlog, 3);
        r.record_stage_nanos(Stage::PoolInsert, 1_000);
        r.record_stage_nanos(Stage::PoolInsert, 9_000);
        r.window_count(30, WindowField::Admitted);
        r.window_backlog(30, 7, 1);
        r.trace(30, crate::TraceEvent::OrderAdmitted { order: 1 });
        r.snapshot()
    }

    #[test]
    fn rendering_parses_back() {
        let snap = populated();
        let text = render_prometheus(&snap);
        let n = parse_prometheus(&text).expect("valid exposition");
        assert!(n > 20, "expected a full exposition, got {n} samples");
        assert!(text.contains("watter_orders_admitted_total 40"));
        assert!(text.contains("watter_backlog 3"));
        assert!(text.contains("stage=\"pool_insert\",quantile=\"0.99\""));
        assert!(text.contains("watter_window_orders_per_sec{start=\"0\"}"));
        assert!(text.contains("watter_trace_seq 1"));
    }

    #[test]
    fn empty_snapshot_renders_and_parses() {
        let text = render_prometheus(&ObsSnapshot::default());
        let n = parse_prometheus(&text).expect("valid exposition");
        assert_eq!(n, 2); // trace_seq + trace_dropped only
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("not a metric line").is_err());
        assert!(parse_prometheus("name{unterminated 1").is_err());
        assert!(parse_prometheus("name{k=\"v\"} notanumber").is_err());
        assert!(parse_prometheus("9leading_digit 1").is_err());
        assert!(parse_prometheus("ok_metric 1 notatimestamp").is_err());
        assert_eq!(parse_prometheus("ok_metric 1 1700000000000"), Ok(1));
        assert_eq!(parse_prometheus("ok{a=\"b\",c=\"d\"} +Inf"), Ok(1));
    }

    #[test]
    fn snapshot_json_round_trip() {
        let snap = populated();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: ObsSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
        assert_eq!(back.counter("orders_admitted"), 40);
        assert!(back.stage("pool_insert").is_some());
        assert!(back.stage("planner").is_none());
    }
}
