//! Per-window time-series KPIs over the run's virtual clock.
//!
//! Whole-run aggregates hide the shape of a day: a rush-hour surge
//! that briefly saturates the fleet is invisible in a single service
//! rate. [`WindowSeries`] buckets the event stream into fixed-width
//! virtual-time windows and accumulates per-window order flow,
//! backlog high-water marks and the worst backpressure watermark band
//! touched — the orders/s and service-rate curves a dashboard plots.
//!
//! Windows are keyed by the *run clock* (event timestamps), not wall
//! time, so the series is a pure function of the event stream: the
//! same scenario yields the same windows whether it ran live, batch,
//! or resumed from a checkpoint. The series is bounded
//! ([`MAX_WINDOWS`]); overflow drops the oldest windows and counts
//! them.

use serde::{Deserialize, Serialize};

/// Maximum retained windows; overflow evicts the oldest.
pub const MAX_WINDOWS: usize = 1024;

/// Default window width in virtual seconds (10 simulated minutes).
pub const DEFAULT_WINDOW_SECS: i64 = 600;

/// Which per-window order-flow counter to bump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowField {
    /// Orders admitted by ingest.
    Admitted,
    /// Orders served.
    Served,
    /// Orders rejected (deadline exhausted).
    Rejected,
    /// Orders shed by backpressure.
    Shed,
    /// Periodic checks executed.
    Checks,
}

/// Accumulated KPIs of one virtual-time window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowKpis {
    /// Window start on the run clock (multiple of the window width).
    pub start: i64,
    /// Orders admitted in this window.
    pub admitted: u64,
    /// Orders served in this window.
    pub served: u64,
    /// Orders rejected in this window.
    pub rejected: u64,
    /// Orders shed by backpressure in this window.
    pub shed: u64,
    /// Checks executed in this window.
    pub checks: u64,
    /// Backlog depth high-water mark observed in this window.
    pub backlog_max: u64,
    /// Worst backpressure watermark band touched (0 = normal, higher
    /// bands mean deeper into the low→high watermark range).
    pub band_max: u64,
}

impl WindowKpis {
    /// Admitted-order throughput over the window width.
    pub fn orders_per_sec(&self, window_secs: i64) -> f64 {
        if window_secs <= 0 {
            0.0
        } else {
            self.admitted as f64 / window_secs as f64
        }
    }

    /// `100 × served / (served + rejected)` within the window (0 when
    /// no order reached an outcome here).
    pub fn service_rate_pct(&self) -> f64 {
        let outcomes = self.served + self.rejected;
        if outcomes == 0 {
            0.0
        } else {
            100.0 * self.served as f64 / outcomes as f64
        }
    }
}

/// Ordered, bounded series of [`WindowKpis`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowSeries {
    /// Window width in virtual seconds.
    pub window_secs: i64,
    /// Retained windows, ascending by `start`.
    pub windows: Vec<WindowKpis>,
    /// Windows evicted by overflow.
    pub dropped: u64,
}

impl Default for WindowSeries {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW_SECS)
    }
}

impl WindowSeries {
    /// Empty series with the given window width (minimum 1 s).
    pub fn new(window_secs: i64) -> Self {
        Self {
            window_secs: window_secs.max(1),
            windows: Vec::new(),
            dropped: 0,
        }
    }

    /// The window covering run-clock instant `at`, creating it (and
    /// evicting the oldest past [`MAX_WINDOWS`]) as needed.
    fn slot(&mut self, at: i64) -> &mut WindowKpis {
        // Saturating: pre-run sentinel stamps (`Ts::MIN` before the
        // first event) must land in an extreme window, not overflow.
        let start = at
            .div_euclid(self.window_secs)
            .saturating_mul(self.window_secs);
        let idx = match self.windows.binary_search_by_key(&start, |w| w.start) {
            Ok(i) => i,
            // A stamp older than everything retained at capacity folds
            // into the oldest window rather than churning evictions.
            Err(0) if self.windows.len() >= MAX_WINDOWS => 0,
            Err(i) => {
                self.windows.insert(
                    i,
                    WindowKpis {
                        start,
                        ..WindowKpis::default()
                    },
                );
                if self.windows.len() > MAX_WINDOWS {
                    self.windows.remove(0);
                    self.dropped += 1;
                    i - 1
                } else {
                    i
                }
            }
        };
        &mut self.windows[idx]
    }

    /// Bump one order-flow counter in the window covering `at`.
    pub fn count(&mut self, at: i64, field: WindowField) {
        let w = self.slot(at);
        match field {
            WindowField::Admitted => w.admitted += 1,
            WindowField::Served => w.served += 1,
            WindowField::Rejected => w.rejected += 1,
            WindowField::Shed => w.shed += 1,
            WindowField::Checks => w.checks += 1,
        }
    }

    /// Fold a backlog observation (depth + watermark band) into the
    /// window covering `at`.
    pub fn note_backlog(&mut self, at: i64, depth: u64, band: u64) {
        let w = self.slot(at);
        w.backlog_max = w.backlog_max.max(depth);
        w.band_max = w.band_max.max(band);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extreme_stamps_do_not_overflow() {
        let mut s = WindowSeries::new(600);
        s.count(i64::MIN, WindowField::Admitted);
        s.note_backlog(i64::MAX, 3, 1);
        assert_eq!(s.windows.len(), 2);
        assert_eq!(s.windows[0].admitted, 1);
        assert_eq!(s.windows[1].backlog_max, 3);
    }

    #[test]
    fn events_bucket_by_virtual_time() {
        let mut s = WindowSeries::new(600);
        s.count(0, WindowField::Admitted);
        s.count(599, WindowField::Admitted);
        s.count(600, WindowField::Served);
        s.count(1800, WindowField::Rejected);
        assert_eq!(s.windows.len(), 3);
        assert_eq!(s.windows[0].start, 0);
        assert_eq!(s.windows[0].admitted, 2);
        assert_eq!(s.windows[1].start, 600);
        assert_eq!(s.windows[1].served, 1);
        assert_eq!(s.windows[2].start, 1800);
        assert_eq!(s.windows[2].rejected, 1);
    }

    #[test]
    fn backlog_keeps_high_water_marks() {
        let mut s = WindowSeries::new(60);
        s.note_backlog(10, 4, 0);
        s.note_backlog(20, 9, 2);
        s.note_backlog(30, 2, 1);
        assert_eq!(s.windows.len(), 1);
        assert_eq!(s.windows[0].backlog_max, 9);
        assert_eq!(s.windows[0].band_max, 2);
    }

    #[test]
    fn derived_rates() {
        let w = WindowKpis {
            admitted: 120,
            served: 30,
            rejected: 10,
            ..WindowKpis::default()
        };
        assert_eq!(w.orders_per_sec(600), 0.2);
        assert_eq!(w.service_rate_pct(), 75.0);
        assert_eq!(WindowKpis::default().service_rate_pct(), 0.0);
    }

    #[test]
    fn bounded_by_max_windows() {
        let mut s = WindowSeries::new(1);
        for t in 0..(MAX_WINDOWS as i64 + 5) {
            s.count(t, WindowField::Admitted);
        }
        assert_eq!(s.windows.len(), MAX_WINDOWS);
        assert_eq!(s.dropped, 5);
        assert_eq!(s.windows[0].start, 5);
    }

    #[test]
    fn out_of_order_stamps_fold_back() {
        let mut s = WindowSeries::new(600);
        s.count(1800, WindowField::Admitted);
        s.count(10, WindowField::Admitted); // older than the last window
        assert_eq!(s.windows.first().expect("non-empty").start, 0);
        let total: u64 = s.windows.iter().map(|w| w.admitted).sum();
        assert_eq!(total, 2);
    }
}
