//! # watter-obs
//!
//! The observability layer of the WATTER reproduction: one crate that
//! every other layer (core, sim, pool, road, binaries) can depend on
//! without pulling in anything beyond the serde shims.
//!
//! Four pieces:
//!
//! * [`Sketch`] — a bounded streaming percentile sketch (fixed
//!   log₂-bucket histogram plus an exact-sample window under a debug
//!   cap). Replaces the unbounded per-tick `Vec` accumulators so
//!   multi-day daemon runs hold constant memory.
//! * [`Recorder`] — the cloneable handle to a lock-cheap metrics
//!   registry: fixed-index atomic [`Counter`]s and [`Gauge`]s, per-
//!   [`Stage`] atomic latency histograms fed by drop-guard
//!   [`SpanTimer`]s, a bounded [`trace`] journal, and virtual-time
//!   [`window`] KPIs. A disabled `Recorder` is a `None` — every
//!   operation short-circuits on one branch, so the hot path pays
//!   nothing when observability is off.
//! * [`TraceEvent`] / [`TraceRecord`] — the typed structured event
//!   journal (order admitted/shed, group formed, degrade flip,
//!   checkpoint written, cache eviction), drained as JSON lines.
//!   Sequence numbers are carried by snapshots so a crash-recovery
//!   replay resumes numbering instead of double-counting.
//! * [`ObsSnapshot`] — the deterministic-ordered exposition of the
//!   whole registry, rendered as JSON (`serde`) or Prometheus text
//!   ([`render_prometheus`], validated by [`parse_prometheus`]).
//!
//! ## Determinism contract
//!
//! Everything in the registry except wall-clock stage latencies is a
//! pure function of the event stream: counters, gauges, stage call
//! *counts*, window KPIs and trace records are bit-identical for the
//! same scenario regardless of thread count or whether the run was
//! snapshotted and resumed. Only the nanosecond fields of the stage
//! histograms (and the cache hit/miss split under concurrent
//! schedules) vary run to run — the same split the engine already
//! makes for `Measurements::decision_nanos` / `Kpis` tick timings.

pub mod prom;
pub mod registry;
pub mod sketch;
pub mod trace;
pub mod window;

pub use prom::{
    parse_prometheus, render_prometheus, CounterSample, GaugeSample, ObsSnapshot, StageSample,
    WindowSample,
};
pub use registry::{Counter, Gauge, Recorder, SpanTimer, Stage};
pub use sketch::{Sketch, EXACT_CAP};
pub use trace::{TraceEvent, TraceRecord, JOURNAL_CAP};
pub use window::{WindowField, WindowKpis, WindowSeries};
