//! Structured event journal: a bounded ring buffer of typed trace
//! events with monotone sequence numbers.
//!
//! The journal is the "what happened, in order" complement to the
//! numeric registry: every notable state transition (order admitted or
//! shed, a group formed, the backpressure policy flipping degrade on,
//! a checkpoint landing, a cache slot evicted) is appended as a
//! [`TraceRecord`] and drained as JSON lines by `--trace PATH`.
//!
//! Sequence numbers are the recovery contract: a snapshot carries the
//! journal's next sequence number, and a restored run resumes from it
//! (`Recorder::bump_trace_seq_to`), so a kill → restore → replay never
//! renumbers or double-counts the events it re-emits. The buffer is
//! bounded ([`JOURNAL_CAP`]); overflow drops the *oldest* records and
//! counts them, so a slow drainer loses history, never memory.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Ring-buffer capacity of the in-memory journal.
pub const JOURNAL_CAP: usize = 65_536;

/// One typed trace event. Fields are plain integers so the journal
/// stays decoupled from the domain crates above it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An order passed ingest validation and was admitted.
    OrderAdmitted { order: u64 },
    /// Backpressure shed an admitted order before dispatch.
    OrderShed { order: u64 },
    /// Backpressure blocked ingest while this order waited.
    OrderBlocked { order: u64 },
    /// An order was admitted under degrade (solo-only dispatch).
    OrderDegraded { order: u64 },
    /// An order reached a worker's route.
    OrderServed {
        order: u64,
        worker: u64,
        group_size: u64,
    },
    /// An order ran out of deadline slack and was rejected.
    OrderRejected { order: u64 },
    /// A pooled group (2+ riders) was committed to a worker.
    GroupFormed { worker: u64, size: u64 },
    /// The backpressure hysteresis flipped degrade on (`true`) or off.
    DegradeFlip { engaged: bool },
    /// A checkpoint generation hit disk (after `lines` input lines).
    CheckpointWritten { lines: u64 },
    /// The cost cache overwrote a slot holding a different pair.
    CacheEviction { slot: u64 },
}

impl TraceEvent {
    /// Stable snake_case tag (the Prometheus/JSON event label).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::OrderAdmitted { .. } => "order_admitted",
            TraceEvent::OrderShed { .. } => "order_shed",
            TraceEvent::OrderBlocked { .. } => "order_blocked",
            TraceEvent::OrderDegraded { .. } => "order_degraded",
            TraceEvent::OrderServed { .. } => "order_served",
            TraceEvent::OrderRejected { .. } => "order_rejected",
            TraceEvent::GroupFormed { .. } => "group_formed",
            TraceEvent::DegradeFlip { .. } => "degrade_flip",
            TraceEvent::CheckpointWritten { .. } => "checkpoint_written",
            TraceEvent::CacheEviction { .. } => "cache_eviction",
        }
    }
}

/// One journal entry: a monotone sequence number, the virtual-time
/// stamp of the run clock, and the typed event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotone sequence number, continued across snapshot/restore.
    pub seq: u64,
    /// Virtual-time stamp (run clock seconds).
    pub at: i64,
    /// The event payload.
    pub event: TraceEvent,
}

/// The bounded in-memory journal (lives behind the registry mutex).
#[derive(Debug, Default)]
pub struct Journal {
    next_seq: u64,
    dropped: u64,
    records: VecDeque<TraceRecord>,
}

impl Journal {
    /// Append an event, assigning the next sequence number. Overflow
    /// evicts the oldest record.
    pub fn push(&mut self, at: i64, event: TraceEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.records.len() >= JOURNAL_CAP {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { seq, at, event });
    }

    /// Remove and return every buffered record (oldest first).
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        self.records.drain(..).collect()
    }

    /// The sequence number the *next* event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Raise the next sequence number to at least `seq` (used when a
    /// restored snapshot carries the journal position of the crashed
    /// run). Never lowers it.
    pub fn bump_to(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// Records evicted by overflow since the journal was created.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered (undrained) records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_monotone_across_drains() {
        let mut j = Journal::default();
        j.push(1, TraceEvent::OrderAdmitted { order: 1 });
        j.push(2, TraceEvent::OrderShed { order: 2 });
        let first = j.drain();
        assert_eq!(first.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1]);
        j.push(3, TraceEvent::DegradeFlip { engaged: true });
        let second = j.drain();
        assert_eq!(second[0].seq, 2);
        assert_eq!(j.next_seq(), 3);
    }

    #[test]
    fn bump_never_lowers() {
        let mut j = Journal::default();
        j.bump_to(10);
        assert_eq!(j.next_seq(), 10);
        j.bump_to(5);
        assert_eq!(j.next_seq(), 10);
        j.push(0, TraceEvent::CheckpointWritten { lines: 4 });
        assert_eq!(j.drain()[0].seq, 10);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut j = Journal::default();
        for i in 0..(JOURNAL_CAP as u64 + 3) {
            j.push(0, TraceEvent::OrderAdmitted { order: i });
        }
        assert_eq!(j.dropped(), 3);
        assert_eq!(j.len(), JOURNAL_CAP);
        let drained = j.drain();
        // Oldest retained record is seq 3; numbering has no gaps after.
        assert_eq!(drained[0].seq, 3);
        assert_eq!(
            drained.last().expect("non-empty").seq,
            JOURNAL_CAP as u64 + 2
        );
    }

    #[test]
    fn records_round_trip_as_json_lines() {
        let rec = TraceRecord {
            seq: 7,
            at: 3600,
            event: TraceEvent::OrderServed {
                order: 12,
                worker: 3,
                group_size: 2,
            },
        };
        let line = serde_json::to_string(&rec).expect("serialize");
        let back: TraceRecord = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, rec);
        assert_eq!(rec.event.kind(), "order_served");
    }
}
