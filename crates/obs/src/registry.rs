//! The metrics registry and its cloneable [`Recorder`] handle.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must cost nothing.** A disabled `Recorder` is a
//!    `None`; every operation is one branch and returns. The dispatch
//!    hot path can therefore be instrumented unconditionally.
//! 2. **Enabled must be lock-cheap.** Counters and gauges are fixed
//!    arrays of atomics indexed by enum discriminant — no hashing, no
//!    locks, shareable across the fork-join worker threads. Stage
//!    latency histograms are atomic log₂-bucket arrays. Only the
//!    trace journal and the window series (low-rate, virtual-time
//!    events) sit behind a `Mutex`.
//! 3. **Snapshots must be deterministic.** [`Recorder::snapshot`]
//!    emits every series in fixed enum order, so two snapshots of
//!    equal registries are byte-equal JSON.
//!
//! The handle is `Clone` (an `Arc` bump) and intentionally **not**
//! part of any serialized state: snapshots of the dispatch core carry
//! only the trace-journal sequence number. The manual serde impls
//! below exist so structs that embed a `Recorder` (the order pool)
//! can keep their plain derives — a recorder serializes as its
//! enabled flag and always deserializes disabled; the daemon/runner
//! re-attaches a live one after restore.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::prom::{CounterSample, GaugeSample, ObsSnapshot, StageSample, WindowSample};
use crate::trace::{Journal, TraceEvent, TraceRecord};
use crate::window::{WindowField, WindowSeries};

/// Monotone event counters, fixed at compile time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Orders that passed ingest validation.
    OrdersAdmitted,
    /// Orders actually fed into the dispatch core.
    OrdersDispatched,
    /// Orders shed by backpressure.
    OrdersShed,
    /// Orders admitted while degrade was engaged.
    OrdersDegraded,
    /// Orders that waited behind a blocked ingest.
    OrdersBlocked,
    /// Orders that reached a worker's route.
    OrdersServed,
    /// Orders rejected after their deadline slack ran out.
    OrdersRejected,
    /// Pooled groups (2+ riders) committed.
    GroupsFormed,
    /// Periodic checks executed.
    Checks,
    /// Input lines that failed to parse.
    LinesMalformed,
    /// Checkpoint generations written.
    CheckpointsWritten,
    /// Checkpoint writes retried after an injected I/O failure.
    CheckpointRetries,
    /// Checkpoint writes abandoned after exhausting retries.
    CheckpointFailures,
    /// Cost-cache queries answered from the cache.
    CacheHits,
    /// Cost-cache queries recomputed through the inner oracle.
    CacheMisses,
    /// Cost-cache slot overwrites displacing a different pair.
    CacheEvictions,
    /// Backpressure degrade engagements (off→on transitions).
    DegradeFlips,
}

impl Counter {
    /// Number of counters (array size of the registry).
    pub const COUNT: usize = 17;

    /// Every counter, in exposition order.
    pub const ALL: [Counter; Self::COUNT] = [
        Counter::OrdersAdmitted,
        Counter::OrdersDispatched,
        Counter::OrdersShed,
        Counter::OrdersDegraded,
        Counter::OrdersBlocked,
        Counter::OrdersServed,
        Counter::OrdersRejected,
        Counter::GroupsFormed,
        Counter::Checks,
        Counter::LinesMalformed,
        Counter::CheckpointsWritten,
        Counter::CheckpointRetries,
        Counter::CheckpointFailures,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheEvictions,
        Counter::DegradeFlips,
    ];

    /// Stable snake_case metric name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::OrdersAdmitted => "orders_admitted",
            Counter::OrdersDispatched => "orders_dispatched",
            Counter::OrdersShed => "orders_shed",
            Counter::OrdersDegraded => "orders_degraded",
            Counter::OrdersBlocked => "orders_blocked",
            Counter::OrdersServed => "orders_served",
            Counter::OrdersRejected => "orders_rejected",
            Counter::GroupsFormed => "groups_formed",
            Counter::Checks => "checks",
            Counter::LinesMalformed => "lines_malformed",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::CheckpointRetries => "checkpoint_retries",
            Counter::CheckpointFailures => "checkpoint_failures",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheEvictions => "cache_evictions",
            Counter::DegradeFlips => "degrade_flips",
        }
    }
}

/// Instantaneous levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gauge {
    /// Orders buffered between ingest and the dispatch core.
    Backlog,
    /// Orders pending inside the dispatcher pool.
    PoolPending,
    /// 1 while backpressure degrade is engaged, else 0.
    Degraded,
}

impl Gauge {
    /// Number of gauges.
    pub const COUNT: usize = 3;

    /// Every gauge, in exposition order.
    pub const ALL: [Gauge; Self::COUNT] = [Gauge::Backlog, Gauge::PoolPending, Gauge::Degraded];

    /// Stable snake_case metric name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::Backlog => "backlog",
            Gauge::PoolPending => "pool_pending",
            Gauge::Degraded => "degraded",
        }
    }
}

/// Instrumented stages of the dispatch hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Parse + validate one input line.
    Ingest,
    /// Insert an order into the share graph (includes spatial prune).
    PoolInsert,
    /// Candidate-partner prefilter (lower-bound gate).
    PairFilter,
    /// Clique subtree enumeration.
    CliqueSearch,
    /// Route planning / pair evaluation.
    Planner,
    /// Commit one dispatch decision to the fleet.
    DecisionCommit,
    /// Point queries against the dense cost table.
    OracleDense,
    /// Point queries against the ALT (landmark A*) oracle.
    OracleAlt,
    /// Point queries against the contraction-hierarchy oracle.
    OracleCh,
    /// Point queries against any other backend (Dijkstra, imports).
    OracleOther,
    /// Cost-cache hits (lookup only).
    OracleCacheHit,
    /// Cost-cache misses (lookup + inner recompute + publish).
    OracleCacheMiss,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 12;

    /// Every stage, in exposition order.
    pub const ALL: [Stage; Self::COUNT] = [
        Stage::Ingest,
        Stage::PoolInsert,
        Stage::PairFilter,
        Stage::CliqueSearch,
        Stage::Planner,
        Stage::DecisionCommit,
        Stage::OracleDense,
        Stage::OracleAlt,
        Stage::OracleCh,
        Stage::OracleOther,
        Stage::OracleCacheHit,
        Stage::OracleCacheMiss,
    ];

    /// Stable snake_case stage label.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::PoolInsert => "pool_insert",
            Stage::PairFilter => "pair_filter",
            Stage::CliqueSearch => "clique_search",
            Stage::Planner => "planner",
            Stage::DecisionCommit => "decision_commit",
            Stage::OracleDense => "oracle_dense",
            Stage::OracleAlt => "oracle_alt",
            Stage::OracleCh => "oracle_ch",
            Stage::OracleOther => "oracle_other",
            Stage::OracleCacheHit => "oracle_cache_hit",
            Stage::OracleCacheMiss => "oracle_cache_miss",
        }
    }
}

const HIST_BUCKETS: usize = 64;

/// Lock-free latency histogram: log₂ nanosecond buckets plus running
/// count/sum/min/max, all relaxed atomics (per-stage totals need no
/// ordering relative to anything else).
#[derive(Debug)]
struct AtomicHist {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    min_nanos: AtomicU64,
    max_nanos: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl AtomicHist {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            min_nanos: AtomicU64::new(u64::MAX),
            max_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.min_nanos.fetch_min(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        // Bucket i holds nanos with bit-length i (upper edge 2^i − 1).
        let idx = (u64::BITS - nanos.leading_zeros()) as usize;
        self.buckets[idx.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Nearest-rank percentile estimate in nanoseconds: the covering
    /// bucket's upper edge, clamped to the observed min/max.
    fn quantile_nanos(&self, p: f64) -> f64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let min = self.min_nanos.load(Ordering::Relaxed) as f64;
        let max = self.max_nanos.load(Ordering::Relaxed) as f64;
        let rank = ((p / 100.0 * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let edge = if i >= 63 {
                    u64::MAX as f64
                } else {
                    ((1u64 << i) - 1).max(1) as f64
                };
                return edge.clamp(min, max);
            }
        }
        max
    }

    fn sample(&self, stage: Stage) -> StageSample {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum_nanos.load(Ordering::Relaxed) as f64;
        StageSample {
            stage: stage.name().to_string(),
            count,
            sum_us: sum / 1e3,
            mean_us: if count == 0 {
                0.0
            } else {
                sum / count as f64 / 1e3
            },
            p50_us: self.quantile_nanos(50.0) / 1e3,
            p90_us: self.quantile_nanos(90.0) / 1e3,
            p99_us: self.quantile_nanos(99.0) / 1e3,
            max_us: if count == 0 {
                0.0
            } else {
                self.max_nanos.load(Ordering::Relaxed) as f64 / 1e3
            },
        }
    }
}

/// The shared registry behind an enabled [`Recorder`].
#[derive(Debug)]
pub struct RegistryInner {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicI64; Gauge::COUNT],
    stages: [AtomicHist; Stage::COUNT],
    journal: Mutex<Journal>,
    windows: Mutex<WindowSeries>,
}

impl RegistryInner {
    fn new(window_secs: i64) -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicI64::new(0)),
            stages: std::array::from_fn(|_| AtomicHist::new()),
            journal: Mutex::new(Journal::default()),
            windows: Mutex::new(WindowSeries::new(window_secs)),
        }
    }
}

/// Cloneable handle to the metrics registry; `Recorder::disabled()`
/// is a no-op handle whose every operation is one branch.
#[derive(Clone, Debug, Default)]
pub struct Recorder(Option<Arc<RegistryInner>>);

impl Recorder {
    /// The no-op handle (also `Default`).
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// A live registry with the default window width.
    pub fn enabled() -> Self {
        Self::enabled_with_windows(crate::window::DEFAULT_WINDOW_SECS)
    }

    /// A live registry bucketing window KPIs every `window_secs` of
    /// virtual time.
    pub fn enabled_with_windows(window_secs: i64) -> Self {
        Recorder(Some(Arc::new(RegistryInner::new(window_secs))))
    }

    /// `true` when this handle points at a live registry.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(r) = &self.0 {
            r.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raise a counter to at least `n` (mirror an absolute total kept
    /// elsewhere, e.g. the checkpoint store's retry count, without
    /// double-counting on repeated mirrors).
    #[inline]
    pub fn set_at_least(&self, c: Counter, n: u64) {
        if let Some(r) = &self.0 {
            r.counters[c as usize].fetch_max(n, Ordering::Relaxed);
        }
    }

    /// Current value of a counter (0 when disabled).
    pub fn counter(&self, c: Counter) -> u64 {
        match &self.0 {
            Some(r) => r.counters[c as usize].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Set a gauge to `v`.
    #[inline]
    pub fn gauge_set(&self, g: Gauge, v: i64) {
        if let Some(r) = &self.0 {
            r.gauges[g as usize].store(v, Ordering::Relaxed);
        }
    }

    /// Current value of a gauge (0 when disabled).
    pub fn gauge(&self, g: Gauge) -> i64 {
        match &self.0 {
            Some(r) => r.gauges[g as usize].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Start timing a stage; the elapsed wall time is recorded when
    /// the returned guard drops. Disabled handles return an inert
    /// guard without reading the clock.
    #[inline]
    pub fn time(&self, stage: Stage) -> SpanTimer<'_> {
        SpanTimer {
            span: self.0.as_deref().map(|r| (r, stage, Instant::now())),
        }
    }

    /// Record an externally measured stage duration.
    #[inline]
    pub fn record_stage_nanos(&self, stage: Stage, nanos: u64) {
        if let Some(r) = &self.0 {
            r.stages[stage as usize].record(nanos);
        }
    }

    /// Number of recorded calls of a stage (0 when disabled).
    pub fn stage_count(&self, stage: Stage) -> u64 {
        match &self.0 {
            Some(r) => r.stages[stage as usize].count.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Append a trace event stamped with run-clock instant `at`.
    #[inline]
    pub fn trace(&self, at: i64, event: TraceEvent) {
        if let Some(r) = &self.0 {
            r.journal.lock().expect("journal lock").push(at, event);
        }
    }

    /// Drain every buffered trace record (empty when disabled).
    pub fn drain_trace(&self) -> Vec<TraceRecord> {
        match &self.0 {
            Some(r) => r.journal.lock().expect("journal lock").drain(),
            None => Vec::new(),
        }
    }

    /// The sequence number the next trace event will receive.
    pub fn trace_seq(&self) -> u64 {
        match &self.0 {
            Some(r) => r.journal.lock().expect("journal lock").next_seq(),
            None => 0,
        }
    }

    /// Raise the next trace sequence number to at least `seq` (restore
    /// path; see the snapshot contract in `watter-sim`).
    pub fn bump_trace_seq_to(&self, seq: u64) {
        if let Some(r) = &self.0 {
            r.journal.lock().expect("journal lock").bump_to(seq);
        }
    }

    /// Bump one per-window order-flow counter at run-clock `at`.
    #[inline]
    pub fn window_count(&self, at: i64, field: WindowField) {
        if let Some(r) = &self.0 {
            r.windows.lock().expect("window lock").count(at, field);
        }
    }

    /// Fold a backlog observation into the window covering `at`.
    #[inline]
    pub fn window_backlog(&self, at: i64, depth: u64, band: u64) {
        if let Some(r) = &self.0 {
            r.windows
                .lock()
                .expect("window lock")
                .note_backlog(at, depth, band);
        }
    }

    /// Deterministic-ordered snapshot of the whole registry. Disabled
    /// handles return the default (all-empty, `enabled: false`)
    /// snapshot.
    pub fn snapshot(&self) -> ObsSnapshot {
        let Some(r) = &self.0 else {
            return ObsSnapshot::default();
        };
        let counters = Counter::ALL
            .iter()
            .map(|&c| CounterSample {
                name: c.name().to_string(),
                value: r.counters[c as usize].load(Ordering::Relaxed),
            })
            .collect();
        let gauges = Gauge::ALL
            .iter()
            .map(|&g| GaugeSample {
                name: g.name().to_string(),
                value: r.gauges[g as usize].load(Ordering::Relaxed),
            })
            .collect();
        let stages = Stage::ALL
            .iter()
            .filter(|&&s| r.stages[s as usize].count.load(Ordering::Relaxed) > 0)
            .map(|&s| r.stages[s as usize].sample(s))
            .collect();
        let (window_secs, windows) = {
            let w = r.windows.lock().expect("window lock");
            let samples = w
                .windows
                .iter()
                .map(|k| WindowSample {
                    start: k.start,
                    admitted: k.admitted,
                    served: k.served,
                    rejected: k.rejected,
                    shed: k.shed,
                    checks: k.checks,
                    backlog_max: k.backlog_max,
                    band_max: k.band_max,
                    orders_per_sec: k.orders_per_sec(w.window_secs),
                    service_rate_pct: k.service_rate_pct(),
                })
                .collect();
            (w.window_secs, samples)
        };
        let (trace_seq, trace_dropped) = {
            let j = r.journal.lock().expect("journal lock");
            (j.next_seq(), j.dropped())
        };
        ObsSnapshot {
            enabled: true,
            counters,
            gauges,
            stages,
            window_secs,
            windows,
            trace_seq,
            trace_dropped,
        }
    }
}

/// Observability handles are plumbing, not state: equality always
/// holds so structs embedding a `Recorder` can keep derived
/// `PartialEq` without two otherwise-identical pools comparing
/// unequal over a metrics attachment.
impl PartialEq for Recorder {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// Serializes as the enabled flag only; always deserializes disabled
/// (snapshots never resurrect a registry — the host re-attaches one).
impl serde::Serialize for Recorder {
    fn to_json_value(&self) -> serde::Value {
        self.is_enabled().to_json_value()
    }
}

impl serde::Deserialize for Recorder {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let _was_enabled = bool::from_json_value(v)?;
        Ok(Recorder::disabled())
    }
}

/// Drop guard returned by [`Recorder::time`]; records the elapsed
/// wall time into the stage histogram on drop.
#[must_use = "the span measures until this guard drops"]
pub struct SpanTimer<'a> {
    span: Option<(&'a RegistryInner, Stage, Instant)>,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some((reg, stage, started)) = self.span.take() {
            let nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            reg.stages[stage as usize].record(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        r.incr(Counter::OrdersAdmitted);
        r.gauge_set(Gauge::Backlog, 9);
        r.record_stage_nanos(Stage::PoolInsert, 100);
        r.trace(0, TraceEvent::OrderAdmitted { order: 1 });
        drop(r.time(Stage::Planner));
        assert!(!r.is_enabled());
        assert_eq!(r.counter(Counter::OrdersAdmitted), 0);
        assert_eq!(r.gauge(Gauge::Backlog), 0);
        assert!(r.drain_trace().is_empty());
        let snap = r.snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn counters_gauges_and_mirrors() {
        let r = Recorder::enabled();
        r.incr(Counter::OrdersAdmitted);
        r.add(Counter::OrdersAdmitted, 2);
        assert_eq!(r.counter(Counter::OrdersAdmitted), 3);
        r.set_at_least(Counter::CheckpointRetries, 5);
        r.set_at_least(Counter::CheckpointRetries, 3);
        assert_eq!(r.counter(Counter::CheckpointRetries), 5);
        r.gauge_set(Gauge::Backlog, 4);
        r.gauge_set(Gauge::Backlog, 2);
        assert_eq!(r.gauge(Gauge::Backlog), 2);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let r = Recorder::enabled();
        {
            let _t = r.time(Stage::CliqueSearch);
        }
        r.record_stage_nanos(Stage::CliqueSearch, 1_500);
        assert_eq!(r.stage_count(Stage::CliqueSearch), 2);
        let snap = r.snapshot();
        let s = snap
            .stages
            .iter()
            .find(|s| s.stage == "clique_search")
            .expect("stage sampled");
        assert_eq!(s.count, 2);
        assert!(s.max_us > 0.0);
        assert!(s.p99_us >= s.p50_us);
    }

    #[test]
    fn clones_share_one_registry() {
        let a = Recorder::enabled();
        let b = a.clone();
        a.incr(Counter::OrdersServed);
        b.incr(Counter::OrdersServed);
        assert_eq!(a.counter(Counter::OrdersServed), 2);
    }

    #[test]
    fn trace_seq_resumes_after_bump() {
        let r = Recorder::enabled();
        r.trace(1, TraceEvent::OrderAdmitted { order: 1 });
        assert_eq!(r.trace_seq(), 1);
        // A restore from a crashed run that had already emitted 40
        // events must not renumber from 1.
        let fresh = Recorder::enabled();
        fresh.bump_trace_seq_to(40);
        fresh.trace(9, TraceEvent::CheckpointWritten { lines: 8 });
        let drained = fresh.drain_trace();
        assert_eq!(drained[0].seq, 40);
        assert_eq!(fresh.trace_seq(), 41);
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let mk = || {
            let r = Recorder::enabled();
            r.incr(Counter::OrdersShed);
            r.add(Counter::OrdersAdmitted, 7);
            r.gauge_set(Gauge::PoolPending, 3);
            r.window_count(30, WindowField::Admitted);
            r
        };
        let a = serde_json::to_string(&mk().snapshot()).expect("serialize");
        let b = serde_json::to_string(&mk().snapshot()).expect("serialize");
        assert_eq!(a, b);
    }

    #[test]
    fn recorder_serde_round_trip_detaches() {
        let r = Recorder::enabled();
        r.incr(Counter::OrdersAdmitted);
        let json = serde_json::to_string(&r).expect("serialize");
        let back: Recorder = serde_json::from_str(&json).expect("parse");
        assert!(!back.is_enabled());
        assert_eq!(back, r); // handles compare equal by design
    }
}
