//! MDP transitions and Bellman targets (Section VI-A).
//!
//! Each pooled order is an agent. At every decision phase it either
//! **waits** (`a = 0`) — transitioning to the same location at the next
//! time slot with immediate reward `−Δt` unless it expired — or
//! **dispatches** (`a = 1`) — terminating with reward `p − t_d` (penalty
//! minus the detour in its current best group). The Bellman updates are:
//!
//! ```text
//! V(s) ← p − t_d                                   a = 1 (dispatch)
//! V(s) ← −Δt + γ^Δt · V(s′) · (1 − I(expired))     a = 0 (wait)
//! ```
//!
//! With γ = 1 the accumulated reward telescopes to Equation 9:
//! `p − t_e` for dispatched orders and `−max t_r` for expired ones.

use serde::{Deserialize, Serialize};

/// What happened after the state was observed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The agent waited and reached a successor state.
    Waited {
        /// Featurized successor state `s_{t+Δt}`.
        next_state: Vec<f32>,
        /// Slot width Δt in seconds.
        dt: f64,
    },
    /// The agent's order was dispatched with the given detour time `t_d`.
    Dispatched {
        /// Realized detour seconds in the dispatched group.
        detour: f64,
    },
    /// The order expired (deadline unreachable / rejected).
    Expired,
}

/// One replayable experience tuple.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Featurized state `s_t`.
    pub state: Vec<f32>,
    /// Action + observed successor.
    pub outcome: Outcome,
    /// The order's rejection penalty `p` (seconds).
    pub penalty: f64,
    /// The GMM-optimal threshold `θ*` of the order, anchoring the target
    /// loss `loss_tg = (p − θ* − V(s))²` (Section VI-B).
    pub gmm_theta: f64,
}

impl Transition {
    /// The TD target for this transition given the target network's value
    /// of the successor state (`v_next`, ignored for terminal outcomes).
    pub fn td_target(&self, v_next: f64, gamma: f64) -> f64 {
        match &self.outcome {
            Outcome::Dispatched { detour } => self.penalty - detour,
            Outcome::Expired => 0.0,
            Outcome::Waited { dt, .. } => -dt + gamma.powf(*dt) * v_next,
        }
    }

    /// The target-loss anchor `p − θ*`.
    pub fn tg_target(&self) -> f64 {
        self.penalty - self.gmm_theta
    }

    /// Blended training target: minimizing
    /// `ω(td − V)² + (1−ω)(tg − V)²` is equivalent to regressing on
    /// `ω·td + (1−ω)·tg`.
    pub fn blended_target(&self, v_next: f64, gamma: f64, omega: f64) -> f64 {
        omega * self.td_target(v_next, gamma) + (1.0 - omega) * self.tg_target()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_target_is_penalty_minus_detour() {
        let t = Transition {
            state: vec![],
            outcome: Outcome::Dispatched { detour: 30.0 },
            penalty: 100.0,
            gmm_theta: 20.0,
        };
        assert_eq!(t.td_target(999.0, 1.0), 70.0);
    }

    #[test]
    fn expired_target_is_zero() {
        let t = Transition {
            state: vec![],
            outcome: Outcome::Expired,
            penalty: 100.0,
            gmm_theta: 20.0,
        };
        assert_eq!(t.td_target(999.0, 1.0), 0.0);
    }

    #[test]
    fn wait_target_discounts_successor() {
        let t = Transition {
            state: vec![],
            outcome: Outcome::Waited {
                next_state: vec![],
                dt: 10.0,
            },
            penalty: 100.0,
            gmm_theta: 20.0,
        };
        // γ = 1: −10 + V(s')
        assert_eq!(t.td_target(50.0, 1.0), 40.0);
        // γ = 0.99: −10 + 0.99^10 × 50
        let v = t.td_target(50.0, 0.99);
        assert!((v - (-10.0 + 0.99f64.powf(10.0) * 50.0)).abs() < 1e-12);
    }

    #[test]
    fn blended_target_interpolates() {
        let t = Transition {
            state: vec![],
            outcome: Outcome::Dispatched { detour: 0.0 },
            penalty: 100.0,
            gmm_theta: 40.0,
        };
        // td = 100, tg = 60
        assert_eq!(t.blended_target(0.0, 1.0, 1.0), 100.0);
        assert_eq!(t.blended_target(0.0, 1.0, 0.0), 60.0);
        assert_eq!(t.blended_target(0.0, 1.0, 0.5), 80.0);
    }

    #[test]
    fn telescoped_rewards_match_equation_9() {
        // An order that waits k slots then dispatches accumulates
        // −k·Δt + (p − t_d) = p − t_e with t_e = t_r + t_d and γ = 1.
        let dt = 10.0;
        let k = 3;
        let penalty = 200.0;
        let detour = 25.0;
        // Backward induction through k wait transitions:
        let mut v = penalty - detour; // terminal dispatch value
        for _ in 0..k {
            v += -dt;
        }
        let response = k as f64 * dt;
        assert_eq!(v, penalty - (response + detour));
    }
}
