//! DQN-style value-function training (Section VI-B).
//!
//! Two networks — main `V` and a delayed copy `V̂` (target) — train on
//! mini-batches from replay memory with the combined loss
//!
//! ```text
//! loss = ω·loss_td + (1 − ω)·loss_tg
//! loss_td = (r_t + γ^Δt·V̂(s′) − V(s))²
//! loss_tg = (p − θ* − V(s))²
//! ```
//!
//! The TD term orders states by value; the target term anchors the scale to
//! the GMM-optimal thresholds so `θ = p − V(s)` is directly usable in
//! Algorithm 2.

use crate::mdp::Outcome;
use crate::mlp::{AdamConfig, Mlp};
use crate::replay::ReplayMemory;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainerConfig {
    /// Discount factor γ (the paper sets γ = 1 so rewards telescope to
    /// Equation 9).
    pub gamma: f64,
    /// Loss blend ω between TD and target losses.
    pub omega: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Gradient steps between target-network syncs.
    pub target_sync_every: usize,
    /// Adam settings for the main network.
    pub adam: AdamConfig,
    /// Hidden layer sizes of the value network.
    pub hidden: [usize; 2],
    /// RNG seed for initialization and batch sampling.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            gamma: 1.0,
            omega: 0.5,
            batch_size: 64,
            target_sync_every: 100,
            adam: AdamConfig::default(),
            hidden: [64, 32],
            seed: 42,
        }
    }
}

/// Owns the main/target networks and the training loop.
pub struct ValueTrainer {
    cfg: TrainerConfig,
    main: Mlp,
    target: Mlp,
    rng: StdRng,
    steps: usize,
    /// Mean batch loss per recorded step (diagnostic / appendix training
    /// curves).
    pub loss_history: Vec<f32>,
}

impl ValueTrainer {
    /// Build a trainer for states of dimension `input_dim`.
    pub fn new(input_dim: usize, cfg: TrainerConfig) -> Self {
        let dims = [input_dim, cfg.hidden[0], cfg.hidden[1]];
        let main = Mlp::new(&dims, cfg.adam, cfg.seed);
        let mut target = Mlp::new(&dims, cfg.adam, cfg.seed);
        target.copy_weights_from(&main);
        Self {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15),
            cfg,
            main,
            target,
            steps: 0,
            loss_history: Vec::new(),
        }
    }

    /// The main network (for inference / extraction).
    pub fn network(&self) -> &Mlp {
        &self.main
    }

    /// Consume the trainer, returning the trained main network.
    pub fn into_network(self) -> Mlp {
        self.main
    }

    /// Gradient steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Run `n_steps` mini-batch updates against `memory`.
    /// Returns the mean loss across the executed steps.
    pub fn train(&mut self, memory: &ReplayMemory, n_steps: usize) -> f32 {
        if memory.is_empty() || n_steps == 0 {
            return 0.0;
        }
        let mut total = 0.0f32;
        let mut executed = 0usize;
        for _ in 0..n_steps {
            let batch = memory.sample(self.cfg.batch_size, &mut self.rng);
            if batch.is_empty() {
                break;
            }
            let mut xs = Vec::with_capacity(batch.len());
            let mut ys = Vec::with_capacity(batch.len());
            for t in batch {
                let v_next = match &t.outcome {
                    Outcome::Waited { next_state, .. } => self.target.predict(next_state) as f64,
                    _ => 0.0,
                };
                let y = t.blended_target(v_next, self.cfg.gamma, self.cfg.omega);
                xs.push(t.state.clone());
                ys.push(y as f32);
            }
            let loss = self.main.train_batch(&xs, &ys);
            self.loss_history.push(loss);
            total += loss;
            executed += 1;
            self.steps += 1;
            if self.steps.is_multiple_of(self.cfg.target_sync_every) {
                self.target.copy_weights_from(&self.main);
            }
        }
        if executed == 0 {
            0.0
        } else {
            total / executed as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::Transition;

    /// Build a toy memory where states with feature value `x` should learn
    /// V ≈ p − θ* = 50·x (pure target loss anchors exactly).
    fn anchored_memory(n: usize) -> ReplayMemory {
        let mut m = ReplayMemory::new(n);
        for i in 0..n {
            let x = (i % 10) as f32 / 10.0;
            m.push(Transition {
                state: vec![x, 1.0],
                outcome: Outcome::Expired,
                penalty: 100.0 * x as f64,
                gmm_theta: 50.0 * x as f64,
            });
        }
        m
    }

    #[test]
    fn pure_target_loss_learns_anchor() {
        let cfg = TrainerConfig {
            omega: 0.0, // only the target loss
            hidden: [16, 8],
            adam: crate::mlp::AdamConfig {
                lr: 5e-3,
                ..crate::mlp::AdamConfig::default()
            },
            ..TrainerConfig::default()
        };
        let mut tr = ValueTrainer::new(2, cfg);
        let mem = anchored_memory(500);
        tr.train(&mem, 2000);
        // V([x, 1]) ≈ 50x
        let v = tr.network().predict(&[0.8, 1.0]);
        assert!((v - 40.0).abs() < 6.0, "V = {v}");
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut tr = ValueTrainer::new(2, TrainerConfig::default());
        let mem = anchored_memory(500);
        tr.train(&mem, 300);
        let early: f32 = tr.loss_history[..20].iter().sum::<f32>() / 20.0;
        let late: f32 = tr.loss_history[tr.loss_history.len() - 20..]
            .iter()
            .sum::<f32>()
            / 20.0;
        assert!(late < early, "late {late} !< early {early}");
    }

    #[test]
    fn td_propagates_through_wait_chains() {
        // Chain: s0 --wait--> s1 --dispatch(reward 100)--> terminal, Δt=10.
        // With γ=1: V(s1)=100, V(s0)=−10+100=90.
        let mut m = ReplayMemory::new(100);
        for _ in 0..50 {
            m.push(Transition {
                state: vec![1.0, 0.0],
                outcome: Outcome::Waited {
                    next_state: vec![0.0, 1.0],
                    dt: 10.0,
                },
                penalty: 100.0,
                gmm_theta: 10.0,
            });
            m.push(Transition {
                state: vec![0.0, 1.0],
                outcome: Outcome::Dispatched { detour: 0.0 },
                penalty: 100.0,
                gmm_theta: 0.0,
            });
        }
        let cfg = TrainerConfig {
            omega: 1.0, // pure TD
            hidden: [16, 8],
            target_sync_every: 25,
            ..TrainerConfig::default()
        };
        let mut tr = ValueTrainer::new(2, cfg);
        tr.train(&m, 1200);
        let v1 = tr.network().predict(&[0.0, 1.0]);
        let v0 = tr.network().predict(&[1.0, 0.0]);
        assert!((v1 - 100.0).abs() < 10.0, "V(s1) = {v1}");
        assert!((v0 - 90.0).abs() < 10.0, "V(s0) = {v0}");
    }

    #[test]
    fn empty_memory_trains_nothing() {
        let mut tr = ValueTrainer::new(2, TrainerConfig::default());
        let mem = ReplayMemory::new(8);
        assert_eq!(tr.train(&mem, 10), 0.0);
        assert_eq!(tr.steps(), 0);
    }
}
