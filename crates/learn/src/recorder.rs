//! Experience recording (Section VI-B's offline data generation).
//!
//! [`TransitionRecorder`] implements [`watter_strategy::PoolObserver`]: it
//! featurizes every per-order decision event reported by the simulator into
//! MDP transitions and fills the replay memory. Wait actions become
//! `Waited` transitions linking consecutive checks; dispatches and
//! expirations terminate an agent's episode.

use crate::gmm::Gmm;
use crate::mdp::{Outcome, Transition};
use crate::optimize::optimal_threshold;
use crate::replay::ReplayMemory;
use crate::state::StateFeaturizer;
use std::collections::BTreeMap;
use watter_core::{Dur, EnvSnapshot, Order, OrderId, Ts};
use watter_strategy::PoolObserver;

/// Observer that turns pool events into replay-memory transitions.
pub struct TransitionRecorder {
    featurizer: StateFeaturizer,
    /// GMM used to anchor the target loss (`θ*` per order); `None` records
    /// `θ* = 0` (pure-TD training).
    gmm: Option<Gmm>,
    memory: ReplayMemory,
    /// Last observed (state, timestamp) per still-pooled order.
    pending: BTreeMap<OrderId, (Vec<f32>, Ts)>,
}

impl TransitionRecorder {
    /// Create a recorder with the given replay capacity.
    pub fn new(featurizer: StateFeaturizer, gmm: Option<Gmm>, capacity: usize) -> Self {
        Self {
            featurizer,
            gmm,
            memory: ReplayMemory::new(capacity),
            pending: BTreeMap::new(),
        }
    }

    /// The filled replay memory.
    pub fn memory(&self) -> &ReplayMemory {
        &self.memory
    }

    /// Consume the recorder, returning memory and featurizer for training.
    pub fn into_parts(self) -> (ReplayMemory, StateFeaturizer) {
        (self.memory, self.featurizer)
    }

    fn theta_star(&self, order: &Order) -> f64 {
        match &self.gmm {
            Some(g) => optimal_threshold(order.penalty() as f64, g),
            None => 0.0,
        }
    }

    /// Link the previous wait (if any) to the current state, returning the
    /// current encoded state for terminal/pending use.
    fn link_previous(&mut self, order: &Order, now: Ts, env: &EnvSnapshot) -> Vec<f32> {
        let state = self.featurizer.encode(order, now, env);
        if let Some((prev_state, prev_ts)) = self.pending.remove(&order.id) {
            let dt = (now - prev_ts).max(1) as f64;
            self.memory.push(Transition {
                state: prev_state,
                outcome: Outcome::Waited {
                    next_state: state.clone(),
                    dt,
                },
                penalty: order.penalty() as f64,
                gmm_theta: self.theta_star(order),
            });
        }
        state
    }
}

impl PoolObserver for TransitionRecorder {
    fn on_wait(&mut self, order: &Order, now: Ts, env: &EnvSnapshot) {
        let state = self.link_previous(order, now, env);
        self.pending.insert(order.id, (state, now));
    }

    fn on_dispatch(&mut self, order: &Order, detour: Dur, now: Ts, env: &EnvSnapshot) {
        let state = self.link_previous(order, now, env);
        self.memory.push(Transition {
            state,
            outcome: Outcome::Dispatched {
                detour: detour as f64,
            },
            penalty: order.penalty() as f64,
            gmm_theta: self.theta_star(order),
        });
    }

    fn on_expire(&mut self, order: &Order, now: Ts, env: &EnvSnapshot) {
        let state = self.link_previous(order, now, env);
        self.memory.push(Transition {
            state,
            outcome: Outcome::Expired,
            penalty: order.penalty() as f64,
            gmm_theta: self.theta_star(order),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::NodeId;
    use watter_road::{CityConfig, GridIndex};

    fn recorder() -> TransitionRecorder {
        let city = CityConfig {
            width: 8,
            height: 8,
            ..CityConfig::default()
        }
        .generate(1);
        let feat = StateFeaturizer::new(GridIndex::build(&city, 4), 10);
        TransitionRecorder::new(feat, None, 1024)
    }

    fn order(id: u32) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(0),
            dropoff: NodeId(63),
            riders: 1,
            release: 0,
            deadline: 10_000,
            wait_limit: 300,
            direct_cost: 500,
        }
    }

    #[test]
    fn wait_chain_then_dispatch_records_all_links() {
        let mut r = recorder();
        let env = EnvSnapshot::empty(4);
        let o = order(0);
        r.on_wait(&o, 10, &env);
        r.on_wait(&o, 20, &env);
        r.on_dispatch(&o, 30, 30, &env);
        // two Waited links + one Dispatched terminal
        assert_eq!(r.memory().len(), 3);
        let outcomes: Vec<bool> = r
            .memory()
            .iter()
            .map(|t| matches!(t.outcome, Outcome::Waited { .. }))
            .collect();
        assert_eq!(outcomes.iter().filter(|&&w| w).count(), 2);
    }

    #[test]
    fn immediate_dispatch_records_single_terminal() {
        let mut r = recorder();
        let env = EnvSnapshot::empty(4);
        r.on_dispatch(&order(1), 0, 10, &env);
        assert_eq!(r.memory().len(), 1);
        assert!(matches!(
            r.memory().iter().next().unwrap().outcome,
            Outcome::Dispatched { .. }
        ));
    }

    #[test]
    fn expiry_closes_episode() {
        let mut r = recorder();
        let env = EnvSnapshot::empty(4);
        let o = order(2);
        r.on_wait(&o, 10, &env);
        r.on_expire(&o, 20, &env);
        assert_eq!(r.memory().len(), 2);
    }

    #[test]
    fn wait_dt_measured_between_checks() {
        let mut r = recorder();
        let env = EnvSnapshot::empty(4);
        let o = order(3);
        r.on_wait(&o, 100, &env);
        r.on_wait(&o, 130, &env);
        let t = r.memory().iter().next().unwrap();
        match &t.outcome {
            Outcome::Waited { dt, .. } => assert_eq!(*dt, 30.0),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
