//! The learned value function as a threshold provider.
//!
//! Section VI-A: "when using the value function in Algorithm 2, we
//! calculate θ^(i) as p^(i) − V_π(s^(i))". [`ValueFunction`] packages the
//! trained network with its featurizer and implements
//! [`watter_strategy::ThresholdProvider`] so WATTER-expect consumes it
//! directly.

use crate::mlp::Mlp;
use crate::state::StateFeaturizer;
use serde::{Deserialize, Serialize};
use watter_core::Order;
use watter_strategy::{DecisionContext, ThresholdProvider};

/// Trained value function `V(s)` with its state featurizer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ValueFunction {
    net: Mlp,
    featurizer: StateFeaturizer,
}

impl ValueFunction {
    /// Package a trained network with the featurizer it was trained under.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn new(net: Mlp, featurizer: StateFeaturizer) -> Self {
        assert_eq!(
            net.input_dim(),
            featurizer.dim(),
            "network input and featurizer dimensionality must match"
        );
        Self { net, featurizer }
    }

    /// The featurizer.
    pub fn featurizer(&self) -> &StateFeaturizer {
        &self.featurizer
    }

    /// Raw value estimate `V(s)` for an order's current state.
    pub fn value(&self, order: &Order, ctx: &DecisionContext<'_>) -> f64 {
        let x = self.featurizer.encode(order, ctx.now, ctx.env);
        self.net.predict(&x) as f64
    }

    /// Persist the trained model as JSON (weights + featurizer geometry).
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let s = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, s)
    }

    /// Load a model previously written by [`Self::save_json`].
    pub fn load_json(path: &std::path::Path) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        serde_json::from_str(&s).map_err(std::io::Error::other)
    }
}

impl ThresholdProvider for ValueFunction {
    fn threshold(&self, order: &Order, ctx: &DecisionContext<'_>) -> f64 {
        let p = order.penalty() as f64;
        // θ = p − V(s), clamped into the meaningful range [0, p]: a
        // negative threshold would reject every group (worse than timing
        // out) and a threshold above p can never be the optimum of
        // (p − θ)F(θ).
        (p - self.value(order, ctx)).clamp(0.0, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::AdamConfig;
    use watter_core::{EnvSnapshot, NodeId, OrderId};
    use watter_road::{CityConfig, GridIndex};

    fn setup() -> (ValueFunction, EnvSnapshot) {
        let city = CityConfig {
            width: 8,
            height: 8,
            ..CityConfig::default()
        }
        .generate(1);
        let feat = StateFeaturizer::new(GridIndex::build(&city, 4), 10);
        let net = Mlp::new(&[feat.dim(), 8, 4], AdamConfig::default(), 0);
        (ValueFunction::new(net, feat), EnvSnapshot::empty(4))
    }

    fn order(deadline: i64) -> Order {
        Order {
            id: OrderId(0),
            pickup: NodeId(0),
            dropoff: NodeId(63),
            riders: 1,
            release: 0,
            deadline,
            wait_limit: 100,
            direct_cost: 500,
        }
    }

    #[test]
    fn threshold_clamped_to_penalty_range() {
        let (vf, env) = setup();
        let ctx = DecisionContext { now: 0, env: &env };
        let o = order(1_000); // p = 500
        let t = vf.threshold(&o, &ctx);
        assert!((0.0..=500.0).contains(&t));
    }

    #[test]
    fn zero_penalty_order_gets_zero_threshold() {
        let (vf, env) = setup();
        let ctx = DecisionContext { now: 0, env: &env };
        let o = order(500); // p = 0
        assert_eq!(vf.threshold(&o, &ctx), 0.0);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn dimension_mismatch_panics() {
        let city = CityConfig {
            width: 8,
            height: 8,
            ..CityConfig::default()
        }
        .generate(1);
        let feat = StateFeaturizer::new(GridIndex::build(&city, 4), 10);
        let net = Mlp::new(&[3, 4], AdamConfig::default(), 0);
        ValueFunction::new(net, feat);
    }
}
