//! From-scratch multi-layer perceptron.
//!
//! The value network `V(s)` of Section VI-B is a small regressor over a
//! few-hundred-dimensional sparse state, so a hand-rolled dense MLP with
//! ReLU activations and Adam is entirely sufficient and keeps the workspace
//! free of deep-learning dependencies. Supports mini-batch MSE training with
//! gradient clipping and exact weight copies for the target network.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One dense layer with Adam state.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    // Adam moments.
    mw: Vec<f32>,
    vw: Vec<f32>,
    mb: Vec<f32>,
    vb: Vec<f32>,
}

impl Dense {
    fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        // He initialization for ReLU nets.
        let scale = (2.0 / in_dim as f32).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            mw: vec![0.0; in_dim * out_dim],
            vw: vec![0.0; in_dim * out_dim],
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
        }
    }

    fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.out_dim, 0.0);
        for (o, cell) in out.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            *cell = acc;
        }
    }
}

/// Adam hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Per-sample gradient clip on the output error.
    pub grad_clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            grad_clip: 100.0,
        }
    }
}

/// A ReLU MLP with a scalar linear output head.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    adam: AdamConfig,
    step: u64,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[502, 64, 32]` builds
    /// 502→64→32→1. Deterministic given `seed`.
    pub fn new(dims: &[usize], adam: AdamConfig, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and one hidden size");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::new();
        for w in dims.windows(2) {
            layers.push(Dense::new(w[0], w[1], &mut rng));
        }
        let last = *dims.last().expect("non-empty dims");
        layers.push(Dense::new(last, 1, &mut rng));
        Self {
            layers,
            adam,
            step: 0,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Scalar prediction `V(x)`.
    pub fn predict(&self, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.input_dim());
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if li + 1 < self.layers.len() {
                for v in next.iter_mut() {
                    *v = v.max(0.0); // ReLU on hidden layers
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur[0]
    }

    /// One Adam step on the mean-squared error of a mini-batch.
    /// Returns the batch MSE before the update.
    pub fn train_batch(&mut self, xs: &[Vec<f32>], ys: &[f32]) -> f32 {
        assert_eq!(xs.len(), ys.len(), "inputs/targets length mismatch");
        if xs.is_empty() {
            return 0.0;
        }
        let n_layers = self.layers.len();
        // Gradient accumulators mirroring layer shapes.
        let mut gw: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        let mut total_loss = 0.0f32;

        for (x, &y) in xs.iter().zip(ys) {
            // Forward pass, keeping post-activation values per layer.
            let mut acts: Vec<Vec<f32>> = Vec::with_capacity(n_layers + 1);
            acts.push(x.clone());
            for (li, layer) in self.layers.iter().enumerate() {
                let mut out = Vec::new();
                layer.forward(acts.last().expect("non-empty"), &mut out);
                if li + 1 < n_layers {
                    for v in out.iter_mut() {
                        *v = v.max(0.0);
                    }
                }
                acts.push(out);
            }
            let pred = acts.last().expect("non-empty")[0];
            let err = pred - y;
            total_loss += err * err;
            // dL/dpred for MSE (×2 folded into lr convention), clipped.
            let clip = self.adam.grad_clip;
            let mut delta = vec![(2.0 * err).clamp(-clip, clip)];
            // Backward pass.
            for li in (0..n_layers).rev() {
                let layer = &self.layers[li];
                let input = &acts[li];
                let mut next_delta = vec![0.0f32; layer.in_dim];
                for o in 0..layer.out_dim {
                    let d = delta[o];
                    if d == 0.0 {
                        continue;
                    }
                    gb[li][o] += d;
                    let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                    for i in 0..layer.in_dim {
                        let xi = input[i];
                        if xi != 0.0 {
                            gw[li][o * layer.in_dim + i] += d * xi;
                        }
                        next_delta[i] += d * row[i];
                    }
                }
                if li > 0 {
                    // ReLU derivative w.r.t. the previous layer's output.
                    for (nd, &a) in next_delta.iter_mut().zip(&acts[li]) {
                        if a <= 0.0 {
                            *nd = 0.0;
                        }
                    }
                }
                delta = next_delta;
            }
        }

        // Adam update with batch-mean gradients.
        self.step += 1;
        let t = self.step as f32;
        let (b1, b2, lr, eps) = (
            self.adam.beta1,
            self.adam.beta2,
            self.adam.lr,
            self.adam.eps,
        );
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        let inv_n = 1.0 / xs.len() as f32;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (i, g) in gw[li].iter().enumerate() {
                let g = g * inv_n;
                layer.mw[i] = b1 * layer.mw[i] + (1.0 - b1) * g;
                layer.vw[i] = b2 * layer.vw[i] + (1.0 - b2) * g * g;
                layer.w[i] -= lr * (layer.mw[i] / bc1) / ((layer.vw[i] / bc2).sqrt() + eps);
            }
            for (i, g) in gb[li].iter().enumerate() {
                let g = g * inv_n;
                layer.mb[i] = b1 * layer.mb[i] + (1.0 - b1) * g;
                layer.vb[i] = b2 * layer.vb[i] + (1.0 - b2) * g * g;
                layer.b[i] -= lr * (layer.mb[i] / bc1) / ((layer.vb[i] / bc2).sqrt() + eps);
            }
        }
        total_loss / xs.len() as f32
    }

    /// Copy all weights from another network of identical architecture (the
    /// delayed target-network sync of Section VI-B).
    pub fn copy_weights_from(&mut self, other: &Mlp) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "architecture mismatch"
        );
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            assert_eq!(dst.w.len(), src.w.len(), "architecture mismatch");
            dst.w.copy_from_slice(&src.w);
            dst.b.copy_from_slice(&src.b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_construction() {
        let a = Mlp::new(&[4, 8], AdamConfig::default(), 7);
        let b = Mlp::new(&[4, 8], AdamConfig::default(), 7);
        let x = vec![0.5, -0.25, 1.0, 0.0];
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn learns_a_linear_function() {
        let adam = AdamConfig {
            lr: 5e-3,
            ..AdamConfig::default()
        };
        let mut net = Mlp::new(&[2, 16], adam, 1);
        // y = 3x0 − 2x1 + 1
        let f = |x: &[f32]| 3.0 * x[0] - 2.0 * x[1] + 1.0;
        let data: Vec<Vec<f32>> = (0..64)
            .map(|i| vec![(i % 8) as f32 / 8.0, (i / 8) as f32 / 8.0])
            .collect();
        let ys: Vec<f32> = data.iter().map(|x| f(x)).collect();
        let mut last = f32::MAX;
        for _ in 0..1500 {
            last = net.train_batch(&data, &ys);
        }
        assert!(last < 0.01, "final loss {last}");
        let probe = vec![0.5, 0.5];
        assert!((net.predict(&probe) - f(&probe)).abs() < 0.3);
    }

    #[test]
    fn learns_a_nonlinear_function() {
        let mut net = Mlp::new(&[1, 32, 16], AdamConfig::default(), 2);
        // y = |x| needs a hidden layer.
        let data: Vec<Vec<f32>> = (-16..=16).map(|i| vec![i as f32 / 8.0]).collect();
        let ys: Vec<f32> = data.iter().map(|x| x[0].abs()).collect();
        for _ in 0..1500 {
            net.train_batch(&data, &ys);
        }
        assert!((net.predict(&[1.0]) - 1.0).abs() < 0.15);
        assert!((net.predict(&[-1.0]) - 1.0).abs() < 0.15);
        assert!(net.predict(&[0.0]).abs() < 0.2);
    }

    #[test]
    fn target_copy_is_exact() {
        let mut main = Mlp::new(&[3, 8], AdamConfig::default(), 3);
        let mut target = Mlp::new(&[3, 8], AdamConfig::default(), 99);
        let x = vec![0.1, 0.2, 0.3];
        main.train_batch(std::slice::from_ref(&x), &[1.0]);
        assert_ne!(main.predict(&x), target.predict(&x));
        target.copy_weights_from(&main);
        assert_eq!(main.predict(&x), target.predict(&x));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut net = Mlp::new(&[2, 4], AdamConfig::default(), 5);
        let before = net.predict(&[1.0, 1.0]);
        assert_eq!(net.train_batch(&[], &[]), 0.0);
        assert_eq!(net.predict(&[1.0, 1.0]), before);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_batch_panics() {
        let mut net = Mlp::new(&[2, 4], AdamConfig::default(), 5);
        net.train_batch(&[vec![0.0, 0.0]], &[]);
    }
}
