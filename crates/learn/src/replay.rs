//! Replay memory (Section VI-B).
//!
//! A bounded ring buffer of MDP transitions sampled uniformly for
//! mini-batch training — the classic DQN ingredient the paper adopts to
//! decorrelate the order-agent experience stream.

use crate::mdp::Transition;
use rand::Rng;

/// Fixed-capacity uniform-sampling replay buffer.
#[derive(Clone, Debug)]
pub struct ReplayMemory {
    buf: Vec<Transition>,
    capacity: usize,
    next: usize,
}

impl ReplayMemory {
    /// Create a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            next: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Insert a transition, evicting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.buf.len() < self.capacity {
            self.buf.push(t);
        } else {
            self.buf[self.next] = t;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Sample `n` transitions uniformly with replacement.
    pub fn sample<'a, R: Rng>(&'a self, n: usize, rng: &mut R) -> Vec<&'a Transition> {
        (0..n)
            .filter_map(|_| {
                if self.buf.is_empty() {
                    None
                } else {
                    Some(&self.buf[rng.gen_range(0..self.buf.len())])
                }
            })
            .collect()
    }

    /// Iterate over all stored transitions (oldest-first not guaranteed).
    pub fn iter(&self) -> impl Iterator<Item = &Transition> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::Outcome;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(tag: f32) -> Transition {
        Transition {
            state: vec![tag],
            outcome: Outcome::Expired,
            penalty: 0.0,
            gmm_theta: 0.0,
        }
    }

    #[test]
    fn push_until_capacity_then_wrap() {
        let mut m = ReplayMemory::new(3);
        for i in 0..5 {
            m.push(t(i as f32));
        }
        assert_eq!(m.len(), 3);
        // oldest two (0, 1) evicted
        let tags: Vec<f32> = m.iter().map(|t| t.state[0]).collect();
        assert!(tags.contains(&2.0) && tags.contains(&3.0) && tags.contains(&4.0));
    }

    #[test]
    fn sample_uniform() {
        let mut m = ReplayMemory::new(10);
        for i in 0..10 {
            m.push(t(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let s = m.sample(100, &mut rng);
        assert_eq!(s.len(), 100);
        // all samples come from the buffer
        assert!(s.iter().all(|t| (0.0..10.0).contains(&t.state[0])));
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let m = ReplayMemory::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.sample(5, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        ReplayMemory::new(0);
    }
}
