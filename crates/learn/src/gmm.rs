//! 1-D Gaussian Mixture Model fitted by Expectation-Maximization.
//!
//! Section V-C: extra times cluster by trip length, area popularity and
//! release period, so the historical extra-time distribution is modelled as
//! a mixture of Gaussians fitted with EM (Algorithm 3 line 1); its CDF `F`
//! feeds the reduced objective `max (p − θ)F(θ)`.

use crate::erf::{normal_cdf, normal_pdf};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One mixture component.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Mixing weight `π_k` (weights sum to 1).
    pub weight: f64,
    /// Mean `μ_k`.
    pub mean: f64,
    /// Variance `σ_k²` (floored during fitting to avoid collapse).
    pub var: f64,
}

/// A fitted mixture.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Gmm {
    components: Vec<Component>,
}

/// Variance floor: prevents components collapsing onto single points.
const VAR_FLOOR: f64 = 1e-6;

impl Gmm {
    /// Construct directly from components (weights are renormalized).
    ///
    /// # Panics
    /// Panics if `components` is empty or weights are non-positive.
    pub fn new(mut components: Vec<Component>) -> Self {
        assert!(!components.is_empty(), "GMM needs at least one component");
        let total: f64 = components.iter().map(|c| c.weight).sum();
        assert!(total > 0.0, "GMM weights must be positive");
        for c in &mut components {
            c.weight /= total;
            c.var = c.var.max(VAR_FLOOR);
        }
        Self { components }
    }

    /// Fit a `k`-component mixture to `data` with `iters` EM iterations.
    ///
    /// Initialization: components centred on evenly spaced quantiles with
    /// the sample variance — deterministic, so fits are reproducible.
    /// Returns a single-component (sample mean/variance) model when the
    /// data is degenerate or `k == 1`.
    pub fn fit(data: &[f64], k: usize, iters: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let n = data.len();
        if n == 0 {
            return Self::new(vec![Component {
                weight: 1.0,
                mean: 0.0,
                var: 1.0,
            }]);
        }
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = (data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).max(VAR_FLOOR);
        if k == 1 || n < 2 * k {
            return Self::new(vec![Component {
                weight: 1.0,
                mean,
                var,
            }]);
        }
        // quantile initialization
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in GMM input"));
        let mut comps: Vec<Component> = (0..k)
            .map(|i| {
                let q = (i as f64 + 0.5) / k as f64;
                let idx = ((q * n as f64) as usize).min(n - 1);
                Component {
                    weight: 1.0 / k as f64,
                    mean: sorted[idx],
                    var,
                }
            })
            .collect();

        let mut resp = vec![0.0f64; n * k];
        for _ in 0..iters {
            // E step
            for (i, &x) in data.iter().enumerate() {
                let mut total = 0.0;
                for (j, c) in comps.iter().enumerate() {
                    let p = c.weight * normal_pdf(x, c.mean, c.var.sqrt());
                    resp[i * k + j] = p;
                    total += p;
                }
                if total > 0.0 {
                    for j in 0..k {
                        resp[i * k + j] /= total;
                    }
                } else {
                    // numerically orphaned point: uniform responsibility
                    for j in 0..k {
                        resp[i * k + j] = 1.0 / k as f64;
                    }
                }
            }
            // M step
            for (j, c) in comps.iter_mut().enumerate() {
                let nk: f64 = (0..n).map(|i| resp[i * k + j]).sum();
                if nk < 1e-12 {
                    // dead component: re-seed at global mean
                    c.weight = 1e-6;
                    c.mean = mean;
                    c.var = var;
                    continue;
                }
                c.weight = nk / n as f64;
                c.mean = (0..n).map(|i| resp[i * k + j] * data[i]).sum::<f64>() / nk;
                c.var = ((0..n)
                    .map(|i| resp[i * k + j] * (data[i] - c.mean).powi(2))
                    .sum::<f64>()
                    / nk)
                    .max(VAR_FLOOR);
            }
            let total_w: f64 = comps.iter().map(|c| c.weight).sum();
            for c in &mut comps {
                c.weight /= total_w;
            }
        }
        Self::new(comps)
    }

    /// The mixture components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Mixture density `f(x)`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * normal_pdf(x, c.mean, c.var.sqrt()))
            .sum()
    }

    /// Mixture CDF `F(x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * normal_cdf(x, c.mean, c.var.sqrt()))
            .sum()
    }

    /// Mixture mean.
    pub fn mean(&self) -> f64 {
        self.components.iter().map(|c| c.weight * c.mean).sum()
    }

    /// Log-likelihood of `data` under the mixture.
    pub fn log_likelihood(&self, data: &[f64]) -> f64 {
        data.iter().map(|&x| self.pdf(x).max(1e-300).ln()).sum()
    }

    /// Draw one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = self.components.last().expect("non-empty");
        for c in &self.components {
            acc += c.weight;
            if u <= acc {
                chosen = c;
                break;
            }
        }
        // Box–Muller
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        chosen.mean + z * chosen.var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bimodal_sample(n: usize, seed: u64) -> Vec<f64> {
        let truth = Gmm::new(vec![
            Component {
                weight: 0.5,
                mean: 0.0,
                var: 1.0,
            },
            Component {
                weight: 0.5,
                mean: 10.0,
                var: 1.0,
            },
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| truth.sample(&mut rng)).collect()
    }

    #[test]
    fn fit_recovers_bimodal_means() {
        let data = bimodal_sample(4000, 1);
        let g = Gmm::fit(&data, 2, 50);
        let mut means: Vec<f64> = g.components().iter().map(|c| c.mean).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((means[0] - 0.0).abs() < 0.3, "low mean {}", means[0]);
        assert!((means[1] - 10.0).abs() < 0.3, "high mean {}", means[1]);
    }

    #[test]
    fn em_never_decreases_likelihood_materially() {
        let data = bimodal_sample(1000, 2);
        let short = Gmm::fit(&data, 2, 3);
        let long = Gmm::fit(&data, 2, 40);
        assert!(long.log_likelihood(&data) >= short.log_likelihood(&data) - 1e-6);
    }

    #[test]
    fn cdf_monotone_and_normalized() {
        let data = bimodal_sample(500, 3);
        let g = Gmm::fit(&data, 3, 20);
        let mut prev = 0.0;
        for i in -30..60 {
            let v = g.cdf(i as f64 * 0.5);
            assert!(v + 1e-12 >= prev);
            prev = v;
        }
        assert!(g.cdf(-100.0) < 1e-6);
        assert!(g.cdf(200.0) > 1.0 - 1e-6);
    }

    #[test]
    fn weights_sum_to_one() {
        let data = bimodal_sample(800, 4);
        let g = Gmm::fit(&data, 4, 25);
        let s: f64 = g.components().iter().map(|c| c.weight).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_data_falls_back_to_single_component() {
        let g = Gmm::fit(&[5.0, 5.0, 5.0], 3, 10);
        assert_eq!(g.components().len(), 1);
        assert!((g.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_data_yields_default() {
        let g = Gmm::fit(&[], 2, 10);
        assert_eq!(g.components().len(), 1);
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let g = Gmm::new(vec![
            Component {
                weight: 1.0,
                mean: 2.0,
                var: 1.0,
            },
            Component {
                weight: 3.0,
                mean: 6.0,
                var: 1.0,
            },
        ]);
        assert!((g.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_mean_roughly() {
        let g = Gmm::new(vec![Component {
            weight: 1.0,
            mean: 7.0,
            var: 4.0,
        }]);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let m: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - 7.0).abs() < 0.1, "sample mean {m}");
    }
}

/// Select the number of mixture components by the Bayesian Information
/// Criterion: fit `k = 1..=max_k` and keep the fit minimizing
/// `BIC = (3k − 1)·ln n − 2·logL`. Algorithm 3 assumes the component
/// count is given; this helper chooses it from data, which is what a
/// deployment would do day over day.
pub fn fit_bic(data: &[f64], max_k: usize, iters: usize) -> Gmm {
    assert!(max_k >= 1, "max_k must be at least 1");
    let n = data.len().max(1) as f64;
    let mut best: Option<(f64, Gmm)> = None;
    for k in 1..=max_k {
        let g = Gmm::fit(data, k, iters);
        let params = (3 * g.components().len() - 1) as f64;
        let bic = params * n.ln() - 2.0 * g.log_likelihood(data);
        if best.as_ref().is_none_or(|(b, _)| bic < *b) {
            best = Some((bic, g));
        }
    }
    best.expect("max_k ≥ 1 guarantees a fit").1
}

#[cfg(test)]
mod bic_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bic_picks_two_for_bimodal_data() {
        let truth = Gmm::new(vec![
            Component {
                weight: 0.5,
                mean: 0.0,
                var: 1.0,
            },
            Component {
                weight: 0.5,
                mean: 20.0,
                var: 1.0,
            },
        ]);
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<f64> = (0..2000).map(|_| truth.sample(&mut rng)).collect();
        let g = fit_bic(&data, 4, 30);
        assert_eq!(g.components().len(), 2, "BIC should recover 2 modes");
    }

    #[test]
    fn bic_picks_one_for_unimodal_data() {
        let truth = Gmm::new(vec![Component {
            weight: 1.0,
            mean: 10.0,
            var: 4.0,
        }]);
        let mut rng = StdRng::seed_from_u64(12);
        let data: Vec<f64> = (0..1500).map(|_| truth.sample(&mut rng)).collect();
        let g = fit_bic(&data, 4, 30);
        assert_eq!(g.components().len(), 1, "BIC should not overfit");
    }

    #[test]
    fn bic_handles_tiny_samples() {
        let g = fit_bic(&[1.0, 2.0, 3.0], 3, 10);
        assert!(!g.components().is_empty());
    }
}
