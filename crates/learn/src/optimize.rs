//! Threshold optimization (Section V-B/V-C, Algorithm 3).
//!
//! The METRS objective reduces to `max_θ (p − θ)·F(θ)` per order
//! (Equation 8), where `p` is the order's rejection penalty and `F` the CDF
//! of the fitted extra-time distribution. `(p − θ)` is decreasing and
//! `F(θ)` increasing, so the product is unimodal on `[0, p]`; the paper
//! optimizes it with a few gradient steps — we use golden-section search
//! (derivative-free, immune to the GMM's plateau regions) followed by a
//! short gradient-ascent polish using the analytic derivative
//! `h'(θ) = (p − θ)·f(θ) − F(θ)`.

use crate::gmm::Gmm;
use watter_core::Order;
use watter_strategy::{DecisionContext, ThresholdProvider};

/// Maximize `h(θ) = (p − θ)·F(θ)` over `θ ∈ [0, p]`.
///
/// Returns `0` when the penalty is non-positive (an order with no slack has
/// nothing to trade).
pub fn optimal_threshold(penalty: f64, gmm: &Gmm) -> f64 {
    if penalty <= 0.0 {
        return 0.0;
    }
    let h = |theta: f64| (penalty - theta) * gmm.cdf(theta);
    // The paper argues h is convex (unimodal); that holds for broad
    // mixtures but *fails* for sharply separated components (h becomes
    // multi-modal — see the property tests). A coarse global scan first
    // brackets the best mode, then golden-section refines inside it.
    const SCAN: usize = 256;
    let mut best_i = 0;
    let mut best_v = f64::MIN;
    for i in 0..=SCAN {
        let t = penalty * i as f64 / SCAN as f64;
        let v = h(t);
        if v > best_v {
            best_v = v;
            best_i = i;
        }
    }
    let step = penalty / SCAN as f64;
    let scan_lo = (best_i.saturating_sub(1)) as f64 * step;
    let scan_hi = ((best_i + 1).min(SCAN)) as f64 * step;
    // Golden-section search for a maximum inside the bracketed mode.
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut lo, mut hi) = (scan_lo, scan_hi);
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let (mut f1, mut f2) = (h(x1), h(x2));
    for _ in 0..80 {
        if f1 < f2 {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = h(x2);
        } else {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = h(x1);
        }
        if hi - lo < 1e-9 * penalty.max(1.0) {
            break;
        }
    }
    let mut theta = 0.5 * (lo + hi);
    // Gradient polish (the paper's Gradient Descent step, Algorithm 3
    // line 5): h'(θ) = (p − θ) f(θ) − F(θ).
    let mut step = 0.05 * penalty;
    for _ in 0..32 {
        let grad = (penalty - theta) * gmm.pdf(theta) - gmm.cdf(theta);
        let next = (theta + step * grad).clamp(0.0, penalty);
        if h(next) >= h(theta) {
            theta = next;
        } else {
            step *= 0.5;
        }
    }
    theta
}

/// Threshold provider backed by the GMM fit (the non-RL variant of
/// WATTER-expect; also the anchor of the target loss in Section VI-B).
#[derive(Clone, Debug)]
pub struct GmmThresholdProvider {
    gmm: Gmm,
}

impl GmmThresholdProvider {
    /// Fit a provider from historical extra times (Algorithm 3 lines 1–2).
    pub fn fit(history: &[f64], components: usize, em_iters: usize) -> Self {
        Self {
            gmm: Gmm::fit(history, components, em_iters),
        }
    }

    /// Wrap an existing fit.
    pub fn from_gmm(gmm: Gmm) -> Self {
        Self { gmm }
    }

    /// The underlying mixture.
    pub fn gmm(&self) -> &Gmm {
        &self.gmm
    }
}

impl ThresholdProvider for GmmThresholdProvider {
    fn threshold(&self, order: &Order, _ctx: &DecisionContext<'_>) -> f64 {
        optimal_threshold(order.penalty() as f64, &self.gmm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmm::Component;

    fn unit_gmm(mean: f64, var: f64) -> Gmm {
        Gmm::new(vec![Component {
            weight: 1.0,
            mean,
            var,
        }])
    }

    /// Brute-force argmax for cross-checking.
    fn brute(penalty: f64, gmm: &Gmm) -> f64 {
        let mut best = (f64::MIN, 0.0);
        for i in 0..=20_000 {
            let theta = penalty * i as f64 / 20_000.0;
            let v = (penalty - theta) * gmm.cdf(theta);
            if v > best.0 {
                best = (v, theta);
            }
        }
        best.1
    }

    #[test]
    fn matches_brute_force_single_gaussian() {
        let gmm = unit_gmm(60.0, 400.0);
        for &p in &[100.0, 200.0, 500.0] {
            let fast = optimal_threshold(p, &gmm);
            let slow = brute(p, &gmm);
            let h = |t: f64| (p - t) * gmm.cdf(t);
            assert!(
                (h(fast) - h(slow)).abs() <= 1e-6 * h(slow).abs().max(1.0),
                "p={p}: h(fast)={} h(slow)={}",
                h(fast),
                h(slow)
            );
        }
    }

    #[test]
    fn matches_brute_force_mixture() {
        let gmm = Gmm::new(vec![
            Component {
                weight: 0.6,
                mean: 30.0,
                var: 100.0,
            },
            Component {
                weight: 0.4,
                mean: 150.0,
                var: 900.0,
            },
        ]);
        let p = 300.0;
        let fast = optimal_threshold(p, &gmm);
        let slow = brute(p, &gmm);
        let h = |t: f64| (p - t) * gmm.cdf(t);
        assert!((h(fast) - h(slow)).abs() <= 1e-5 * h(slow));
    }

    #[test]
    fn threshold_within_bounds() {
        let gmm = unit_gmm(50.0, 100.0);
        for &p in &[1.0, 10.0, 1_000.0] {
            let t = optimal_threshold(p, &gmm);
            assert!((0.0..=p).contains(&t));
        }
    }

    #[test]
    fn zero_penalty_returns_zero() {
        let gmm = unit_gmm(5.0, 1.0);
        assert_eq!(optimal_threshold(0.0, &gmm), 0.0);
        assert_eq!(optimal_threshold(-3.0, &gmm), 0.0);
    }

    #[test]
    fn lower_extra_times_raise_dispatch_eagerness() {
        // If historical extra times are small, the optimal θ sits near the
        // distribution's mass (dispatch as soon as te is typical); a
        // distribution shifted right moves θ right too.
        let low = unit_gmm(20.0, 25.0);
        let high = unit_gmm(120.0, 25.0);
        let p = 400.0;
        assert!(optimal_threshold(p, &low) < optimal_threshold(p, &high));
    }

    #[test]
    fn provider_scales_with_order_penalty() {
        use watter_core::{EnvSnapshot, NodeId, OrderId};
        let provider = GmmThresholdProvider::from_gmm(unit_gmm(30.0, 100.0));
        let env = EnvSnapshot::empty(2);
        let ctx = DecisionContext { now: 0, env: &env };
        let mk = |deadline| Order {
            id: OrderId(0),
            pickup: NodeId(0),
            dropoff: NodeId(1),
            riders: 1,
            release: 0,
            deadline,
            wait_limit: 10,
            direct_cost: 100,
        };
        let tight = provider.threshold(&mk(150), &ctx); // p = 50
        let loose = provider.threshold(&mk(1_000), &ctx); // p = 900
        assert!(tight <= loose);
        assert!(tight <= 50.0);
    }
}
