//! # watter-learn
//!
//! Learning components of WATTER (Sections V-C and VI):
//!
//! * [`erf`] — error function (no `libm` dependency) backing Gaussian CDFs;
//! * [`gmm`] — 1-D Gaussian Mixture Models fitted with
//!   Expectation-Maximization over historical extra times;
//! * [`optimize`] — the reduced METRS objective `max (p − θ)·F(θ)`
//!   (Equation 8) solved per order (Algorithm 3);
//! * [`state`] — the MDP state featurizer: one-hot pick-up/drop-off grid
//!   cells, time slots, demand and supply distributions (Section VI-A);
//! * [`mlp`] — a from-scratch multi-layer perceptron with Adam, used as the
//!   value network `V(s)`;
//! * [`replay`] — replay memory for off-policy training (Section VI-B);
//! * [`mdp`] — transitions and Bellman targets exactly as the paper's
//!   update rules;
//! * [`trainer`] — DQN-style training loop with a delayed-copy target
//!   network and the combined loss `ω·loss_td + (1−ω)·loss_tg`;
//! * [`value`] — the trained value function as a
//!   [`watter_strategy::ThresholdProvider`] via `θ^(i) = p^(i) − V(s^(i))`.

pub mod erf;
pub mod gmm;
pub mod mdp;
pub mod mlp;
pub mod optimize;
pub mod recorder;
pub mod replay;
pub mod state;
pub mod trainer;
pub mod value;

pub use gmm::Gmm;
pub use mdp::{Outcome, Transition};
pub use mlp::Mlp;
pub use optimize::{optimal_threshold, GmmThresholdProvider};
pub use recorder::TransitionRecorder;
pub use replay::ReplayMemory;
pub use state::StateFeaturizer;
pub use trainer::{TrainerConfig, ValueTrainer};
pub use value::ValueFunction;
