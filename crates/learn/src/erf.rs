//! Error function and Gaussian CDF.
//!
//! `std` does not expose `erf`, and the workspace deliberately avoids a
//! `libm` dependency, so we use the Abramowitz & Stegun 7.1.26 rational
//! approximation (max absolute error 1.5 × 10⁻⁷ — far below anything the
//! threshold optimization can notice).

/// Error function, |error| ≤ 1.5e-7.
pub fn erf(x: f64) -> f64 {
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// CDF of `N(mean, sd²)` evaluated at `x`.
pub fn normal_cdf(x: f64, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd > 0.0, "standard deviation must be positive");
    0.5 * (1.0 + erf((x - mean) / (sd * std::f64::consts::SQRT_2)))
}

/// PDF of `N(mean, sd²)` evaluated at `x`.
pub fn normal_pdf(x: f64, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd > 0.0, "standard deviation must be positive");
    let z = (x - mean) / sd;
    (-0.5 * z * z).exp() / (sd * (2.0 * std::f64::consts::PI).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from tables.
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erf(-x)).abs() < 1e-12, "x = {x}");
            assert!(erf(x) <= 1.0 && erf(x) >= -1.0);
        }
    }

    #[test]
    fn normal_cdf_basics() {
        assert!((normal_cdf(0.0, 0.0, 1.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96, 0.0, 1.0) - 0.975).abs() < 1e-3);
        assert!(normal_cdf(-8.0, 0.0, 1.0) < 1e-9);
        assert!(normal_cdf(8.0, 0.0, 1.0) > 1.0 - 1e-9);
    }

    #[test]
    fn normal_cdf_is_monotone() {
        let mut prev = 0.0;
        for i in -50..50 {
            let v = normal_cdf(i as f64 * 0.2, 1.0, 3.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn normal_pdf_peaks_at_mean() {
        let peak = normal_pdf(2.0, 2.0, 0.5);
        assert!(normal_pdf(1.5, 2.0, 0.5) < peak);
        assert!(normal_pdf(2.5, 2.0, 0.5) < peak);
        assert!((peak - 1.0 / (0.5 * (2.0 * std::f64::consts::PI).sqrt())).abs() < 1e-12);
    }
}
