//! MDP state featurizer (Section VI-A, *State*).
//!
//! `s_t = [s_L, s_T, s_O, s_W]`:
//!
//! * `s_L` — one-hot encodings of the order's pick-up and drop-off grid
//!   cells (2·g² dims),
//! * `s_T` — the release time slot and the waited time, both normalized
//!   (2 dims),
//! * `s_O` — demand distribution: per-cell counts of pooled orders' pick-up
//!   and drop-off locations, normalized (2·g² dims),
//! * `s_W` — supply distribution: per-cell idle-worker counts, normalized
//!   (g² dims).
//!
//! Total dimensionality `5·g² + 2` (502 for the default 10 × 10 grid).

use serde::{Deserialize, Serialize};
use watter_core::{Dur, EnvSnapshot, NodeId, Order, Ts};
use watter_road::GridIndex;

/// Converts an (order, time, environment) triple into the dense feature
/// vector consumed by the value network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StateFeaturizer {
    grid: GridIndex,
    /// Time-slot width Δt in seconds (Table III default: 10 s).
    pub slot_seconds: Dur,
    /// Normalizer for the waited-time feature (a typical watching window).
    pub wait_scale: f64,
    /// Normalizer for per-cell demand/supply counts.
    pub count_scale: f64,
}

impl StateFeaturizer {
    /// Build a featurizer over the given grid index.
    pub fn new(grid: GridIndex, slot_seconds: Dur) -> Self {
        assert!(slot_seconds > 0, "slot width must be positive");
        Self {
            grid,
            slot_seconds,
            wait_scale: 600.0,
            count_scale: 16.0,
        }
    }

    /// Dimensionality of produced feature vectors.
    pub fn dim(&self) -> usize {
        5 * self.grid.cells() + 2
    }

    /// Grid dimension `g`.
    pub fn grid_dim(&self) -> usize {
        self.grid.dim()
    }

    /// Grid cell of a node (exposed for tests and diagnostics).
    pub fn cell_of(&self, node: NodeId) -> usize {
        self.grid.cell_of(node)
    }

    /// Encode the state of `order` at time `now` under environment `env`.
    ///
    /// # Panics
    /// Panics (debug) if `env` disagrees with the featurizer's grid size.
    pub fn encode(&self, order: &Order, now: Ts, env: &EnvSnapshot) -> Vec<f32> {
        let cells = self.grid.cells();
        debug_assert_eq!(env.cells(), cells, "environment grid mismatch");
        let mut x = vec![0.0f32; self.dim()];
        // s_L: one-hot pick-up cell, then one-hot drop-off cell.
        x[self.grid.cell_of(order.pickup)] = 1.0;
        x[cells + self.grid.cell_of(order.dropoff)] = 1.0;
        // s_T: release slot (time-of-day phase) and waited slots.
        let day_slots = (watter_core::time::DAY / self.slot_seconds).max(1) as f64;
        let release_slot = (order.release / self.slot_seconds) as f64;
        x[2 * cells] = (release_slot / day_slots).fract() as f32;
        let waited = order.response_at(now) as f64;
        x[2 * cells + 1] = (waited / self.wait_scale).min(4.0) as f32;
        // s_O: demand distributions.
        let base = 2 * cells + 2;
        for (i, &c) in env.demand_pickup.iter().enumerate() {
            x[base + i] = (c as f64 / self.count_scale).min(4.0) as f32;
        }
        for (i, &c) in env.demand_dropoff.iter().enumerate() {
            x[base + cells + i] = (c as f64 / self.count_scale).min(4.0) as f32;
        }
        // s_W: supply distribution.
        for (i, &c) in env.supply.iter().enumerate() {
            x[base + 2 * cells + i] = (c as f64 / self.count_scale).min(4.0) as f32;
        }
        x
    }

    /// Build an [`EnvSnapshot`] from pooled orders and idle-worker nodes —
    /// helper shared by the simulator and offline experience generation.
    pub fn snapshot<'a>(
        &self,
        pooled: impl Iterator<Item = &'a Order>,
        idle_workers: impl Iterator<Item = NodeId>,
    ) -> EnvSnapshot {
        let mut env = EnvSnapshot::empty(self.grid.dim());
        for o in pooled {
            env.demand_pickup[self.grid.cell_of(o.pickup)] += 1;
            env.demand_dropoff[self.grid.cell_of(o.dropoff)] += 1;
        }
        for w in idle_workers {
            env.supply[self.grid.cell_of(w)] += 1;
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::OrderId;
    use watter_road::{CityConfig, GridIndex};

    fn featurizer() -> StateFeaturizer {
        let city = CityConfig {
            width: 8,
            height: 8,
            ..CityConfig::default()
        }
        .generate(1);
        StateFeaturizer::new(GridIndex::build(&city, 4), 10)
    }

    fn order(p: u32, d: u32, release: Ts) -> Order {
        Order {
            id: OrderId(0),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline: release + 10_000,
            wait_limit: 300,
            direct_cost: 500,
        }
    }

    #[test]
    fn dimensionality_matches_formula() {
        let f = featurizer();
        assert_eq!(f.dim(), 5 * 16 + 2);
        let env = EnvSnapshot::empty(4);
        assert_eq!(f.encode(&order(0, 63, 0), 0, &env).len(), f.dim());
    }

    #[test]
    fn one_hot_cells_set() {
        let f = featurizer();
        let env = EnvSnapshot::empty(4);
        let o = order(0, 63, 0);
        let x = f.encode(&o, 0, &env);
        let pc = f.cell_of(o.pickup);
        let dc = f.cell_of(o.dropoff);
        assert_eq!(x[pc], 1.0);
        assert_eq!(x[16 + dc], 1.0);
        // exactly two one-hot bits in the first 32 dims
        let ones: usize = x[..32].iter().filter(|&&v| v == 1.0).count();
        assert_eq!(ones, 2);
    }

    #[test]
    fn waited_time_feature_grows() {
        let f = featurizer();
        let env = EnvSnapshot::empty(4);
        let o = order(0, 63, 100);
        let x0 = f.encode(&o, 100, &env);
        let x1 = f.encode(&o, 400, &env);
        assert!(x1[2 * 16 + 1] > x0[2 * 16 + 1]);
    }

    #[test]
    fn snapshot_counts_demand_and_supply() {
        let f = featurizer();
        let orders = [order(0, 63, 0), order(1, 62, 0)];
        let env = f.snapshot(orders.iter(), [NodeId(5), NodeId(6)].into_iter());
        assert_eq!(env.total_demand(), 2);
        assert_eq!(env.total_supply(), 2);
    }

    #[test]
    fn demand_features_normalized() {
        let f = featurizer();
        let mut env = EnvSnapshot::empty(4);
        env.demand_pickup[3] = 8;
        let x = f.encode(&order(0, 63, 0), 0, &env);
        let base = 2 * 16 + 2;
        assert!((x[base + 3] - 0.5).abs() < 1e-6); // 8 / 16
    }
}
