//! Extra time (Definition 6) and the METRS objective Φ (Equation 2).

use crate::time::Dur;
use serde::{Deserialize, Serialize};

/// Trade-off coefficients `α` (detour) and `β` (response) of Definition 6.
///
/// The paper's experiments fix `α = β = 1` (Table III), making extra time
/// the literal additional seconds a rider spends versus a solo direct trip.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Weight of detour time `t_d`.
    pub alpha: f64,
    /// Weight of response time `t_r`.
    pub beta: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 1.0,
        }
    }
}

impl CostWeights {
    /// `t_e = α·t_d + β·t_r`.
    #[inline]
    pub fn extra_time(self, detour: Dur, response: Dur) -> f64 {
        self.alpha * detour as f64 + self.beta * response as f64
    }
}

/// Extra time with explicit weights (free-function form of
/// [`CostWeights::extra_time`]).
#[inline]
pub fn extra_time(w: CostWeights, detour: Dur, response: Dur) -> f64 {
    w.extra_time(detour, response)
}

/// Running accumulator for the METRS objective
/// `Φ(W, O) = Σ_{o∈O+} t_e + Σ_{o∈O−} p` (Equation 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// Accumulated extra time of served orders.
    pub served_extra: f64,
    /// Accumulated penalties of rejected orders.
    pub rejected_penalty: f64,
}

impl Objective {
    /// Record a served order's extra time.
    pub fn serve(&mut self, extra: f64) {
        self.served_extra += extra;
    }

    /// Record a rejected order's penalty `p^(i)`.
    pub fn reject(&mut self, penalty: Dur) {
        self.rejected_penalty += penalty as f64;
    }

    /// The objective value Φ.
    pub fn value(&self) -> f64 {
        self.served_extra + self.rejected_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_are_unit() {
        let w = CostWeights::default();
        assert_eq!(w.extra_time(30, 12), 42.0);
    }

    #[test]
    fn weights_scale_components() {
        let w = CostWeights {
            alpha: 2.0,
            beta: 0.5,
        };
        assert_eq!(w.extra_time(10, 4), 22.0);
    }

    #[test]
    fn objective_accumulates() {
        let mut phi = Objective::default();
        phi.serve(10.0);
        phi.serve(5.0);
        phi.reject(100);
        assert_eq!(phi.value(), 115.0);
    }
}
