//! Operational KPIs of a dispatch run.
//!
//! [`Measurements`](crate::Measurements) accumulates the paper's four
//! headline metrics; this module adds the *service-operations* view a
//! dispatch daemon would export (the shape kern's `stats.rs`/`kpis.sql`
//! surface takes): service rate, the **distribution** of per-order extra
//! time rather than only its sum, fleet utilization over the observed
//! span, and per-check dispatch-latency percentiles.
//!
//! [`Kpis`] is the raw accumulator the dispatch core feeds as it applies
//! events; it is serde-serializable so snapshots carry it. [`KpiReport`]
//! is the derived, report-ready summary (CLI `--kpis json`, `reproduce`).
//!
//! Determinism: everything in [`Kpis`] except `tick_nanos` is a pure
//! function of the event stream. `tick_nanos` is wall-clock measurement
//! noise — [`Kpis::without_timing`] strips it for bit-identity
//! comparisons, mirroring how `Measurements::decision_nanos` is treated.
//!
//! Both sample populations are held in bounded [`Sketch`]es (from
//! `watter-obs`): small runs — every test and reproduction study —
//! keep exact samples and report exact nearest-rank percentiles,
//! while a multi-day daemon run degrades to log₂-bucket estimates at
//! constant memory instead of growing a `Vec` per tick.

use crate::metrics::Measurements;
use crate::time::Ts;
use serde::{Deserialize, Serialize};
use watter_obs::Sketch;

/// Raw KPI accumulator, updated by the dispatch core per applied event.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Kpis {
    /// Number of workers in the fleet.
    pub fleet_size: u64,
    /// Periodic checks executed.
    pub checks: u64,
    /// Realized extra time (α·detour + β·response) per served order,
    /// seconds, as a bounded streaming sketch.
    pub extra_times: Sketch,
    /// Wall-clock nanoseconds of dispatcher work per check tick (the only
    /// non-deterministic field; see [`Kpis::without_timing`]).
    pub tick_nanos: Sketch,
    /// High-water mark of orders pending inside the dispatcher.
    pub peak_pending: u64,
    /// High-water mark of arrivals buffered ahead of delivery.
    pub peak_buffered: u64,
    /// Timestamp of the first applied event, if any.
    pub first_event: Option<Ts>,
    /// Timestamp of the last applied event.
    pub last_event: Ts,
}

impl Kpis {
    /// Accumulator for a fleet of `fleet_size` workers.
    pub fn new(fleet_size: usize) -> Self {
        Self {
            fleet_size: fleet_size as u64,
            ..Self::default()
        }
    }

    /// Note that an event was applied at `at`.
    pub fn note_event(&mut self, at: Ts) {
        if self.first_event.is_none() {
            self.first_event = Some(at);
        }
        self.last_event = at;
    }

    /// Record a served order's realized extra time.
    pub fn record_extra(&mut self, extra: f64) {
        self.extra_times.record(extra);
    }

    /// Record the dispatcher wall time of one check tick.
    pub fn record_tick(&mut self, nanos: u64) {
        self.checks += 1;
        self.tick_nanos.record(nanos as f64);
    }

    /// Update the backlog high-water marks.
    pub fn note_backlog(&mut self, pending: usize, buffered: usize) {
        self.peak_pending = self.peak_pending.max(pending as u64);
        self.peak_buffered = self.peak_buffered.max(buffered as u64);
    }

    /// Copy with the wall-clock tick latencies stripped: two runs of the
    /// same scenario must be **equal** under this view (the determinism
    /// contract), while `tick_nanos` legitimately differs run to run.
    pub fn without_timing(&self) -> Self {
        Self {
            tick_nanos: Sketch::default(),
            ..self.clone()
        }
    }

    /// Seconds between the first and last applied event.
    pub fn span_seconds(&self) -> f64 {
        match self.first_event {
            Some(first) => (self.last_event - first).max(0) as f64,
            None => 0.0,
        }
    }

    /// Derive the report-ready summary. `measurements` supplies the
    /// outcome counts and total worker-travel seconds.
    pub fn report(&self, measurements: &Measurements) -> KpiReport {
        let fleet_seconds = self.fleet_size as f64 * self.span_seconds();
        let busy = measurements.worker_travel;
        KpiReport {
            total_orders: measurements.total_orders,
            served_orders: measurements.served_orders,
            rejected_orders: measurements.rejected_orders,
            service_rate_pct: 100.0 * measurements.service_rate(),
            extra_time_s: Dist::from_sketch(&self.extra_times, 1.0),
            tick_latency_us: Dist::from_sketch(&self.tick_nanos, 1e-3),
            checks: self.checks,
            peak_pending: self.peak_pending,
            peak_buffered: self.peak_buffered,
            fleet_size: self.fleet_size,
            span_s: self.span_seconds(),
            busy_s: busy,
            // Fraction of fleet-time spent driving within the observed
            // span. Routes extending past the last event can push this
            // over 100% — reported raw, not clamped.
            fleet_utilization_pct: if fleet_seconds > 0.0 {
                100.0 * busy / fleet_seconds
            } else {
                0.0
            },
            // Cache counters live outside the event stream; the runner
            // attaches them when a cost cache was active.
            cache: None,
        }
    }
}

/// Cost-cache efficacy counters of one run (`CachedOracle` in
/// `watter-road`). Counters are diagnostics: under concurrent schedules a
/// would-be hit can degrade to a recompute, so only single-threaded counts
/// are exactly reproducible — outcomes are bit-identical regardless.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OracleCacheKpis {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries recomputed through the inner oracle.
    pub misses: u64,
    /// Slot overwrites that displaced a different cached pair.
    pub evictions: u64,
}

impl OracleCacheKpis {
    /// `100 × hits / (hits + misses)` (0 when no queries).
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }
}

/// Summary statistics of a sample set (nearest-rank percentiles).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Dist {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Dist {
    /// Summarize `samples` (order-independent; copies and sorts).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self {
            count: sorted.len() as u64,
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: percentile(&sorted, 50.0),
            p90: percentile(&sorted, 90.0),
            p99: percentile(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// Summarize a streaming sketch, scaling every statistic by
    /// `scale` (e.g. `1e-3` for nanoseconds → microseconds).
    /// Percentiles are exact nearest-rank values while the sketch is
    /// within its exact window, identical to [`Dist::from_samples`].
    pub fn from_sketch(sketch: &Sketch, scale: f64) -> Self {
        if sketch.is_empty() {
            return Self::default();
        }
        Self {
            count: sketch.count(),
            mean: sketch.mean() * scale,
            p50: sketch.quantile(50.0) * scale,
            p90: sketch.quantile(90.0) * scale,
            p99: sketch.quantile(99.0) * scale,
            max: sketch.max() * scale,
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample set.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Report-ready KPI summary of one run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KpiReport {
    /// Orders that reached a terminal outcome.
    pub total_orders: u64,
    /// Orders served.
    pub served_orders: u64,
    /// Orders rejected.
    pub rejected_orders: u64,
    /// `100 × served / total` (0 when no orders).
    pub service_rate_pct: f64,
    /// Distribution of per-served-order extra time, seconds.
    pub extra_time_s: Dist,
    /// Distribution of per-check dispatcher wall time, microseconds.
    pub tick_latency_us: Dist,
    /// Periodic checks executed.
    pub checks: u64,
    /// High-water mark of orders pending inside the dispatcher.
    pub peak_pending: u64,
    /// High-water mark of buffered (undelivered) arrivals.
    pub peak_buffered: u64,
    /// Number of workers.
    pub fleet_size: u64,
    /// Seconds between first and last applied event.
    pub span_s: f64,
    /// Total worker driving seconds.
    pub busy_s: f64,
    /// `100 × busy / (fleet_size × span)`; may exceed 100 when routes
    /// extend past the last event.
    pub fleet_utilization_pct: f64,
    /// Cost-cache hit/miss/evict counters, when the run wrapped its oracle
    /// in the memoization layer (`--cost-cache`); `None` otherwise.
    pub cache: Option<OracleCacheKpis>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 50.0), 50.0);
        assert_eq!(percentile(&s, 90.0), 90.0);
        assert_eq!(percentile(&s, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn dist_is_sample_order_independent() {
        let a = Dist::from_samples(&[3.0, 1.0, 2.0]);
        let b = Dist::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_eq!(a.count, 3);
        assert_eq!(a.mean, 2.0);
        assert_eq!(a.max, 3.0);
    }

    #[test]
    fn empty_run_reports_zeros() {
        let k = Kpis::new(5);
        let r = k.report(&Measurements::default());
        assert_eq!(r.total_orders, 0);
        assert_eq!(r.service_rate_pct, 0.0);
        assert_eq!(r.span_s, 0.0);
        assert_eq!(r.fleet_utilization_pct, 0.0);
        assert_eq!(r.extra_time_s, Dist::default());
    }

    #[test]
    fn utilization_over_observed_span() {
        let mut k = Kpis::new(2);
        k.note_event(100);
        k.note_event(200); // span 100 s, 2 workers ⇒ 200 fleet-seconds
        let mut m = Measurements::default();
        m.record_worker_travel(50);
        let r = k.report(&m);
        assert_eq!(r.span_s, 100.0);
        assert_eq!(r.fleet_utilization_pct, 25.0);
    }

    #[test]
    fn without_timing_strips_only_tick_nanos() {
        let mut k = Kpis::new(1);
        k.note_event(7);
        k.record_extra(3.5);
        k.record_tick(12_345);
        k.note_backlog(4, 9);
        let stripped = k.without_timing();
        assert!(stripped.tick_nanos.is_empty());
        assert_eq!(stripped.checks, 1);
        assert_eq!(stripped.extra_times.count(), 1);
        assert_eq!(stripped.extra_times.quantile(50.0), 3.5);
        assert_eq!(stripped.peak_pending, 4);
        assert_eq!(stripped.peak_buffered, 9);
    }

    #[test]
    fn report_from_sketch_matches_exact_samples() {
        let mut k = Kpis::new(1);
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        for &s in &samples {
            k.record_extra(s);
            k.record_tick((s * 1e3) as u64); // 1–100 µs in nanos
        }
        let r = k.report(&Measurements::default());
        assert_eq!(r.extra_time_s, Dist::from_samples(&samples));
        // Tick latencies scale ns → µs exactly while the sketch holds
        // its exact window.
        assert_eq!(r.tick_latency_us.p50, 50.0);
        assert_eq!(r.tick_latency_us.p99, 99.0);
        assert_eq!(r.tick_latency_us.max, 100.0);
        assert_eq!(r.checks, 100);
    }

    #[test]
    fn single_sample_run_reports_that_sample_everywhere() {
        let mut k = Kpis::new(1);
        k.record_extra(42.5);
        k.record_tick(7_000);
        let r = k.report(&Measurements::default());
        for v in [
            r.extra_time_s.p50,
            r.extra_time_s.p90,
            r.extra_time_s.p99,
            r.extra_time_s.max,
            r.extra_time_s.mean,
        ] {
            assert_eq!(v, 42.5);
        }
        assert_eq!(r.tick_latency_us.p99, 7.0);
        assert_eq!(r.extra_time_s.count, 1);
    }

    #[test]
    fn all_equal_samples_have_flat_distribution() {
        let mut k = Kpis::new(3);
        for _ in 0..50 {
            k.record_extra(9.0);
        }
        let r = k.report(&Measurements::default());
        assert_eq!(r.extra_time_s.p50, 9.0);
        assert_eq!(r.extra_time_s.p99, 9.0);
        assert_eq!(r.extra_time_s.max, 9.0);
        assert_eq!(r.extra_time_s.mean, 9.0);
        assert_eq!(r.extra_time_s.count, 50);
    }

    #[test]
    fn zero_worker_fleet_reports_without_dividing_by_zero() {
        let mut k = Kpis::new(0);
        k.note_event(100);
        k.note_event(400);
        let mut m = Measurements::default();
        m.record_worker_travel(10);
        let r = k.report(&m);
        assert_eq!(r.fleet_size, 0);
        assert_eq!(r.span_s, 300.0);
        // No fleet-seconds to divide by: utilization reports 0, not NaN.
        assert_eq!(r.fleet_utilization_pct, 0.0);
        assert!(r.fleet_utilization_pct.is_finite());
    }

    #[test]
    fn long_runs_hold_constant_memory() {
        let mut k = Kpis::new(1);
        for i in 0..(watter_obs::EXACT_CAP as u64 * 4) {
            k.record_tick(1_000 + i % 100);
            k.record_extra((i % 60) as f64);
        }
        assert!(!k.tick_nanos.is_exact());
        assert!(!k.extra_times.is_exact());
        let r = k.report(&Measurements::default());
        assert_eq!(r.tick_latency_us.count, watter_obs::EXACT_CAP as u64 * 4);
        // Estimates stay within the observed range.
        assert!(r.tick_latency_us.p99 <= r.tick_latency_us.max);
        assert!(r.extra_time_s.p50 <= 59.0);
    }

    #[test]
    fn cache_kpis_hit_rate() {
        let c = OracleCacheKpis {
            hits: 75,
            misses: 25,
            evictions: 3,
        };
        assert_eq!(c.hit_rate_pct(), 75.0);
        assert_eq!(OracleCacheKpis::default().hit_rate_pct(), 0.0);
        // Reports carry the counters only when a cache was active.
        let r = Kpis::new(1).report(&Measurements::default());
        assert_eq!(r.cache, None);
        let json = serde_json::to_string(&c).expect("serialize");
        let back: OracleCacheKpis = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, c);
    }

    #[test]
    fn json_round_trip() {
        let mut k = Kpis::new(3);
        k.note_event(5);
        k.record_extra(1.25);
        k.record_tick(999);
        let text = serde_json::to_string(&k).expect("serialize");
        let back: Kpis = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, k);
    }
}
