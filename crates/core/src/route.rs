//! Routes (paper Definition 3).
//!
//! A route is an ordered sequence of stops, each of which is a pick-up or a
//! drop-off of some order. The assigned worker drives to the first stop and
//! then follows the sequence. `T(L)` is the total travel time along the
//! sequence; `L^(i)` is the sub-route from the first stop through order
//! `i`'s pick-up to its drop-off.

use crate::ids::{NodeId, OrderId};
use crate::time::Dur;
use crate::TravelCost;
use serde::{Deserialize, Serialize};

/// Whether a stop boards or alights riders.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopKind {
    /// Riders of the order board the vehicle.
    Pickup,
    /// Riders of the order leave the vehicle.
    Dropoff,
}

/// One stop of a route: a location visited on behalf of a specific order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Stop {
    /// The road-network node of the stop.
    pub node: NodeId,
    /// The order served by this stop.
    pub order: OrderId,
    /// Board or alight.
    pub kind: StopKind,
}

impl Stop {
    /// A pick-up stop.
    pub fn pickup(node: NodeId, order: OrderId) -> Self {
        Self {
            node,
            order,
            kind: StopKind::Pickup,
        }
    }

    /// A drop-off stop.
    pub fn dropoff(node: NodeId, order: OrderId) -> Self {
        Self {
            node,
            order,
            kind: StopKind::Dropoff,
        }
    }
}

/// An ordered stop sequence with its pre-computed total travel cost `T(L)`.
///
/// The cost is measured from the **first stop** (the paper's `l_1`): the
/// worker's approach drive to `l_1` is accounted separately by the simulator
/// and, following Definition 5 and Definition 7, does not enter detour times
/// or the deadline constraint.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    stops: Vec<Stop>,
    /// Total travel time `T(L)` along the stop sequence.
    cost: Dur,
}

impl Route {
    /// Build a route from stops, computing `T(L)` with the cost oracle.
    pub fn new(stops: Vec<Stop>, oracle: &impl TravelCost) -> Self {
        let cost = stops
            .windows(2)
            .map(|w| oracle.cost(w[0].node, w[1].node))
            .sum();
        Self { stops, cost }
    }

    /// Build a route whose cost is already known (used by planners that
    /// accumulate the cost while searching, and by [`crate::Group::solo`]
    /// to reuse a cached direct cost). Consistency is checked against the
    /// oracle in debug builds only — release builds issue **no** oracle
    /// queries here, which is what makes the solo "last call" path free.
    pub fn with_cost(stops: Vec<Stop>, cost: Dur, oracle: &impl TravelCost) -> Self {
        #[cfg(debug_assertions)]
        {
            let check: Dur = stops
                .windows(2)
                .map(|w| oracle.cost(w[0].node, w[1].node))
                .sum();
            assert_eq!(check, cost, "planner-claimed route cost mismatch");
        }
        let _ = oracle;
        Self { stops, cost }
    }

    /// An empty route.
    pub fn empty() -> Self {
        Self {
            stops: Vec::new(),
            cost: 0,
        }
    }

    /// The stop sequence.
    #[inline]
    pub fn stops(&self) -> &[Stop] {
        &self.stops
    }

    /// Total travel time `T(L)`.
    #[inline]
    pub fn cost(&self) -> Dur {
        self.cost
    }

    /// Number of stops.
    #[inline]
    pub fn len(&self) -> usize {
        self.stops.len()
    }

    /// Whether the route has no stops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stops.is_empty()
    }

    /// First node `l_1` of the route, if any.
    #[inline]
    pub fn first_node(&self) -> Option<NodeId> {
        self.stops.first().map(|s| s.node)
    }

    /// Last node of the route, if any.
    #[inline]
    pub fn last_node(&self) -> Option<NodeId> {
        self.stops.last().map(|s| s.node)
    }

    /// Travel time of the sub-route `L^(i)`: from the first stop through the
    /// pick-up of `order` to its drop-off (paper Definition 3).
    ///
    /// Returns `None` if the order's drop-off is not on the route.
    pub fn subroute_cost(&self, order: OrderId, oracle: &impl TravelCost) -> Option<Dur> {
        let mut acc: Dur = 0;
        for w in self.stops.windows(2) {
            acc += oracle.cost(w[0].node, w[1].node);
            let s = w[1];
            if s.order == order && s.kind == StopKind::Dropoff {
                return Some(acc);
            }
        }
        // Drop-off might be the very first stop only in degenerate
        // single-stop routes, which are invalid; but handle stop[0] anyway.
        match self.stops.first() {
            Some(s) if s.order == order && s.kind == StopKind::Dropoff => Some(0),
            _ => None,
        }
    }

    /// Detour time `t_d^(i) = T(L^(i)) − cost(l_p, l_d)` (Definition 5) for
    /// an order with the given direct cost.
    pub fn detour(
        &self,
        order: OrderId,
        direct_cost: Dur,
        oracle: &impl TravelCost,
    ) -> Option<Dur> {
        self.subroute_cost(order, oracle)
            .map(|c| (c - direct_cost).max(0))
    }

    /// Orders appearing on the route (each order contributes one pick-up and
    /// one drop-off; this yields them in pick-up order, deduplicated).
    pub fn order_ids(&self) -> Vec<OrderId> {
        let mut ids = Vec::with_capacity(self.stops.len() / 2);
        for s in &self.stops {
            if s.kind == StopKind::Pickup {
                ids.push(s.order);
            }
        }
        ids
    }

    /// Check the sequential constraint (Definition 7, constraint 1): every
    /// order on the route has exactly one pick-up, exactly one drop-off, and
    /// the pick-up precedes the drop-off.
    pub fn is_sequential(&self) -> bool {
        use std::collections::HashMap;
        let mut state: HashMap<OrderId, u8> = HashMap::with_capacity(self.stops.len() / 2 + 1);
        for s in &self.stops {
            let e = state.entry(s.order).or_insert(0);
            match (s.kind, *e) {
                (StopKind::Pickup, 0) => *e = 1,
                (StopKind::Dropoff, 1) => *e = 2,
                _ => return false,
            }
        }
        state.values().all(|&v| v == 2)
    }

    /// Maximum simultaneous riders along the route, given each order's rider
    /// count. Used for the capacity constraint (Definition 7, constraint 3).
    pub fn peak_load(&self, riders_of: impl Fn(OrderId) -> u32) -> u32 {
        let mut load: i64 = 0;
        let mut peak: i64 = 0;
        for s in &self.stops {
            match s.kind {
                StopKind::Pickup => {
                    load += riders_of(s.order) as i64;
                    peak = peak.max(load);
                }
                StopKind::Dropoff => load -= riders_of(s.order) as i64,
            }
        }
        peak.max(0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy metric: |a − b| * 10 seconds.
    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }

    fn two_order_route() -> Route {
        // o0: 0 -> 3, o1: 1 -> 2 ; route 0,1,2,3
        Route::new(
            vec![
                Stop::pickup(NodeId(0), OrderId(0)),
                Stop::pickup(NodeId(1), OrderId(1)),
                Stop::dropoff(NodeId(2), OrderId(1)),
                Stop::dropoff(NodeId(3), OrderId(0)),
            ],
            &Line,
        )
    }

    #[test]
    fn total_cost_sums_legs() {
        let r = two_order_route();
        assert_eq!(r.cost(), 30);
    }

    #[test]
    fn subroute_cost_stops_at_dropoff() {
        let r = two_order_route();
        assert_eq!(r.subroute_cost(OrderId(1), &Line), Some(20));
        assert_eq!(r.subroute_cost(OrderId(0), &Line), Some(30));
        assert_eq!(r.subroute_cost(OrderId(9), &Line), None);
    }

    #[test]
    fn detour_is_subroute_minus_direct() {
        let r = two_order_route();
        // o1 direct cost = |1-2|*10 = 10; subroute = 20 -> detour 10
        assert_eq!(r.detour(OrderId(1), 10, &Line), Some(10));
        // o0 direct = 30, subroute = 30 -> zero detour
        assert_eq!(r.detour(OrderId(0), 30, &Line), Some(0));
    }

    #[test]
    fn sequential_constraint_holds() {
        assert!(two_order_route().is_sequential());
        let bad = Route::new(
            vec![
                Stop::dropoff(NodeId(2), OrderId(1)),
                Stop::pickup(NodeId(1), OrderId(1)),
            ],
            &Line,
        );
        assert!(!bad.is_sequential());
    }

    #[test]
    fn missing_dropoff_is_not_sequential() {
        let r = Route::new(vec![Stop::pickup(NodeId(0), OrderId(0))], &Line);
        assert!(!r.is_sequential());
    }

    #[test]
    fn peak_load_tracks_onboard_riders() {
        let r = two_order_route();
        assert_eq!(r.peak_load(|_| 1), 2);
        assert_eq!(r.peak_load(|o| if o == OrderId(0) { 3 } else { 1 }), 4);
    }

    #[test]
    fn order_ids_in_pickup_order() {
        let r = two_order_route();
        assert_eq!(r.order_ids(), vec![OrderId(0), OrderId(1)]);
    }

    #[test]
    fn empty_route() {
        let r = Route::empty();
        assert!(r.is_empty());
        assert_eq!(r.cost(), 0);
        assert!(r.is_sequential());
    }
}
