//! Orders (paper Definition 1).
//!
//! `o(i) = ⟨l_p, l_d, c, t, τ, η⟩`: deliver `c` riders from pick-up `l_p` to
//! drop-off `l_d`, released at time `t`, with drop-off deadline `τ` and a
//! *watching window* (preferred wait limit) `η`.

use crate::ids::{NodeId, OrderId};
use crate::time::{non_negative, Dur, Ts};
use serde::{Deserialize, Serialize};

/// A ride request.
///
/// The direct (solo) shortest travel time `cost(l_p, l_d)` is cached in
/// [`Order::direct_cost`] at construction because the penalty, deadline and
/// detour computations all reference it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Order {
    /// Order identifier.
    pub id: OrderId,
    /// Pick-up location `l_p^(i)`.
    pub pickup: NodeId,
    /// Drop-off location `l_d^(i)`.
    pub dropoff: NodeId,
    /// Number of riders `c^(i)` travelling together.
    pub riders: u32,
    /// Release timestamp `t^(i)`.
    pub release: Ts,
    /// Drop-off deadline `τ^(i)` (absolute timestamp).
    pub deadline: Ts,
    /// Watching window `η^(i)`: the preferred maximum waiting time before a
    /// response. Not a hard constraint (Definition 1): once exceeded the
    /// order must be dispatched to any suitable group at the next check, or
    /// rejected if none exists.
    pub wait_limit: Dur,
    /// Cached shortest travel time `cost(l_p, l_d)` of the direct trip.
    pub direct_cost: Dur,
}

impl Order {
    /// Builder used by workload generators and tests.
    ///
    /// `deadline_scale` (τ in Table III) and `wait_scale` (η, default 0.8)
    /// follow the paper's setup: `τ(i) = t(i) + τ·cost(l_p,l_d)` and
    /// `η(i) = η·cost(l_p,l_d)` (Section VII-A, *Implementation*).
    #[allow(clippy::too_many_arguments)]
    pub fn from_scales(
        id: OrderId,
        pickup: NodeId,
        dropoff: NodeId,
        riders: u32,
        release: Ts,
        direct_cost: Dur,
        deadline_scale: f64,
        wait_scale: f64,
    ) -> Self {
        debug_assert!(deadline_scale >= 1.0, "deadline scale must be ≥ 1");
        debug_assert!(wait_scale >= 0.0, "wait scale must be ≥ 0");
        let deadline = release + (deadline_scale * direct_cost as f64).round() as Dur;
        let wait_limit = (wait_scale * direct_cost as f64).round() as Dur;
        Self {
            id,
            pickup,
            dropoff,
            riders,
            release,
            deadline,
            wait_limit,
            direct_cost,
        }
    }

    /// Maximum admissible response time
    /// `max t_r^(i) = τ^(i) − t^(i) − cost(l_p, l_d)` (Section II-B).
    ///
    /// Waiting any longer necessarily violates the deadline constraint.
    #[inline]
    pub fn max_response(&self) -> Dur {
        non_negative(self.deadline - self.release - self.direct_cost)
    }

    /// Rejection penalty `p^(i)`.
    ///
    /// The paper sets the penalty equal to the maximum response time so the
    /// objective is consistent between served and rejected orders.
    #[inline]
    pub fn penalty(&self) -> Dur {
        self.max_response()
    }

    /// The timestamp at which the watching window `η^(i)` elapses.
    #[inline]
    pub fn timeout_at(&self) -> Ts {
        self.release + self.wait_limit
    }

    /// Response time if the order were notified (dispatched or rejected) at
    /// `now`: `t_r = t_n − t` (Definition 4).
    #[inline]
    pub fn response_at(&self, now: Ts) -> Dur {
        non_negative(now - self.release)
    }

    /// Latest timestamp at which dispatch can still meet the deadline when
    /// the in-route travel to this order's drop-off takes `route_cost_to_d`
    /// seconds: Definition 7 constraint (2), `t + t_r + T(L^(i)) < τ`.
    #[inline]
    pub fn latest_dispatch(&self, route_cost_to_d: Dur) -> Ts {
        self.deadline - route_cost_to_d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order() -> Order {
        Order::from_scales(OrderId(0), NodeId(1), NodeId(2), 1, 100, 600, 1.5, 0.8)
    }

    #[test]
    fn scales_follow_paper_setup() {
        let o = order();
        assert_eq!(o.deadline, 100 + 900);
        assert_eq!(o.wait_limit, 480);
        assert_eq!(o.timeout_at(), 580);
    }

    #[test]
    fn max_response_is_slack_of_direct_trip() {
        let o = order();
        // τ − t − cost = 900 − 600 = 300
        assert_eq!(o.max_response(), 300);
        assert_eq!(o.penalty(), 300);
    }

    #[test]
    fn response_clamps_before_release() {
        let o = order();
        assert_eq!(o.response_at(50), 0);
        assert_eq!(o.response_at(160), 60);
    }

    #[test]
    fn latest_dispatch_respects_deadline() {
        let o = order();
        // Dispatching at this instant with a 700 s in-route cost arrives
        // exactly at the deadline.
        assert_eq!(o.latest_dispatch(700), o.deadline - 700);
    }

    #[test]
    fn max_response_never_negative() {
        let o = Order::from_scales(OrderId(1), NodeId(0), NodeId(1), 1, 0, 100, 1.0, 0.5);
        assert_eq!(o.max_response(), 0);
    }
}
