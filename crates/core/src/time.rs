//! Time types.
//!
//! The paper measures everything in seconds: release times, response times,
//! detour times and deadlines. We use plain `i64` seconds under two aliases
//! so that signatures distinguish *instants* from *durations*.

/// An absolute timestamp in seconds since the start of the simulated day.
pub type Ts = i64;

/// A duration in seconds.
pub type Dur = i64;

/// Number of seconds in a simulated day. Workload generators place all order
/// release times inside `[0, DAY)`.
pub const DAY: Dur = 24 * 60 * 60;

/// Clamp a duration to be non-negative.
#[inline]
pub fn non_negative(d: Dur) -> Dur {
    d.max(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_negative_clamps() {
        assert_eq!(non_negative(-5), 0);
        assert_eq!(non_negative(0), 0);
        assert_eq!(non_negative(7), 7);
    }

    #[test]
    fn day_is_86400() {
        assert_eq!(DAY, 86_400);
    }
}
