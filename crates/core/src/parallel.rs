//! Deterministic fork-join execution for the sharded dispatch engine.
//!
//! The engine's determinism contract is *bit-identical [`Measurements`]
//! for any thread or shard count, given the same scenario seed*. The only
//! way to keep that promise cheaply is to parallelize **pure computation**
//! (pair-edge validation, clique enumeration, best-group recomputation,
//! nearest-worker scans) and keep every state *commit* sequential in a
//! canonical order. [`Exec`] is the one fork-join primitive the workspace
//! uses for this: an order-preserving chunked `map` over
//! [`std::thread::scope`], with a strictly sequential fast path when one
//! thread is configured (or the input is too small to be worth forking).
//!
//! Chunks are contiguous index ranges and results are concatenated in
//! chunk order, so `exec.map(items, f)` returns exactly
//! `items.iter().map(f).collect()` — the thread count can never reorder,
//! drop or duplicate results. This is the same discipline kern's
//! `find_pool` uses for chunked branch expansion, without the `static mut`
//! slice juggling.
//!
//! [`Measurements`]: crate::Measurements

use serde::{Deserialize, Serialize};

/// Degree of parallelism of one dispatch engine instance.
///
/// The default (`threads = 1`, `shards = 1`) is the fully sequential
/// engine — existing callers and all historical results are unaffected
/// unless they opt in. `threads = 0` resolves to the host's available
/// parallelism at [`Exec`] construction time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchParallelism {
    /// Worker threads for pool insertion / clique search / recompute
    /// batches. `0` = use every available core.
    pub threads: usize,
    /// Grid-region shards the order pool is partitioned into (row bands of
    /// the grid index). Shards bound the granularity of per-shard proposal
    /// sweeps; outcomes are identical for every shard count.
    pub shards: usize,
}

impl Default for DispatchParallelism {
    fn default() -> Self {
        Self {
            threads: 1,
            shards: 1,
        }
    }
}

impl DispatchParallelism {
    /// Fully sequential engine (the default).
    pub const SEQUENTIAL: Self = Self {
        threads: 1,
        shards: 1,
    };

    /// [`DispatchParallelism::SEQUENTIAL`] as a function (serde default).
    pub fn sequential() -> Self {
        Self::SEQUENTIAL
    }

    /// The effective thread count (`0` resolved against the host).
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }
}

/// Below this many items a parallel map falls back to the sequential path:
/// forking threads costs more than the work itself.
const MIN_PARALLEL_ITEMS: usize = 2;

/// Order-preserving fork-join executor (see module docs).
#[derive(Clone, Debug)]
pub struct Exec {
    threads: usize,
}

impl Default for Exec {
    fn default() -> Self {
        Self::sequential()
    }
}

impl Exec {
    /// Executor over `threads` scoped threads (`0` = available cores).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: DispatchParallelism { threads, shards: 1 }
                .resolved_threads()
                .max(1),
        }
    }

    /// The strictly sequential executor.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// Executor configured by a [`DispatchParallelism`].
    pub fn from_parallelism(p: DispatchParallelism) -> Self {
        Self::new(p.threads)
    }

    /// Configured worker-thread count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether more than one thread is configured.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Map `f` over `items`, returning results in input order.
    ///
    /// Sequential when one thread is configured or the input is tiny;
    /// otherwise the index range is split into at most `threads` contiguous
    /// chunks, one scoped thread each, and per-chunk results are
    /// concatenated in chunk order. Identical to the sequential map for
    /// every thread count.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_indexed(items.len(), |i| f(&items[i]))
    }

    /// Map `f` over the index range `0..n`, returning results in index
    /// order. The primitive [`Exec::map`] and the shard/clique chunking in
    /// `watter-pool` are built on.
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n < MIN_PARALLEL_ITEMS {
            return (0..n).map(f).collect();
        }
        let chunk = n.div_ceil(self.threads);
        let mut out: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                let f = &f;
                handles.push(scope.spawn(move || (start..end).map(f).collect::<Vec<R>>()));
                start = end;
            }
            out = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        let p = DispatchParallelism::default();
        assert_eq!(p, DispatchParallelism::SEQUENTIAL);
        assert_eq!(p.resolved_threads(), 1);
        assert!(!Exec::from_parallelism(p).is_parallel());
    }

    #[test]
    fn zero_threads_resolves_to_host_cores() {
        let p = DispatchParallelism {
            threads: 0,
            shards: 1,
        };
        assert!(p.resolved_threads() >= 1);
        assert!(Exec::new(0).threads() >= 1);
    }

    #[test]
    fn map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let exec = Exec::new(threads);
            assert_eq!(exec.map(&items, |x| x * x + 1), expect, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let exec = Exec::new(4);
        assert_eq!(exec.map(&[] as &[u32], |x| *x), Vec::<u32>::new());
        assert_eq!(exec.map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn map_indexed_covers_uneven_chunks() {
        // n not divisible by threads: last chunk is short, nothing dropped.
        let exec = Exec::new(4);
        let got = exec.map_indexed(10, |i| i * 2);
        assert_eq!(got, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }
}
