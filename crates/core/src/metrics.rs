//! Evaluation measurements (Section VII-A, *Measurements*).
//!
//! All algorithms are compared on:
//!
//! * **Extra Time (s)** — Σ over served orders of `t_e`, plus penalties of
//!   rejected orders (the METRS objective Φ);
//! * **Unified Cost** — total worker travel cost plus `10 × cost(l_p, l_d)`
//!   penalty per rejected order, following \[9\];
//! * **Service Rate (%)** — `|O+| / |O|`;
//! * **Running Time (s)** — average algorithm (decision) time per order.

use crate::objective::Objective;
use crate::order::Order;
use crate::time::Dur;
use serde::{Deserialize, Serialize};

/// Penalty multiplier of the Unified Cost metric (Section VII-A sets the
/// rejected-order penalty to `10 × cost(l_p, l_d)` following \[9\]).
pub const UNIFIED_COST_PENALTY_FACTOR: f64 = 10.0;

/// Terminal outcome of one order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum OrderOutcome {
    /// Served in a group; carries the realized detour and response times.
    Served {
        /// Realized detour time `t_d`.
        detour: Dur,
        /// Realized response time `t_r`.
        response: Dur,
        /// Size of the group the order was served in.
        group_size: u32,
    },
    /// Rejected (timed out without a feasible group/worker).
    Rejected,
}

/// Accumulates the paper's four measurements over a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Measurements {
    /// METRS objective accumulator.
    pub objective: Objective,
    /// Number of orders released.
    pub total_orders: u64,
    /// Number of orders served (`|O+|`).
    pub served_orders: u64,
    /// Number of orders rejected (`|O−|`).
    pub rejected_orders: u64,
    /// Total riders served.
    pub served_riders: u64,
    /// Sum of realized detour seconds over served orders.
    pub total_detour: f64,
    /// Sum of realized response seconds over served orders.
    pub total_response: f64,
    /// Total worker travel seconds (approach drives + route legs).
    pub worker_travel: f64,
    /// Portion of `worker_travel` spent on approach drives to route starts.
    pub approach_travel: f64,
    /// Unified-cost penalty accumulated from rejected orders.
    pub unified_penalty: f64,
    /// Total decision-making wall-clock nanoseconds spent by the algorithm.
    pub decision_nanos: u128,
    /// Histogram of dispatched group sizes (index 0 ↔ size 1).
    pub group_size_hist: Vec<u64>,
}

impl Measurements {
    /// Record an order's terminal outcome.
    pub fn record(&mut self, order: &Order, outcome: &OrderOutcome, weights: crate::CostWeights) {
        self.total_orders += 1;
        match outcome {
            OrderOutcome::Served {
                detour,
                response,
                group_size,
            } => {
                self.served_orders += 1;
                self.served_riders += order.riders as u64;
                self.total_detour += *detour as f64;
                self.total_response += *response as f64;
                self.objective.serve(weights.extra_time(*detour, *response));
                let idx = (*group_size as usize).saturating_sub(1);
                if self.group_size_hist.len() <= idx {
                    self.group_size_hist.resize(idx + 1, 0);
                }
                self.group_size_hist[idx] += 1;
            }
            OrderOutcome::Rejected => {
                self.rejected_orders += 1;
                self.objective.reject(order.penalty());
                self.unified_penalty += UNIFIED_COST_PENALTY_FACTOR * order.direct_cost as f64;
            }
        }
    }

    /// Record worker driving time (route legs and approach drives).
    pub fn record_worker_travel(&mut self, seconds: Dur) {
        self.worker_travel += seconds as f64;
    }

    /// Record the approach portion of a dispatch's worker travel.
    pub fn record_approach(&mut self, seconds: Dur) {
        self.approach_travel += seconds as f64;
    }

    /// Worker travel on group routes only (excluding approach drives) —
    /// the quantity Example 1 compares.
    pub fn route_travel(&self) -> f64 {
        self.worker_travel - self.approach_travel
    }

    /// Record decision-making time spent handling one event.
    pub fn record_decision_time(&mut self, nanos: u128) {
        self.decision_nanos += nanos;
    }

    /// **Extra Time** measurement: the METRS objective Φ.
    pub fn extra_time(&self) -> f64 {
        self.objective.value()
    }

    /// **Unified Cost** measurement: worker cost + rejection penalties.
    pub fn unified_cost(&self) -> f64 {
        self.worker_travel + self.unified_penalty
    }

    /// **Service Rate** in `[0, 1]`.
    pub fn service_rate(&self) -> f64 {
        if self.total_orders == 0 {
            0.0
        } else {
            self.served_orders as f64 / self.total_orders as f64
        }
    }

    /// **Running Time**: average decision seconds per order.
    pub fn running_time_per_order(&self) -> f64 {
        if self.total_orders == 0 {
            0.0
        } else {
            (self.decision_nanos as f64 / 1e9) / self.total_orders as f64
        }
    }

    /// Mean extra time per *served* order (useful diagnostic).
    pub fn mean_served_extra(&self) -> f64 {
        if self.served_orders == 0 {
            0.0
        } else {
            self.objective.served_extra / self.served_orders as f64
        }
    }

    /// Copy with the wall-clock decision time zeroed. Decision time is the
    /// one field that legitimately varies run to run; every other field is
    /// a pure function of the scenario, so two runs of the same seed must
    /// be **equal** under this view (the determinism contract the
    /// snapshot/streaming equivalence tests enforce).
    pub fn without_timing(&self) -> Self {
        Self {
            decision_nanos: 0,
            ..self.clone()
        }
    }

    /// Mean dispatched group size over served orders.
    pub fn mean_group_size(&self) -> f64 {
        let total: u64 = self.group_size_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .group_size_hist
            .iter()
            .enumerate()
            .map(|(i, c)| (i as u64 + 1) * c)
            .sum();
        weighted as f64 / total as f64
    }
}

/// A finished run: the four headline measurements in report-ready form.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Extra Time (s): the METRS objective Φ.
    pub extra_time: f64,
    /// Unified Cost.
    pub unified_cost: f64,
    /// Service rate in percent.
    pub service_rate_pct: f64,
    /// Average decision seconds per order.
    pub running_time: f64,
    /// Mean dispatched group size.
    pub mean_group_size: f64,
}

impl From<&Measurements> for RunStats {
    fn from(m: &Measurements) -> Self {
        Self {
            extra_time: m.extra_time(),
            unified_cost: m.unified_cost(),
            service_rate_pct: 100.0 * m.service_rate(),
            running_time: m.running_time_per_order(),
            mean_group_size: m.mean_group_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, OrderId};
    use crate::CostWeights;

    fn order(direct: Dur, deadline: Dur) -> Order {
        Order {
            id: OrderId(0),
            pickup: NodeId(0),
            dropoff: NodeId(1),
            riders: 2,
            release: 0,
            deadline,
            wait_limit: 10,
            direct_cost: direct,
        }
    }

    #[test]
    fn served_order_contributes_extra_time() {
        let mut m = Measurements::default();
        m.record(
            &order(100, 200),
            &OrderOutcome::Served {
                detour: 30,
                response: 12,
                group_size: 2,
            },
            CostWeights::default(),
        );
        assert_eq!(m.extra_time(), 42.0);
        assert_eq!(m.service_rate(), 1.0);
        assert_eq!(m.served_riders, 2);
        assert_eq!(m.group_size_hist, vec![0, 1]);
    }

    #[test]
    fn rejected_order_contributes_penalties() {
        let mut m = Measurements::default();
        let o = order(100, 250); // penalty = 250 − 0 − 100 = 150
        m.record(&o, &OrderOutcome::Rejected, CostWeights::default());
        assert_eq!(m.extra_time(), 150.0);
        assert_eq!(m.unified_cost(), 1000.0); // 10 × direct
        assert_eq!(m.service_rate(), 0.0);
    }

    #[test]
    fn unified_cost_adds_worker_travel() {
        let mut m = Measurements::default();
        m.record_worker_travel(500);
        assert_eq!(m.unified_cost(), 500.0);
    }

    #[test]
    fn running_time_averages_over_orders() {
        let mut m = Measurements::default();
        m.record(
            &order(100, 200),
            &OrderOutcome::Rejected,
            CostWeights::default(),
        );
        m.record(
            &order(100, 200),
            &OrderOutcome::Rejected,
            CostWeights::default(),
        );
        m.record_decision_time(4_000_000_000); // 4 s over 2 orders
        assert_eq!(m.running_time_per_order(), 2.0);
    }

    #[test]
    fn mean_group_size_weighted() {
        let mut m = Measurements::default();
        for gs in [1, 1, 3] {
            m.record(
                &order(100, 200),
                &OrderOutcome::Served {
                    detour: 0,
                    response: 0,
                    group_size: gs,
                },
                CostWeights::default(),
            );
        }
        assert!((m.mean_group_size() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn run_stats_snapshot() {
        let mut m = Measurements::default();
        m.record(
            &order(100, 200),
            &OrderOutcome::Served {
                detour: 10,
                response: 5,
                group_size: 1,
            },
            CostWeights::default(),
        );
        let s = RunStats::from(&m);
        assert_eq!(s.extra_time, 15.0);
        assert_eq!(s.service_rate_pct, 100.0);
    }
}
