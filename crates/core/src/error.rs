//! Error type shared across the workspace.

use std::fmt;

/// Errors surfaced by the core model and its consumers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A route failed constraint validation.
    InfeasibleRoute(String),
    /// Referenced an order unknown to the component.
    UnknownOrder(crate::OrderId),
    /// Referenced a worker unknown to the component.
    UnknownWorker(crate::WorkerId),
    /// A configuration parameter was out of range.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InfeasibleRoute(msg) => write!(f, "infeasible route: {msg}"),
            CoreError::UnknownOrder(id) => write!(f, "unknown order {id}"),
            CoreError::UnknownWorker(id) => write!(f, "unknown worker {id}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = CoreError::UnknownOrder(crate::OrderId(3));
        assert_eq!(e.to_string(), "unknown order o3");
        let e = CoreError::InvalidConfig("grid_dim = 0".into());
        assert!(e.to_string().contains("grid_dim"));
    }
}
