//! Deterministic fault injection and robustness accounting.
//!
//! A long-running dispatch daemon has failure modes the batch simulator
//! never sees: the process dies mid-run, a checkpoint write is torn by
//! the crash, a disk write fails transiently, the order feed delivers
//! malformed or late lines. [`FaultPlan`] describes such a failure
//! schedule **deterministically** — every decision is a pure function of
//! `(seed, event index)`, the same stateless-hash idiom the cancellation
//! model uses — so a chaos run is reproducible bit for bit and the
//! recovery contract (`kill → restore → replay == uninterrupted run`)
//! stays a *testable* property (`tests/chaos.rs`).
//!
//! Faults split into two kinds:
//!
//! * **input faults** (malformed lines, delayed arrivals) corrupt the
//!   order feed itself. They are baked into the line stream *before* the
//!   daemon sees it, so the reference run and the crashed run consume the
//!   exact same bytes;
//! * **process faults** (crash after event *k*, torn/bit-flipped
//!   checkpoint at crash time, transient snapshot-IO errors) hit the
//!   daemon. They must not change the final statistics — that is the
//!   chaos property.
//!
//! [`RobustnessReport`] counts the *order-level* consequences of the
//! daemon's backpressure policy (shed, degraded, blocked orders). It is
//! part of the checkpointed daemon state, so the counters survive a crash
//! and reconcile against the ingest totals after recovery.

use serde::{Deserialize, Serialize};

/// How a checkpoint file gets damaged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptKind {
    /// The tail of the file is missing (a torn write: the crash landed
    /// mid-`write`, or the filesystem dropped the tail on power loss).
    Torn,
    /// One payload bit is flipped (silent media corruption).
    BitFlip,
}

/// A deterministic, seeded failure schedule for one daemon run.
///
/// All-`None`/zero ([`FaultPlan::NONE`]) injects nothing. Every decision
/// method is a pure function of the plan and the event index, so two runs
/// with the same plan see identical faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-event fault draws.
    pub seed: u64,
    /// Kill the process after consuming exactly this many input lines
    /// (no final checkpoint, no drain — the simulated power cut).
    pub crash_after_events: Option<u64>,
    /// Damage the newest checkpoint at crash time (the torn-write that a
    /// real crash inflicts on the file being written). Recovery must fall
    /// back to the previous valid generation.
    pub corrupt_on_crash: Option<CorruptKind>,
    /// Fail this many checkpoint write attempts with an injected IO error
    /// before letting writes succeed (exercises the retry/backoff path).
    pub io_failures: u32,
    /// Replace roughly one in `k` order lines with malformed JSON
    /// (truncated mid-token). Which lines is decided by a seeded hash.
    pub malformed_every: Option<u64>,
    /// Delay roughly one in `k` order lines by [`FaultPlan::delay_slots`]
    /// positions in the feed (late delivery / reordering).
    pub delay_every: Option<u64>,
    /// How many feed positions a delayed line slips by.
    pub delay_slots: u64,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub const NONE: Self = Self {
        seed: 0,
        crash_after_events: None,
        corrupt_on_crash: None,
        io_failures: 0,
        malformed_every: None,
        delay_every: None,
        delay_slots: 0,
    };

    /// A plan that injects nothing into the input feed but crashes after
    /// `k` consumed lines (optionally tearing the newest checkpoint).
    pub fn crash_at(k: u64, corrupt: Option<CorruptKind>) -> Self {
        Self {
            crash_after_events: Some(k),
            corrupt_on_crash: corrupt,
            ..Self::NONE
        }
    }

    /// The plan with all process faults removed: the *same input stream*
    /// without the crash/corruption/IO schedule. This is what the chaos
    /// reference run uses, so recovered and uninterrupted runs consume
    /// identical bytes.
    pub fn input_only(&self) -> Self {
        Self {
            crash_after_events: None,
            corrupt_on_crash: None,
            io_failures: 0,
            ..*self
        }
    }

    /// Whether any input fault (malformed / delayed lines) is configured.
    pub fn has_input_faults(&self) -> bool {
        self.malformed_every.is_some() || self.delay_every.is_some()
    }

    /// Should input line `i` (0-based) be replaced with malformed JSON?
    pub fn is_malformed(&self, i: u64) -> bool {
        match self.malformed_every {
            Some(k) if k > 0 => fault_hash(self.seed, i, 0x4D41_4C46).is_multiple_of(k),
            _ => false,
        }
    }

    /// How many feed positions input line `i` slips by (0 = on time).
    pub fn delay_of(&self, i: u64) -> u64 {
        match self.delay_every {
            Some(k) if k > 0 && fault_hash(self.seed, i, 0x4445_4C41).is_multiple_of(k) => {
                self.delay_slots.max(1)
            }
            _ => 0,
        }
    }

    /// Does the process crash after `consumed` input lines?
    pub fn crashes_at(&self, consumed: u64) -> bool {
        self.crash_after_events == Some(consumed)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::NONE
    }
}

/// Stateless fault draw: splitmix64 finalizer over `(seed, index, tag)`,
/// the same construction the cancellation model uses for its
/// deterministic per-order draws.
fn fault_hash(seed: u64, index: u64, tag: u64) -> u64 {
    let mut x =
        seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Order-level robustness counters of a daemon run.
///
/// Everything here is a deterministic function of the input stream and
/// the backpressure configuration — the counters ride along in the daemon
/// checkpoint and must therefore reconcile after crash recovery exactly
/// as in the uninterrupted run. Checkpoint *operation* statistics
/// (writes, retries, discarded generations) are deliberately **not** here:
/// those legitimately differ between a crashed and an uninterrupted run
/// and live with the checkpoint store instead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Valid orders dropped by the `Shed` backpressure policy. Reconciles
    /// as `ingest.admitted == orders fed to the core + shed`.
    pub shed: u64,
    /// Valid orders served through the degraded (solo, non-pooling)
    /// dispatch path while the `Degrade` policy was engaged.
    pub degraded: u64,
    /// Valid orders whose release was re-stamped to the drained clock by
    /// the `Block` policy (the client-visible admission delay; the order
    /// keeps its absolute deadline, so blocking eats its slack).
    pub blocked: u64,
}

impl RobustnessReport {
    /// Total orders that saw any backpressure action.
    pub fn affected(&self) -> u64 {
        self.shed + self.degraded + self.blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_injects_nothing() {
        let p = FaultPlan::NONE;
        for i in 0..1_000 {
            assert!(!p.is_malformed(i));
            assert_eq!(p.delay_of(i), 0);
            assert!(!p.crashes_at(i));
        }
    }

    #[test]
    fn fault_draws_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan {
            seed: 7,
            malformed_every: Some(5),
            delay_every: Some(7),
            delay_slots: 3,
            ..FaultPlan::NONE
        };
        let b = FaultPlan { seed: 8, ..a };
        let draws = |p: &FaultPlan| {
            (0..200)
                .map(|i| (p.is_malformed(i), p.delay_of(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(&a), draws(&a), "same plan must draw identically");
        assert_ne!(draws(&a), draws(&b), "different seeds must differ");
        let malformed = (0..200).filter(|&i| a.is_malformed(i)).count();
        assert!(
            (10..=90).contains(&malformed),
            "1-in-5 rate should land near 40/200, got {malformed}"
        );
    }

    #[test]
    fn input_only_strips_process_faults() {
        let full = FaultPlan {
            seed: 3,
            crash_after_events: Some(10),
            corrupt_on_crash: Some(CorruptKind::Torn),
            io_failures: 2,
            malformed_every: Some(9),
            delay_every: Some(4),
            delay_slots: 2,
        };
        let input = full.input_only();
        assert_eq!(input.crash_after_events, None);
        assert_eq!(input.corrupt_on_crash, None);
        assert_eq!(input.io_failures, 0);
        // Input-side draws are untouched.
        for i in 0..100 {
            assert_eq!(input.is_malformed(i), full.is_malformed(i));
            assert_eq!(input.delay_of(i), full.delay_of(i));
        }
    }

    #[test]
    fn robustness_report_round_trips_and_sums() {
        let r = RobustnessReport {
            shed: 3,
            degraded: 5,
            blocked: 2,
        };
        assert_eq!(r.affected(), 10);
        let text = serde_json::to_string(&r).expect("serialize");
        let back: RobustnessReport = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, r);
    }
}
