//! Travel-cost oracle selection.
//!
//! The framework answers every `cost(a, b)` query through the
//! [`TravelCost`](crate::TravelCost) trait, so the *backend* is a deployment
//! choice: a dense all-pairs table is unbeatable for the paper's 10³–10⁴
//! node cities but needs `n² × 4` bytes, landmark-guided A* (ALT) answers
//! exact point queries from `O(k·n)` memory, and a contraction hierarchy
//! (CH) answers them in microseconds after a one-off preprocessing pass —
//! the right default for 10⁵–10⁶-node cities. [`OracleKind`] is the
//! configuration vocabulary shared by workload generation, the simulator
//! and the CLI; the concrete oracles live in `watter-road`.

use serde::{Deserialize, Serialize};

/// Which travel-time oracle to build for a road graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleKind {
    /// Pick by node count: the dense table up to the dense-node limit
    /// ([`DENSE_NODE_LIMIT`] unless overridden), the contraction hierarchy
    /// beyond — both answer exact costs, so the choice is purely a
    /// memory/latency trade-off.
    #[default]
    Auto,
    /// Dense all-pairs table: O(1) queries, `n² × 4` bytes, `n` Dijkstra
    /// sweeps to build (parallelized across cores).
    Dense,
    /// Landmark-guided A* (ALT): exact point queries in milliseconds from
    /// `O(landmarks × n)` memory; build cost is `landmarks` Dijkstra
    /// sweeps.
    Alt {
        /// Number of farthest-point-sampled landmarks (8–32 is typical;
        /// more landmarks tighten the heuristic but cost memory and build
        /// time).
        landmarks: usize,
    },
    /// Contraction hierarchy: exact point queries in microseconds via
    /// bidirectional upward search over a preprocessed shortcut graph.
    /// Preprocessing is a one-off node-ordering + shortcut-insertion pass;
    /// memory stays `O(E + shortcuts)`.
    Ch,
}

/// Largest node count for which [`OracleKind::Auto`] still picks the dense
/// table (`8192² × 4 B = 256 MiB`, the upper end of comfortable). The CLI
/// can override the threshold per run (`--dense-limit`, forwarded through
/// [`OracleKind::resolve_with_limit`]).
pub const DENSE_NODE_LIMIT: usize = 8_192;

/// Landmark count used when ALT is requested without an explicit count.
pub const DEFAULT_LANDMARKS: usize = 16;

impl OracleKind {
    /// Resolve `Auto` against a concrete node count, returning a concrete
    /// backend. Uses the built-in [`DENSE_NODE_LIMIT`].
    pub fn resolve(self, node_count: usize) -> OracleKind {
        self.resolve_with_limit(node_count, DENSE_NODE_LIMIT)
    }

    /// Resolve `Auto` against a concrete node count with an explicit
    /// dense-table threshold: `Dense` up to `dense_limit` nodes, the
    /// contraction hierarchy beyond. Concrete kinds resolve to themselves
    /// regardless of the limit.
    pub fn resolve_with_limit(self, node_count: usize, dense_limit: usize) -> OracleKind {
        match self {
            OracleKind::Auto => {
                if node_count <= dense_limit {
                    OracleKind::Dense
                } else {
                    OracleKind::Ch
                }
            }
            concrete => concrete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_by_node_count() {
        assert_eq!(OracleKind::Auto.resolve(100), OracleKind::Dense);
        assert_eq!(
            OracleKind::Auto.resolve(DENSE_NODE_LIMIT),
            OracleKind::Dense
        );
        assert_eq!(
            OracleKind::Auto.resolve(DENSE_NODE_LIMIT + 1),
            OracleKind::Ch
        );
    }

    #[test]
    fn explicit_limit_moves_the_boundary() {
        // Exactly at the limit: still dense. One past: CH.
        assert_eq!(
            OracleKind::Auto.resolve_with_limit(64, 64),
            OracleKind::Dense
        );
        assert_eq!(OracleKind::Auto.resolve_with_limit(65, 64), OracleKind::Ch);
        // Limit 0 disables the dense table for any non-empty graph.
        assert_eq!(OracleKind::Auto.resolve_with_limit(1, 0), OracleKind::Ch);
        assert_eq!(OracleKind::Auto.resolve_with_limit(0, 0), OracleKind::Dense);
        // A huge limit forces dense even at metropolis scale.
        assert_eq!(
            OracleKind::Auto.resolve_with_limit(1_000_000, usize::MAX),
            OracleKind::Dense
        );
    }

    #[test]
    fn concrete_kinds_resolve_to_themselves() {
        assert_eq!(OracleKind::Dense.resolve(1_000_000), OracleKind::Dense);
        let alt = OracleKind::Alt { landmarks: 4 };
        assert_eq!(alt.resolve(10), alt);
        assert_eq!(OracleKind::Ch.resolve(10), OracleKind::Ch);
        // The limit is irrelevant for concrete kinds.
        assert_eq!(
            OracleKind::Ch.resolve_with_limit(10, usize::MAX),
            OracleKind::Ch
        );
        assert_eq!(
            OracleKind::Dense.resolve_with_limit(1_000_000, 0),
            OracleKind::Dense
        );
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(OracleKind::default(), OracleKind::Auto);
    }

    #[test]
    fn serde_round_trip() {
        for kind in [
            OracleKind::Auto,
            OracleKind::Dense,
            OracleKind::Alt { landmarks: 12 },
            OracleKind::Ch,
        ] {
            let json = serde_json::to_string(&kind).expect("serialize");
            let back: OracleKind = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, kind);
        }
    }
}
