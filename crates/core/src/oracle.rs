//! Travel-cost oracle selection.
//!
//! The framework answers every `cost(a, b)` query through the
//! [`TravelCost`](crate::TravelCost) trait, so the *backend* is a deployment
//! choice: a dense all-pairs table is unbeatable for the paper's 10³–10⁴
//! node cities but needs `n² × 4` bytes, while landmark-guided A* (ALT)
//! answers exact point queries from `O(k·n)` memory and scales to 10⁵-node
//! cities where the table cannot exist. [`OracleKind`] is the configuration
//! vocabulary shared by workload generation, the simulator and the CLI; the
//! concrete oracles live in `watter-road`.

use serde::{Deserialize, Serialize};

/// Which travel-time oracle to build for a road graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleKind {
    /// Pick by node count: the dense table up to
    /// [`DENSE_NODE_LIMIT`] nodes, the ALT oracle with
    /// [`DEFAULT_LANDMARKS`] landmarks beyond.
    #[default]
    Auto,
    /// Dense all-pairs table: O(1) queries, `n² × 4` bytes, `n` Dijkstra
    /// sweeps to build (parallelized across cores).
    Dense,
    /// Landmark-guided A* (ALT): exact point queries in milliseconds from
    /// `O(landmarks × n)` memory; build cost is `landmarks` Dijkstra
    /// sweeps.
    Alt {
        /// Number of farthest-point-sampled landmarks (8–32 is typical;
        /// more landmarks tighten the heuristic but cost memory and build
        /// time).
        landmarks: usize,
    },
}

/// Largest node count for which [`OracleKind::Auto`] still picks the dense
/// table (`8192² × 4 B = 256 MiB`, the upper end of comfortable).
pub const DENSE_NODE_LIMIT: usize = 8_192;

/// Landmark count [`OracleKind::Auto`] uses when it falls back to ALT.
pub const DEFAULT_LANDMARKS: usize = 16;

impl OracleKind {
    /// Resolve `Auto` against a concrete node count, returning either
    /// `Dense` or `Alt`.
    pub fn resolve(self, node_count: usize) -> OracleKind {
        match self {
            OracleKind::Auto => {
                if node_count <= DENSE_NODE_LIMIT {
                    OracleKind::Dense
                } else {
                    OracleKind::Alt {
                        landmarks: DEFAULT_LANDMARKS,
                    }
                }
            }
            concrete => concrete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_by_node_count() {
        assert_eq!(OracleKind::Auto.resolve(100), OracleKind::Dense);
        assert_eq!(
            OracleKind::Auto.resolve(DENSE_NODE_LIMIT),
            OracleKind::Dense
        );
        assert_eq!(
            OracleKind::Auto.resolve(DENSE_NODE_LIMIT + 1),
            OracleKind::Alt {
                landmarks: DEFAULT_LANDMARKS
            }
        );
    }

    #[test]
    fn concrete_kinds_resolve_to_themselves() {
        assert_eq!(OracleKind::Dense.resolve(1_000_000), OracleKind::Dense);
        let alt = OracleKind::Alt { landmarks: 4 };
        assert_eq!(alt.resolve(10), alt);
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(OracleKind::default(), OracleKind::Auto);
    }

    #[test]
    fn serde_round_trip() {
        for kind in [
            OracleKind::Auto,
            OracleKind::Dense,
            OracleKind::Alt { landmarks: 12 },
        ] {
            let json = serde_json::to_string(&kind).expect("serialize");
            let back: OracleKind = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, kind);
        }
    }
}
