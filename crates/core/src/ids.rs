//! Strongly-typed identifiers.
//!
//! Orders, workers and road-network nodes all use `u32` indices internally
//! (dense, cache-friendly), but the newtypes prevent accidentally indexing a
//! worker table with an order id.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a dense `usize` index.
            ///
            /// # Panics
            /// Panics if the index does not fit in `u32`.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(u32::try_from(i).expect("id index overflows u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifier of an order `o(i)` (paper Definition 1).
    OrderId,
    "o"
);
id_type!(
    /// Identifier of a worker `w(j)` (paper Definition 2).
    WorkerId,
    "w"
);
id_type!(
    /// Identifier of a node (location) on the road network.
    NodeId,
    "v"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = OrderId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, OrderId(42));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(OrderId(3).to_string(), "o3");
        assert_eq!(WorkerId(4).to_string(), "w4");
        assert_eq!(NodeId(5).to_string(), "v5");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(OrderId(1) < OrderId(2));
    }
}
