//! Order groups.
//!
//! A group `g = {o(1), …, o(|g|)}` is a set of orders served together on one
//! route by one worker. [`Group`] carries the orders, the planned route and
//! the per-order detours, and can evaluate the quantities Algorithm 2 needs:
//! the group's **average extra time** and its **expiry** `τ_g` (Equation 3).

use crate::ids::OrderId;
use crate::objective::CostWeights;
use crate::order::Order;
use crate::route::Route;
use crate::time::{Dur, Ts};
use crate::TravelCost;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A shareable order group with its planned minimal-cost feasible route.
///
/// Orders are held as shared [`Arc`] handles: group enumeration builds many
/// candidate groups per pooled order, and cloning a group (or offering it to
/// each member) must bump reference counts rather than deep-copy every
/// `Order`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// Orders in the group, in pick-up order of the route.
    pub orders: Vec<Arc<Order>>,
    /// The minimal-cost feasible route found by the planner.
    pub route: Route,
    /// Detour time `t_d^(i)` of each order, aligned with `orders`.
    pub detours: Vec<Dur>,
}

/// The decision-relevant quality numbers of a group at a point in time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupQuality {
    /// Mean extra time `t̄_e` over the group's orders (Algorithm 2 line 4).
    pub mean_extra_time: f64,
    /// Earliest watching-window timeout among the group's orders
    /// (Algorithm 2 line 1).
    pub earliest_timeout: Ts,
    /// Group expiry `τ_g`: the latest dispatch instant that still satisfies
    /// every deadline (Equation 3 rearranged to an absolute timestamp).
    pub expires_at: Ts,
}

impl Group {
    /// Build a group, computing detours from the route.
    ///
    /// Accepts owned `Order`s (wrapped into fresh [`Arc`]s) or existing
    /// `Arc<Order>` handles (shared, no deep copy).
    ///
    /// # Panics
    /// Panics (in debug builds) if some order's drop-off is missing from the
    /// route — planners must only emit complete routes.
    pub fn new<O: Into<Arc<Order>>>(
        orders: Vec<O>,
        route: Route,
        oracle: &impl TravelCost,
    ) -> Self {
        let orders: Vec<Arc<Order>> = orders.into_iter().map(Into::into).collect();
        let detours = orders
            .iter()
            .map(|o| {
                route
                    .detour(o.id, o.direct_cost, oracle)
                    .expect("route must visit every group order")
            })
            .collect();
        Self {
            orders,
            route,
            detours,
        }
    }

    /// Singleton group serving `order` alone on its direct
    /// pick-up → drop-off route.
    ///
    /// Uses the order's cached [`Order::direct_cost`] for the route cost
    /// and a zero detour, so the dispatcher's solo "last call" path issues
    /// **no oracle queries** (the oracle only backs a debug-build
    /// consistency check inside [`Route::with_cost`]).
    pub fn solo(order: impl Into<Arc<Order>>, oracle: &impl TravelCost) -> Self {
        let order: Arc<Order> = order.into();
        let route = Route::with_cost(
            vec![
                crate::route::Stop::pickup(order.pickup, order.id),
                crate::route::Stop::dropoff(order.dropoff, order.id),
            ],
            order.direct_cost,
            oracle,
        );
        Self {
            orders: vec![order],
            route,
            detours: vec![0],
        }
    }

    /// Number of orders `|g|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.orders.len()
    }

    /// Whether the group is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.orders.is_empty()
    }

    /// Ids of the member orders.
    pub fn order_ids(&self) -> impl Iterator<Item = OrderId> + '_ {
        self.orders.iter().map(|o| o.id)
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: OrderId) -> bool {
        self.orders.iter().any(|o| o.id == id)
    }

    /// Total riders in the group.
    pub fn total_riders(&self) -> u32 {
        self.orders.iter().map(|o| o.riders).sum()
    }

    /// Extra time `t_e^(i) = α·t_d + β·t_r` of member `i` if the group is
    /// dispatched at `now` (Definition 6).
    pub fn extra_time_of(&self, idx: usize, now: Ts, w: CostWeights) -> f64 {
        let o = &self.orders[idx];
        w.extra_time(self.detours[idx], o.response_at(now))
    }

    /// Mean extra time `t̄_e` over members if dispatched at `now`.
    pub fn mean_extra_time(&self, now: Ts, w: CostWeights) -> f64 {
        if self.orders.is_empty() {
            return 0.0;
        }
        let sum: f64 = (0..self.orders.len())
            .map(|i| self.extra_time_of(i, now, w))
            .sum();
        sum / self.orders.len() as f64
    }

    /// Latest dispatch timestamp such that every member still meets its
    /// deadline. Dispatching at `expires_at` is the last feasible instant
    /// (the constraint is strict, so feasibility holds while
    /// `now < expires_at` … `now ≤ expires_at − 1`; we return the inclusive
    /// last feasible instant).
    pub fn expires_at(&self, oracle: &impl TravelCost) -> Ts {
        self.orders
            .iter()
            .map(|o| {
                let sub = self
                    .route
                    .subroute_cost(o.id, oracle)
                    .expect("route must visit every group order");
                // now + sub < τ  ⇔  now ≤ τ − sub − 1
                o.deadline - sub - 1
            })
            .min()
            .unwrap_or(Ts::MAX)
    }

    /// Earliest watching-window timeout among members (Algorithm 2 line 1).
    pub fn earliest_timeout(&self) -> Ts {
        self.orders
            .iter()
            .map(|o| o.timeout_at())
            .min()
            .unwrap_or(Ts::MAX)
    }

    /// Evaluate the group's decision-relevant quality at `now`.
    pub fn quality(&self, now: Ts, w: CostWeights, oracle: &impl TravelCost) -> GroupQuality {
        GroupQuality {
            mean_extra_time: self.mean_extra_time(now, w),
            earliest_timeout: self.earliest_timeout(),
            expires_at: self.expires_at(oracle),
        }
    }

    /// Whether the group can still be feasibly dispatched at `now`.
    pub fn is_live(&self, now: Ts, oracle: &impl TravelCost) -> bool {
        now <= self.expires_at(oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::route::Stop;

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }

    fn order(id: u32, p: u32, d: u32, release: Ts, deadline: Ts) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline,
            wait_limit: 100,
            direct_cost: Line.cost(NodeId(p), NodeId(d)),
        }
    }

    fn group() -> Group {
        let o0 = order(0, 0, 3, 0, 1_000);
        let o1 = order(1, 1, 2, 20, 500);
        let route = Route::new(
            vec![
                Stop::pickup(NodeId(0), OrderId(0)),
                Stop::pickup(NodeId(1), OrderId(1)),
                Stop::dropoff(NodeId(2), OrderId(1)),
                Stop::dropoff(NodeId(3), OrderId(0)),
            ],
            &Line,
        );
        Group::new(vec![o0, o1], route, &Line)
    }

    #[test]
    fn detours_computed() {
        let g = group();
        assert_eq!(g.detours, vec![0, 10]);
    }

    #[test]
    fn mean_extra_time_at_dispatch() {
        let g = group();
        let w = CostWeights::default();
        // at now=20: o0 tr=20 td=0 -> 20 ; o1 tr=0 td=10 -> 10 ; mean 15
        assert!((g.mean_extra_time(20, w) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn expiry_is_min_over_members() {
        let g = group();
        // o0: 1000 - 30 - 1 = 969 ; o1: 500 - 20 - 1 = 479
        assert_eq!(g.expires_at(&Line), 479);
        assert!(g.is_live(479, &Line));
        assert!(!g.is_live(480, &Line));
    }

    #[test]
    fn earliest_timeout_is_min() {
        let g = group();
        assert_eq!(g.earliest_timeout(), 100); // o0 releases at 0 + 100
    }

    #[test]
    fn quality_bundles_fields() {
        let g = group();
        let q = g.quality(20, CostWeights::default(), &Line);
        assert_eq!(q.earliest_timeout, 100);
        assert_eq!(q.expires_at, 479);
        assert!((q.mean_extra_time - 15.0).abs() < 1e-9);
    }

    #[test]
    fn total_riders_sums() {
        assert_eq!(group().total_riders(), 2);
    }

    #[test]
    fn solo_group_matches_oracle_built_group() {
        let o = order(0, 0, 3, 0, 1_000);
        let solo = Group::solo(o.clone(), &Line);
        assert_eq!(solo.len(), 1);
        assert_eq!(solo.route.cost(), 30);
        assert_eq!(solo.detours, vec![0]);
        let route = Route::new(
            vec![
                Stop::pickup(NodeId(0), OrderId(0)),
                Stop::dropoff(NodeId(3), OrderId(0)),
            ],
            &Line,
        );
        assert_eq!(solo, Group::new(vec![o], route, &Line));
    }
}
