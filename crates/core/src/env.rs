//! Spatio-temporal environment snapshot (Section VI-A, *State*).
//!
//! The MDP state of an order-agent combines its **basic features** (pick-up /
//! drop-off grid cells, release and waited time slots) with **environmental
//! features**: the current demand distribution (pick-up and drop-off cells of
//! pooled orders, `s_O`) and the supply distribution of idle workers per
//! cell (`s_W`). The simulator publishes an [`EnvSnapshot`] at every check
//! so that learned threshold providers can featurize without reaching into
//! simulator internals.

use serde::{Deserialize, Serialize};

/// Demand/supply counts over the `g × g` grid index at one instant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnvSnapshot {
    /// Grid dimension `g` (the paper uses a 10 × 10 index by default).
    pub grid_dim: usize,
    /// Per-cell count of pick-up locations of orders currently pooled.
    pub demand_pickup: Vec<u32>,
    /// Per-cell count of drop-off locations of orders currently pooled.
    pub demand_dropoff: Vec<u32>,
    /// Per-cell count of currently idle workers.
    pub supply: Vec<u32>,
}

impl EnvSnapshot {
    /// An all-zero snapshot for a `g × g` grid.
    pub fn empty(grid_dim: usize) -> Self {
        let cells = grid_dim * grid_dim;
        Self {
            grid_dim,
            demand_pickup: vec![0; cells],
            demand_dropoff: vec![0; cells],
            supply: vec![0; cells],
        }
    }

    /// Number of grid cells.
    #[inline]
    pub fn cells(&self) -> usize {
        self.grid_dim * self.grid_dim
    }

    /// Total pooled demand (orders waiting).
    pub fn total_demand(&self) -> u32 {
        self.demand_pickup.iter().sum()
    }

    /// Total idle supply (workers free).
    pub fn total_supply(&self) -> u32 {
        self.supply.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = EnvSnapshot::empty(10);
        assert_eq!(s.cells(), 100);
        assert_eq!(s.demand_pickup.len(), 100);
        assert_eq!(s.total_demand(), 0);
        assert_eq!(s.total_supply(), 0);
    }

    #[test]
    fn totals_sum_cells() {
        let mut s = EnvSnapshot::empty(2);
        s.demand_pickup = vec![1, 2, 3, 4];
        s.supply = vec![0, 5, 0, 0];
        assert_eq!(s.total_demand(), 10);
        assert_eq!(s.total_supply(), 5);
    }
}
