//! Workers (paper Definition 2).
//!
//! `w(j) = ⟨l, k, a⟩`: current location, vehicle capacity and availability.
//! The static part (identity, capacity, initial location) lives here; the
//! mutable runtime state (current location, busy-until) is owned by the
//! simulator's fleet module.

use crate::ids::{NodeId, WorkerId};
use serde::{Deserialize, Serialize};

/// A driver/vehicle. Per the paper's assumption, a worker delivers **one
/// order group at a time** and becomes idle at the group's final drop-off.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Worker {
    /// Worker identifier.
    pub id: WorkerId,
    /// Initial location at the start of the day.
    pub home: NodeId,
    /// Vehicle capacity `k^(j)`: maximum riders on board at any instant.
    pub capacity: u32,
}

impl Worker {
    /// Convenience constructor.
    pub fn new(id: WorkerId, home: NodeId, capacity: u32) -> Self {
        debug_assert!(capacity >= 1, "a vehicle must seat at least one rider");
        Self { id, home, capacity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_stores_fields() {
        let w = Worker::new(WorkerId(7), NodeId(3), 4);
        assert_eq!(w.id, WorkerId(7));
        assert_eq!(w.home, NodeId(3));
        assert_eq!(w.capacity, 4);
    }
}
