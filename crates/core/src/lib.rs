//! # watter-core
//!
//! Problem model for the **Minimal Extra Time RideSharing (METRS)** problem
//! from *"Wait to be Faster: A Smart Pooling Framework for Dynamic
//! Ridesharing"* (ICDE 2024).
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Order`], [`Worker`] — the two actor types (paper Definitions 1–2),
//! * [`Route`] and [`Stop`] — ordered location sequences (Definition 3),
//! * [`Group`] — a set of orders served together by one worker,
//! * [`constraints`] — the three shareability constraints of Definition 7
//!   (sequential, deadline, capacity),
//! * [`objective`] — extra time (Definition 6) and the METRS objective Φ
//!   (Equation 2),
//! * [`metrics`] — the four evaluation measurements of Section VII
//!   (Extra Time, Unified Cost, Service Rate, Running Time),
//! * [`EnvSnapshot`] — the spatio-temporal demand/supply state consumed by
//!   the learning components (Section VI-A).
//!
//! The crate is dependency-light by design: it knows nothing about road
//! networks (see `watter-road`) beyond the opaque [`NodeId`] location handle
//! and the [`TravelCost`] oracle trait.

pub mod constraints;
pub mod env;
pub mod error;
pub mod fault;
pub mod group;
pub mod ids;
pub mod kpi;
pub mod metrics;
pub mod objective;
pub mod oracle;
pub mod order;
pub mod parallel;
pub mod route;
pub mod time;
pub mod worker;

pub use constraints::{CapacityCheck, ConstraintViolation};
pub use env::EnvSnapshot;
pub use error::CoreError;
pub use fault::{CorruptKind, FaultPlan, RobustnessReport};
pub use group::{Group, GroupQuality};
pub use ids::{NodeId, OrderId, WorkerId};
pub use kpi::{Dist, KpiReport, Kpis, OracleCacheKpis};
pub use metrics::{Measurements, OrderOutcome, RunStats};
pub use objective::{extra_time, CostWeights};
pub use oracle::{OracleKind, DEFAULT_LANDMARKS, DENSE_NODE_LIMIT};
pub use order::Order;
pub use parallel::{DispatchParallelism, Exec};
pub use route::{Route, Stop, StopKind};
pub use time::{Dur, Ts};
pub use worker::Worker;

/// Oracle for shortest-travel-time queries between two road-network nodes.
///
/// The paper writes `cost(l_i, l_j)` for the shortest travel time between two
/// locations (Table II). Everything in the framework is expressed against
/// this trait so that the pooling and dispatch logic is independent of how
/// the road substrate answers the query (exact all-pairs table, on-demand
/// Dijkstra, ...).
///
/// `Send + Sync` is a supertrait so that `&dyn TravelBound` can be shared
/// across the scoped worker threads of the parallel dispatch engine (see
/// [`Exec`]); every backend in this workspace is an immutable table or an
/// internally synchronized cache, so the bound costs implementors nothing.
pub trait TravelCost: Send + Sync {
    /// Shortest travel time in seconds from `a` to `b`.
    fn cost(&self, a: NodeId, b: NodeId) -> Dur;

    /// Total travel time of a node sequence, i.e. `T(L)` of Definition 3.
    fn path_cost(&self, nodes: &[NodeId]) -> Dur {
        nodes.windows(2).map(|w| self.cost(w[0], w[1])).sum()
    }
}

impl<T: TravelCost + ?Sized> TravelCost for &T {
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        (**self).cost(a, b)
    }
}

impl<T: TravelCost + ?Sized> TravelCost for std::sync::Arc<T> {
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        (**self).cost(a, b)
    }
}

/// A [`TravelCost`] oracle that can also answer *optimistic* queries: an
/// admissible lower bound on the travel time, cheaper than the exact cost.
///
/// The pooling hot path (shareability pre-filtering, the planner's deadline
/// pruning) only needs a *necessary* condition to discard candidates: if
/// even an optimistic bound on a leg already violates a deadline, the exact
/// cost would too, and the expensive exact query can be skipped. Backends:
///
/// * the dense table answers `lower_bound == cost` (exact, O(1) — the
///   filter degenerates to the previous behaviour at no extra cost),
/// * the ALT oracle answers with the landmark triangle-inequality bound
///   (`O(landmarks)` integer ops instead of an A* search),
/// * anything else falls back to the default `0` (always admissible,
///   never prunes).
///
/// # Contract
/// `lower_bound(a, b) ≤ cost(a, b)` for every pair — violating this makes
/// filters drop feasible candidates and breaks the bit-identical-results
/// guarantee the equivalence tests enforce.
pub trait TravelBound: TravelCost {
    /// Admissible lower bound on `cost(a, b)`. Defaults to `0`.
    #[inline]
    fn lower_bound(&self, _a: NodeId, _b: NodeId) -> Dur {
        0
    }
}

impl<T: TravelBound + ?Sized> TravelBound for &T {
    fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        (**self).lower_bound(a, b)
    }
}

impl<T: TravelBound + ?Sized> TravelBound for std::sync::Arc<T> {
    fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        (**self).lower_bound(a, b)
    }
}
