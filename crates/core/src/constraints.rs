//! The three shareability constraints of Definition 7.
//!
//! A group `g` is *shareable* iff it can generate a feasible route `L`
//! satisfying:
//!
//! 1. **Sequential**: every order's pick-up precedes its drop-off on `L`;
//! 2. **Deadline**: `t^(i) + t_r^(i) + T(L^(i)) < τ^(i)` for every order;
//! 3. **Capacity**: riders on board never exceed the vehicle capacity.
//!
//! The route planner in `watter-pool` enforces these incrementally during
//! search; this module provides the standalone validators used by tests,
//! integration checks and the baselines.

use crate::order::Order;
use crate::route::Route;
use crate::time::Ts;
use crate::TravelCost;
use std::collections::HashMap;

/// Which constraint a candidate route violates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConstraintViolation {
    /// Pick-up/drop-off ordering broken, or stops missing/duplicated.
    Sequential,
    /// The given order would be dropped off after its deadline.
    Deadline(crate::OrderId),
    /// Peak on-board riders exceeds capacity.
    Capacity { peak: u32, capacity: u32 },
    /// The route references an order not present in the group.
    UnknownOrder(crate::OrderId),
}

/// Capacity validator for a route and a rider lookup.
#[derive(Clone, Copy, Debug)]
pub struct CapacityCheck {
    /// Vehicle capacity `k^(j)`.
    pub capacity: u32,
}

impl CapacityCheck {
    /// Check constraint (3) on `route`.
    pub fn check(
        &self,
        route: &Route,
        riders_of: impl Fn(crate::OrderId) -> u32,
    ) -> Result<(), ConstraintViolation> {
        let peak = route.peak_load(riders_of);
        if peak > self.capacity {
            Err(ConstraintViolation::Capacity {
                peak,
                capacity: self.capacity,
            })
        } else {
            Ok(())
        }
    }
}

/// Validate all three constraints for a route serving `orders`, assuming the
/// group is dispatched (riders notified) at time `now`.
///
/// Per Definition 7 the response time entering the deadline check is the
/// time from each order's release to the notification instant `now`.
pub fn validate_route(
    route: &Route,
    orders: &[Order],
    now: Ts,
    capacity: u32,
    oracle: &impl TravelCost,
) -> Result<(), ConstraintViolation> {
    if !route.is_sequential() {
        return Err(ConstraintViolation::Sequential);
    }
    let by_id: HashMap<_, _> = orders.iter().map(|o| (o.id, o)).collect();
    for s in route.stops() {
        if !by_id.contains_key(&s.order) {
            return Err(ConstraintViolation::UnknownOrder(s.order));
        }
    }
    CapacityCheck { capacity }.check(route, |id| by_id[&id].riders)?;
    for o in orders {
        let sub = route
            .subroute_cost(o.id, oracle)
            .ok_or(ConstraintViolation::UnknownOrder(o.id))?;
        // t + t_r + T(L^(i)) < τ  with  t + t_r = now
        if now + sub >= o.deadline {
            return Err(ConstraintViolation::Deadline(o.id));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, OrderId};
    use crate::route::Stop;
    use crate::time::Dur;

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }

    fn order(id: u32, p: u32, d: u32, release: Ts, deadline: Ts) -> Order {
        let direct = Line.cost(NodeId(p), NodeId(d));
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline,
            wait_limit: 1_000,
            direct_cost: direct,
        }
    }

    fn route_for(orders: &[Order]) -> Route {
        // interleaved: p0 p1 d1 d0
        Route::new(
            vec![
                Stop::pickup(orders[0].pickup, orders[0].id),
                Stop::pickup(orders[1].pickup, orders[1].id),
                Stop::dropoff(orders[1].dropoff, orders[1].id),
                Stop::dropoff(orders[0].dropoff, orders[0].id),
            ],
            &Line,
        )
    }

    #[test]
    fn feasible_route_passes() {
        let orders = [order(0, 0, 3, 0, 1_000), order(1, 1, 2, 0, 1_000)];
        let r = route_for(&orders);
        assert_eq!(validate_route(&r, &orders, 0, 4, &Line), Ok(()));
    }

    #[test]
    fn deadline_violation_detected() {
        // o0 subroute cost is 30; dispatching at now=980 misses deadline 1000.
        let orders = [order(0, 0, 3, 0, 1_000), order(1, 1, 2, 0, 1_000)];
        let r = route_for(&orders);
        assert_eq!(
            validate_route(&r, &orders, 980, 4, &Line),
            Err(ConstraintViolation::Deadline(OrderId(0)))
        );
    }

    #[test]
    fn capacity_violation_detected() {
        let orders = [order(0, 0, 3, 0, 1_000), order(1, 1, 2, 0, 1_000)];
        let r = route_for(&orders);
        assert_eq!(
            validate_route(&r, &orders, 0, 1, &Line),
            Err(ConstraintViolation::Capacity {
                peak: 2,
                capacity: 1
            })
        );
    }

    #[test]
    fn unknown_order_detected() {
        let orders = [order(0, 0, 3, 0, 1_000)];
        let r = Route::new(
            vec![
                Stop::pickup(NodeId(0), OrderId(0)),
                Stop::pickup(NodeId(1), OrderId(9)),
                Stop::dropoff(NodeId(2), OrderId(9)),
                Stop::dropoff(NodeId(3), OrderId(0)),
            ],
            &Line,
        );
        assert_eq!(
            validate_route(&r, &orders, 0, 4, &Line),
            Err(ConstraintViolation::UnknownOrder(OrderId(9)))
        );
    }

    #[test]
    fn zero_slack_deadline_boundary() {
        // Route cost 0→1 is 10. With deadline = sub + 1 the order has zero
        // slack: feasible when dispatched at now = 0, infeasible one second
        // later (the strict `<` of Definition 7 flips exactly there).
        let orders = [order(0, 0, 1, 0, 11)];
        let r = Route::new(
            vec![
                Stop::pickup(NodeId(0), OrderId(0)),
                Stop::dropoff(NodeId(1), OrderId(0)),
            ],
            &Line,
        );
        assert_eq!(validate_route(&r, &orders, 0, 4, &Line), Ok(()));
        assert_eq!(
            validate_route(&r, &orders, 1, 4, &Line),
            Err(ConstraintViolation::Deadline(OrderId(0)))
        );
    }

    #[test]
    fn exact_capacity_boarding_is_feasible() {
        // Two 2-rider orders on board simultaneously: peak load 4.
        let mut o0 = order(0, 0, 3, 0, 1_000);
        let mut o1 = order(1, 1, 2, 0, 1_000);
        o0.riders = 2;
        o1.riders = 2;
        let orders = [o0, o1];
        let r = route_for(&orders);
        // Boarding exactly at capacity satisfies constraint (3)…
        assert_eq!(validate_route(&r, &orders, 0, 4, &Line), Ok(()));
        // …and one seat fewer trips it, reporting the true peak.
        assert_eq!(
            validate_route(&r, &orders, 0, 3, &Line),
            Err(ConstraintViolation::Capacity {
                peak: 4,
                capacity: 3
            })
        );
    }

    #[test]
    fn capacity_peak_respects_dropoff_ordering() {
        // Sequential service p0 d0 p1 d1 never has both orders on board:
        // peak is a single order's riders, so capacity 2 suffices even
        // though total riders is 4.
        let mut o0 = order(0, 0, 1, 0, 1_000);
        let mut o1 = order(1, 2, 3, 0, 1_000);
        o0.riders = 2;
        o1.riders = 2;
        let orders = [o0.clone(), o1.clone()];
        let r = Route::new(
            vec![
                Stop::pickup(o0.pickup, o0.id),
                Stop::dropoff(o0.dropoff, o0.id),
                Stop::pickup(o1.pickup, o1.id),
                Stop::dropoff(o1.dropoff, o1.id),
            ],
            &Line,
        );
        assert_eq!(validate_route(&r, &orders, 0, 2, &Line), Ok(()));
    }

    #[test]
    fn exact_deadline_is_violation() {
        // Constraint is strict: arrival exactly at τ is infeasible.
        let orders = [order(0, 0, 1, 0, 10)];
        let r = Route::new(
            vec![
                Stop::pickup(NodeId(0), OrderId(0)),
                Stop::dropoff(NodeId(1), OrderId(0)),
            ],
            &Line,
        );
        assert_eq!(
            validate_route(&r, &orders, 0, 4, &Line),
            Err(ConstraintViolation::Deadline(OrderId(0)))
        );
    }
}
