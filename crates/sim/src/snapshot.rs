//! Snapshot/restore of a dispatch run.
//!
//! [`DispatchSnapshot`] captures everything needed to resume a run
//! mid-stream: the core's clock/cadence/buffer state, the fleet, both
//! metric accumulators, and the dispatcher's runtime state (for WATTER,
//! the order pool's graph and best-group map — see
//! [`watter_pool::PoolSnapshot`] for why the pool serializes actual
//! state rather than a rebuild recipe). The engine configuration rides
//! along so a snapshot is self-contained.
//!
//! What is *not* serialized is configuration reconstructed by the host:
//! the oracle (a road network is not run state), the policy, the grid,
//! the cancellation model. Cancellation needs no RNG state either — the
//! draws are stateless hashes of `(order, time, seed)`
//! (see [`crate::cancel`]), so a restored run replays them identically.
//!
//! Contract (enforced by `tests/snapshot.rs` and the CI smoke):
//! `restore(snapshot(run at tick k)) + replay(tail)` produces the same
//! `Measurements`/`Kpis` as the uninterrupted run, bit for bit, modulo
//! the wall-clock timing fields.

use crate::core::DispatchCore;
use crate::dispatcher::Dispatcher;
use crate::engine::SimConfig;
use serde::{Deserialize, Serialize};
use watter_core::{Kpis, Measurements, NodeId, Order, Ts, Worker};
use watter_pool::{PoolSnapshot, RestoreError};

/// Serializable fleet state: the roster plus each worker's runtime
/// `(location, busy_until)`, index-aligned with `workers`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Static worker roster.
    pub workers: Vec<Worker>,
    /// Current location per worker.
    pub locations: Vec<NodeId>,
    /// Busy-until instant per worker.
    pub busy_until: Vec<Ts>,
}

/// The dispatch core's own state (everything but the dispatcher).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoreState {
    /// Engine configuration the run was started with.
    pub config: SimConfig,
    /// Latest instant the core advanced to.
    pub clock: Ts,
    /// Established check cadence, if any check ran yet.
    pub next_check: Option<Ts>,
    /// Whether the stream was closed.
    pub closed: bool,
    /// Largest queued release time.
    pub last_release: Ts,
    /// Whether the run already drained.
    pub drained: bool,
    /// Arrivals buffered ahead of delivery.
    pub buffered: Vec<Order>,
    /// Fleet runtime state.
    pub fleet: FleetSnapshot,
    /// Paper-metric accumulator.
    pub measurements: Measurements,
    /// KPI accumulator.
    pub kpis: Kpis,
    /// Next trace-journal sequence number at snapshot time, so a
    /// restored run's recorder resumes numbering where the crashed run
    /// stopped and replayed events are never double-counted.
    pub trace_seq: u64,
}

/// Runtime state of a dispatcher, by kind.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum DispatcherState {
    /// The dispatcher holds no runtime state (e.g. answers at arrival).
    Stateless,
    /// A WATTER dispatcher: the order pool.
    Watter {
        /// Pool state (graph, best groups, counters).
        pool: PoolSnapshot,
    },
    /// A FIFO queue of waiting orders (the non-sharing baseline).
    Queue {
        /// Queued orders, front first.
        orders: Vec<Order>,
    },
}

/// A complete, serializable dispatch-run snapshot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DispatchSnapshot {
    /// Core state.
    pub core: CoreState,
    /// Dispatcher state.
    pub dispatcher: DispatcherState,
}

/// Why a snapshot could not be loaded.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotError {
    /// The snapshot's dispatcher state is of a different kind than the
    /// dispatcher it is being loaded into.
    DispatcherMismatch {
        /// The dispatcher the load was attempted on.
        expected: &'static str,
    },
    /// The pool state was internally inconsistent.
    Pool(RestoreError),
    /// Fleet vectors disagree in length.
    FleetMismatch,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DispatcherMismatch { expected } => {
                write!(f, "snapshot dispatcher state is not a {expected} state")
            }
            Self::Pool(e) => write!(f, "pool restore failed: {e}"),
            Self::FleetMismatch => write!(f, "fleet snapshot vectors misaligned"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<RestoreError> for SnapshotError {
    fn from(e: RestoreError) -> Self {
        Self::Pool(e)
    }
}

/// A dispatcher whose runtime state can be captured and restored.
///
/// Construction parameters (policy, grid, cancellation model, pool
/// configuration) are *not* part of the state: a snapshot is loaded into
/// a dispatcher freshly built from the same configuration as the one it
/// was taken from, and `load_state` replaces only the runtime state.
pub trait SnapshotDispatcher: Dispatcher {
    /// Capture the runtime state.
    fn save_state(&self) -> DispatcherState;

    /// Replace the runtime state with `state`.
    fn load_state(&mut self, state: &DispatcherState) -> Result<(), SnapshotError>;
}

impl DispatchCore {
    /// Capture the run. Valid between any two [`crate::core::Event`]
    /// steps (the public API only exposes event boundaries).
    pub fn snapshot<D: SnapshotDispatcher>(&self, dispatcher: &D) -> DispatchSnapshot {
        DispatchSnapshot {
            core: self.snapshot_parts(),
            dispatcher: dispatcher.save_state(),
        }
    }

    /// Rebuild a core from `snap` and load the dispatcher's state.
    /// `dispatcher` must be freshly constructed from the same
    /// configuration the snapshotted run used.
    pub fn restore<D: SnapshotDispatcher>(
        snap: &DispatchSnapshot,
        dispatcher: &mut D,
    ) -> Result<Self, SnapshotError> {
        let f = &snap.core.fleet;
        if f.workers.len() != f.locations.len() || f.workers.len() != f.busy_until.len() {
            return Err(SnapshotError::FleetMismatch);
        }
        dispatcher.load_state(&snap.dispatcher)?;
        Ok(Self::from_snapshot_parts(&snap.core))
    }
}
