//! Demand/supply snapshot construction.
//!
//! Builds the [`EnvSnapshot`] of Section VI-A's environmental features from
//! the pooled orders (demand) and the idle workers (supply), quantized by
//! the grid index.

use watter_core::{EnvSnapshot, NodeId, Order};
use watter_road::GridIndex;

/// Count pooled orders' pick-up/drop-off cells and idle workers per cell.
pub fn build_env<'a>(
    grid: &GridIndex,
    pooled: impl Iterator<Item = &'a Order>,
    idle_workers: impl Iterator<Item = NodeId>,
) -> EnvSnapshot {
    let mut env = EnvSnapshot::empty(grid.dim());
    for o in pooled {
        env.demand_pickup[grid.cell_of(o.pickup)] += 1;
        env.demand_dropoff[grid.cell_of(o.dropoff)] += 1;
    }
    for loc in idle_workers {
        env.supply[grid.cell_of(loc)] += 1;
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::OrderId;
    use watter_road::CityConfig;

    #[test]
    fn counts_land_in_cells() {
        let city = CityConfig {
            width: 8,
            height: 8,
            ..CityConfig::default()
        }
        .generate(1);
        let grid = GridIndex::build(&city, 4);
        let o = Order {
            id: OrderId(0),
            pickup: NodeId(0),
            dropoff: NodeId(63),
            riders: 1,
            release: 0,
            deadline: 1_000,
            wait_limit: 100,
            direct_cost: 500,
        };
        let env = build_env(&grid, std::iter::once(&o), std::iter::once(NodeId(5)));
        assert_eq!(env.total_demand(), 1);
        assert_eq!(env.total_supply(), 1);
        assert_eq!(env.demand_pickup[grid.cell_of(NodeId(0))], 1);
        assert_eq!(env.demand_dropoff[grid.cell_of(NodeId(63))], 1);
        assert_eq!(env.supply[grid.cell_of(NodeId(5))], 1);
    }
}
