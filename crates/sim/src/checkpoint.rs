//! Durable, integrity-checked checkpoint storage for the dispatch daemon.
//!
//! A checkpoint generation is one file `ckpt-<gen>.json` in the store
//! directory, written **atomically** (write to a `.tmp` sibling, fsync,
//! rename) so a crash can never leave a half-written file under the final
//! name. The file carries a one-line header
//!
//! ```text
//! WATTERCKPT1 <payload-bytes> <fnv1a64-hex>
//! ```
//!
//! followed by the JSON payload, so *any* damage — a torn tail from a
//! crash landing mid-write, a flipped bit from silent media corruption,
//! an unrelated file dropped into the directory — is detected at read
//! time and surfaces as a typed [`CheckpointError`], never a panic. The
//! error distinguishes truncation, checksum mismatch and JSON parse
//! failure so operators (and `tests/chaos.rs`) can tell torn writes from
//! bit rot from format drift.
//!
//! The store keeps the last *N* generations ([`CheckpointStore::keep`]).
//! Recovery walks generations newest-first and returns the first one that
//! passes both integrity checks **and** parses
//! ([`CheckpointStore::latest_valid`]) — a corrupted newest checkpoint
//! costs one generation of progress, not the run.
//!
//! Transient write failures (injected via
//! [`FaultPlan::io_failures`](watter_core::FaultPlan), or real `EIO`s)
//! are retried with exponential backoff; the attempt counters land in
//! [`CheckpointOps`], which is *operational* telemetry — deliberately not
//! part of the checkpointed state, because a crashed-and-recovered run
//! legitimately performs different checkpoint IO than an uninterrupted
//! one while producing bit-identical dispatch statistics.

use crate::daemon::DaemonCheckpoint;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use watter_core::{CorruptKind, FaultPlan};

/// Magic tag of the checkpoint header line.
const MAGIC: &str = "WATTERCKPT1";
/// Write attempts per checkpoint before giving up.
const MAX_ATTEMPTS: u32 = 4;

/// Why a checkpoint file could not be loaded.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointError {
    /// Filesystem-level failure (open/read/write/rename).
    Io(String),
    /// The file does not start with a well-formed `WATTERCKPT1` header.
    BadHeader,
    /// The payload is shorter than the header promised — a torn write.
    Truncated {
        /// Bytes the header declared.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload length matches but its checksum does not — bit-level
    /// corruption.
    ChecksumMismatch {
        /// Checksum the header declared.
        expected: u64,
        /// Checksum of the bytes on disk.
        got: u64,
    },
    /// Integrity checks passed but the payload is not a valid checkpoint
    /// document (format drift or a foreign file with a forged header).
    Parse(String),
    /// No generation in the directory passed validation.
    NoValidCheckpoint,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint io: {e}"),
            Self::BadHeader => write!(f, "checkpoint header missing or malformed"),
            Self::Truncated { expected, got } => {
                write!(
                    f,
                    "checkpoint truncated: header declares {expected} B, file has {got} B"
                )
            }
            Self::ChecksumMismatch { expected, got } => write!(
                f,
                "checkpoint checksum mismatch: header {expected:016x}, payload {got:016x}"
            ),
            Self::Parse(e) => write!(f, "checkpoint parse: {e}"),
            Self::NoValidCheckpoint => write!(f, "no valid checkpoint generation found"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Operational counters of one store's lifetime (not checkpointed state —
/// see the module docs for why).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointOps {
    /// Generations successfully written.
    pub written: u64,
    /// Write attempts that failed and were retried.
    pub retries: u64,
    /// Failures injected by the fault plan (a subset of `retries`).
    pub injected_failures: u64,
    /// Generations skipped as corrupt/unreadable during recovery.
    pub discarded: u64,
    /// Generation recovery actually restored from, if any.
    pub resumed_from: Option<u64>,
}

/// FNV-1a 64-bit over `bytes` — tiny, dependency-free, and plenty to
/// catch torn tails and flipped bits (this is corruption *detection*, not
/// an adversarial MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generation-rotated checkpoint directory (see the module docs).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    next_gen: u64,
    io_failures_left: u32,
    ops: CheckpointOps,
}

impl CheckpointStore {
    /// Open (creating if needed) the store at `dir`, keeping the last
    /// `keep` generations. Numbering continues after any generation
    /// already present, so a recovered daemon never overwrites history.
    pub fn open(dir: &Path, keep: usize, fault: FaultPlan) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let next_gen = Self::generations(dir)?.last().map(|&g| g + 1).unwrap_or(0);
        Ok(Self {
            dir: dir.to_path_buf(),
            keep: keep.max(1),
            next_gen,
            io_failures_left: fault.io_failures,
            ops: CheckpointOps::default(),
        })
    }

    /// Generations present on disk, ascending.
    fn generations(dir: &Path) -> Result<Vec<u64>, CheckpointError> {
        let mut gens = Vec::new();
        for entry in fs::read_dir(dir).map_err(|e| CheckpointError::Io(e.to_string()))? {
            let entry = entry.map_err(|e| CheckpointError::Io(e.to_string()))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(g) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    fn path_of(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{gen}.json"))
    }

    /// Persist `ckpt` as the next generation: atomic write-then-rename
    /// with the checksum header, retrying transient failures with
    /// exponential backoff, then pruning generations older than `keep`.
    /// Returns the generation number written.
    pub fn save(&mut self, ckpt: &DaemonCheckpoint) -> Result<u64, CheckpointError> {
        let body =
            serde_json::to_string(ckpt).map_err(|e| CheckpointError::Parse(format!("{e:?}")))?;
        let payload = body.as_bytes();
        let header = format!("{MAGIC} {} {:016x}\n", payload.len(), fnv1a64(payload));
        let gen = self.next_gen;
        let tmp = self.dir.join(format!("ckpt-{gen}.tmp"));
        let final_path = self.path_of(gen);

        let mut last_err = None;
        for attempt in 0..MAX_ATTEMPTS {
            match self.try_write(&tmp, &final_path, header.as_bytes(), payload) {
                Ok(()) => {
                    last_err = None;
                    break;
                }
                Err(e) => {
                    self.ops.retries += 1;
                    last_err = Some(e);
                    // Exponential backoff: 1, 2, 4 ms. Long enough to ride
                    // out a transient EIO, short enough for tests.
                    std::thread::sleep(std::time::Duration::from_millis(1 << attempt));
                }
            }
        }
        if let Some(e) = last_err {
            return Err(e);
        }
        self.next_gen += 1;
        self.ops.written += 1;
        self.prune()?;
        Ok(gen)
    }

    fn try_write(
        &mut self,
        tmp: &Path,
        final_path: &Path,
        header: &[u8],
        payload: &[u8],
    ) -> Result<(), CheckpointError> {
        // Injected transient failure (FaultPlan::io_failures): fail the
        // attempt *before* any bytes land, like a full disk would.
        if self.io_failures_left > 0 {
            self.io_failures_left -= 1;
            self.ops.injected_failures += 1;
            return Err(CheckpointError::Io("injected checkpoint IO failure".into()));
        }
        let io = |e: std::io::Error| CheckpointError::Io(e.to_string());
        let mut f = fs::File::create(tmp).map_err(io)?;
        f.write_all(header).map_err(io)?;
        f.write_all(payload).map_err(io)?;
        f.sync_all().map_err(io)?;
        fs::rename(tmp, final_path).map_err(io)?;
        Ok(())
    }

    fn prune(&mut self) -> Result<(), CheckpointError> {
        let gens = Self::generations(&self.dir)?;
        if gens.len() > self.keep {
            for &g in &gens[..gens.len() - self.keep] {
                fs::remove_file(self.path_of(g)).map_err(|e| CheckpointError::Io(e.to_string()))?;
            }
        }
        Ok(())
    }

    /// Read and fully validate one generation file.
    pub fn read_file(path: &Path) -> Result<DaemonCheckpoint, CheckpointError> {
        let bytes = fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(CheckpointError::BadHeader)?;
        let header =
            std::str::from_utf8(&bytes[..newline]).map_err(|_| CheckpointError::BadHeader)?;
        let mut parts = header.split_ascii_whitespace();
        let (magic, len, sum) = (parts.next(), parts.next(), parts.next());
        if magic != Some(MAGIC) || parts.next().is_some() {
            return Err(CheckpointError::BadHeader);
        }
        let expected_len: usize = len
            .and_then(|s| s.parse().ok())
            .ok_or(CheckpointError::BadHeader)?;
        let expected_sum = sum
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or(CheckpointError::BadHeader)?;
        let payload = &bytes[newline + 1..];
        if payload.len() != expected_len {
            return Err(CheckpointError::Truncated {
                expected: expected_len,
                got: payload.len(),
            });
        }
        let got_sum = fnv1a64(payload);
        if got_sum != expected_sum {
            return Err(CheckpointError::ChecksumMismatch {
                expected: expected_sum,
                got: got_sum,
            });
        }
        let text =
            std::str::from_utf8(payload).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        serde_json::from_str(text).map_err(|e| CheckpointError::Parse(format!("{e:?}")))
    }

    /// The newest generation that passes integrity checks and parses,
    /// walking backwards over corrupt generations (each skip is counted in
    /// [`CheckpointOps::discarded`]). `Ok(None)` means the directory holds
    /// no generations at all — a fresh start, not an error.
    pub fn latest_valid(&mut self) -> Result<Option<(u64, DaemonCheckpoint)>, CheckpointError> {
        let gens = Self::generations(&self.dir)?;
        if gens.is_empty() {
            return Ok(None);
        }
        for &g in gens.iter().rev() {
            match Self::read_file(&self.path_of(g)) {
                Ok(ckpt) => {
                    self.ops.resumed_from = Some(g);
                    return Ok(Some((g, ckpt)));
                }
                Err(_) => self.ops.discarded += 1,
            }
        }
        Err(CheckpointError::NoValidCheckpoint)
    }

    /// Damage the newest generation file in place — the torn/bit-flipped
    /// checkpoint a crash mid-write leaves behind. Used by the fault plan
    /// at crash time and by chaos tests. No-op when the store is empty.
    pub fn corrupt_newest(&self, kind: CorruptKind) -> Result<(), CheckpointError> {
        let Some(&gen) = Self::generations(&self.dir)?.last() else {
            return Ok(());
        };
        let path = self.path_of(gen);
        let bytes = fs::read(&path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let damaged = match kind {
            // Drop the second half: header intact, payload short.
            CorruptKind::Torn => bytes[..bytes.len() / 2].to_vec(),
            CorruptKind::BitFlip => {
                let mut b = bytes;
                // Flip a bit well inside the payload, past the header.
                let idx = b.len().saturating_sub(1).max(1) / 2 + b.len() / 4;
                let idx = idx.min(b.len() - 1);
                b[idx] ^= 0x10;
                b
            }
        };
        fs::write(&path, damaged).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Generations currently on disk, ascending.
    pub fn on_disk(&self) -> Result<Vec<u64>, CheckpointError> {
        Self::generations(&self.dir)
    }

    /// Operational counters accumulated by this store instance.
    pub fn ops(&self) -> CheckpointOps {
        self.ops
    }

    /// How many generations the store retains.
    pub fn keep(&self) -> usize {
        self.keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DaemonCheckpoint;
    use crate::snapshot::{CoreState, DispatchSnapshot, DispatcherState, FleetSnapshot};
    use crate::SimConfig;
    use watter_core::{Kpis, Measurements, RobustnessReport};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "watter_ckpt_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn checkpoint(lines: u64) -> DaemonCheckpoint {
        DaemonCheckpoint {
            lines_consumed: lines,
            engaged: false,
            ingest: crate::ingest::OrderIngest::default().snapshot(),
            robustness: RobustnessReport::default(),
            snap: DispatchSnapshot {
                core: CoreState {
                    config: SimConfig::default(),
                    clock: lines as i64,
                    next_check: None,
                    closed: false,
                    last_release: 0,
                    drained: false,
                    buffered: Vec::new(),
                    fleet: FleetSnapshot {
                        workers: Vec::new(),
                        locations: Vec::new(),
                        busy_until: Vec::new(),
                    },
                    measurements: Measurements::default(),
                    kpis: Kpis::new(0),
                    trace_seq: 0,
                },
                dispatcher: DispatcherState::Stateless,
            },
        }
    }

    #[test]
    fn round_trip_and_rotation() {
        let dir = temp_dir("rot");
        let mut store = CheckpointStore::open(&dir, 3, FaultPlan::NONE).expect("open");
        for i in 0..5 {
            let gen = store.save(&checkpoint(i)).expect("save");
            assert_eq!(gen, i);
        }
        // Keep-last-3: generations 2, 3, 4 survive.
        assert_eq!(store.on_disk().expect("list"), vec![2, 3, 4]);
        let (gen, ckpt) = store.latest_valid().expect("read").expect("non-empty");
        assert_eq!((gen, ckpt.lines_consumed), (4, 4));
        assert_eq!(store.ops().written, 5);
        assert_eq!(store.ops().discarded, 0);
        // A reopened store continues numbering after existing generations.
        let store2 = CheckpointStore::open(&dir, 3, FaultPlan::NONE).expect("reopen");
        assert_eq!(store2.next_gen, 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_is_a_typed_truncation_error() {
        let dir = temp_dir("torn");
        let mut store = CheckpointStore::open(&dir, 2, FaultPlan::NONE).expect("open");
        store.save(&checkpoint(7)).expect("save");
        store.corrupt_newest(CorruptKind::Torn).expect("corrupt");
        let err = CheckpointStore::read_file(&dir.join("ckpt-0.json")).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Truncated { expected, got } if got < expected),
            "torn file must report truncation, got {err:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflipped_file_is_a_checksum_mismatch() {
        let dir = temp_dir("flip");
        let mut store = CheckpointStore::open(&dir, 2, FaultPlan::NONE).expect("open");
        store.save(&checkpoint(9)).expect("save");
        store.corrupt_newest(CorruptKind::BitFlip).expect("corrupt");
        let err = CheckpointStore::read_file(&dir.join("ckpt-0.json")).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ChecksumMismatch { expected, got } if expected != got),
            "bit flip must report checksum mismatch, got {err:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn valid_checksum_over_garbage_is_a_parse_error() {
        let dir = temp_dir("forge");
        fs::create_dir_all(&dir).ok();
        let body = b"{\"not\": \"a checkpoint\"}";
        let header = format!("{MAGIC} {} {:016x}\n", body.len(), fnv1a64(body));
        let path = dir.join("ckpt-0.json");
        fs::write(&path, [header.as_bytes(), body].concat()).expect("write");
        let err = CheckpointStore::read_file(&path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Parse(_)),
            "forged-but-wrong payload must be a parse error, got {err:?}"
        );
        // And a file with no header at all is BadHeader.
        fs::write(&path, b"plain json without header").expect("write");
        assert!(matches!(
            CheckpointStore::read_file(&path).unwrap_err(),
            CheckpointError::BadHeader
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_falls_back_over_corrupt_generations() {
        let dir = temp_dir("fallback");
        let mut store = CheckpointStore::open(&dir, 4, FaultPlan::NONE).expect("open");
        store.save(&checkpoint(1)).expect("save");
        store.save(&checkpoint(2)).expect("save");
        store.save(&checkpoint(3)).expect("save");
        store.corrupt_newest(CorruptKind::BitFlip).expect("corrupt");
        let (gen, ckpt) = store.latest_valid().expect("read").expect("non-empty");
        assert_eq!(
            (gen, ckpt.lines_consumed),
            (1, 2),
            "must fall back one generation"
        );
        assert_eq!(store.ops().discarded, 1);
        assert_eq!(store.ops().resumed_from, Some(1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_generations_corrupt_is_a_typed_error() {
        let dir = temp_dir("allbad");
        let mut store = CheckpointStore::open(&dir, 4, FaultPlan::NONE).expect("open");
        store.save(&checkpoint(1)).expect("save");
        store.corrupt_newest(CorruptKind::Torn).expect("corrupt");
        assert_eq!(
            store.latest_valid().unwrap_err(),
            CheckpointError::NoValidCheckpoint
        );
        // An empty directory, by contrast, is a clean fresh start.
        let empty = temp_dir("empty");
        let mut store = CheckpointStore::open(&empty, 4, FaultPlan::NONE).expect("open");
        assert!(store.latest_valid().expect("ok").is_none());
        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn injected_io_failures_are_retried_with_backoff() {
        let dir = temp_dir("retry");
        let fault = FaultPlan {
            io_failures: 2,
            ..FaultPlan::NONE
        };
        let mut store = CheckpointStore::open(&dir, 2, fault).expect("open");
        // Two injected failures, then the third attempt succeeds.
        let gen = store
            .save(&checkpoint(5))
            .expect("save survives transient failures");
        assert_eq!(gen, 0);
        assert_eq!(store.ops().retries, 2);
        assert_eq!(store.ops().injected_failures, 2);
        let (_, ckpt) = store.latest_valid().expect("read").expect("non-empty");
        assert_eq!(ckpt.lines_consumed, 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn too_many_io_failures_surface_as_io_error() {
        let dir = temp_dir("exhaust");
        let fault = FaultPlan {
            io_failures: MAX_ATTEMPTS,
            ..FaultPlan::NONE
        };
        let mut store = CheckpointStore::open(&dir, 2, fault).expect("open");
        assert!(matches!(
            store.save(&checkpoint(5)).unwrap_err(),
            CheckpointError::Io(_)
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
