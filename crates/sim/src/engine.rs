//! Simulation drivers over the dispatch core.
//!
//! The event loop itself lives in [`crate::core::DispatchCore`]; this
//! module provides the drivers that feed it:
//!
//! * [`run`] / [`run_with_kpis`] — the **batch driver**: queue a whole
//!   scenario, close the stream, drain. Bit-identical to the
//!   pre-refactor monolithic loop, which is preserved verbatim as
//!   [`run_monolithic`] so the equivalence is a *testable* claim
//!   (`tests/streaming.rs` proves it across all three city profiles);
//! * [`run_stream`] — the **streaming driver**: orders flow through an
//!   [`OrderIngest`] validation stage and interleave with due checks, so
//!   the stream is never materialized, pre-sorted or pre-validated. For
//!   a valid sorted stream the outcome equals the batch driver's (same
//!   events in the same order).
//!
//! Timing: the dispatcher's wall-clock decision time per event feeds the
//! paper's *Running Time* measurement; it is the one non-deterministic
//! quantity (compare runs via `Measurements::without_timing`).

use crate::core::{DispatchCore, Event};
use crate::dispatcher::{Dispatcher, SimCtx};
use crate::fleet::Fleet;
use crate::ingest::{IngestConfig, IngestStats, OrderIngest};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use watter_core::{
    CostWeights, DispatchParallelism, Dur, Exec, Kpis, Measurements, Order, TravelBound, Ts, Worker,
};
use watter_obs::{Counter, Stage};

/// Engine parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Period of the asynchronous checks (the paper's Δt, default 10 s).
    pub check_period: Dur,
    /// Extra-time weights (α, β).
    pub weights: CostWeights,
    /// Safety drain horizon after the last arrival; any order still pending
    /// then is force-rejected (prevents infinite loops on buggy
    /// dispatchers — with correct dispatchers everything resolves earlier).
    pub drain_horizon: Dur,
    /// Thread-pool size for the engine's own fan-out work (parallel
    /// nearest-idle fleet scans). Results are bit-identical for any
    /// setting; the default is fully sequential.
    pub parallelism: DispatchParallelism,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            check_period: 10,
            weights: CostWeights::default(),
            drain_horizon: 4 * 3600,
            parallelism: DispatchParallelism::SEQUENTIAL,
        }
    }
}

/// Run `dispatcher` over the order stream and return the measurements.
///
/// `orders` need not be sorted; the core merges arrivals by
/// `(release, id)`. The fleet is rebuilt from `workers`, so repeated runs
/// are independent.
pub fn run<D: Dispatcher>(
    orders: Vec<Order>,
    workers: Vec<Worker>,
    dispatcher: &mut D,
    oracle: &dyn TravelBound,
    cfg: SimConfig,
) -> Measurements {
    run_with_kpis(orders, workers, dispatcher, oracle, cfg).0
}

/// [`run`], also returning the KPI accumulator.
pub fn run_with_kpis<D: Dispatcher>(
    orders: Vec<Order>,
    workers: Vec<Worker>,
    dispatcher: &mut D,
    oracle: &dyn TravelBound,
    cfg: SimConfig,
) -> (Measurements, Kpis) {
    run_recorded(
        orders,
        workers,
        dispatcher,
        oracle,
        cfg,
        watter_obs::Recorder::disabled(),
    )
}

/// [`run_with_kpis`] with an observability recorder attached to both the
/// core (effect-stream counters, window KPIs, trace events) and the
/// dispatcher (hot-path stage spans). Outcomes are bit-identical to the
/// unrecorded run — pass [`watter_obs::Recorder::disabled`] to get
/// exactly [`run_with_kpis`].
pub fn run_recorded<D: Dispatcher>(
    orders: Vec<Order>,
    workers: Vec<Worker>,
    dispatcher: &mut D,
    oracle: &dyn TravelBound,
    cfg: SimConfig,
    recorder: watter_obs::Recorder,
) -> (Measurements, Kpis) {
    let mut core = DispatchCore::new(workers, cfg);
    core.set_recorder(recorder.clone());
    dispatcher.set_recorder(recorder);
    for order in orders {
        core.step(Event::Arrive(order), dispatcher, oracle);
    }
    core.step(Event::Close, dispatcher, oracle);
    while !core.is_drained() {
        core.step(Event::Check, dispatcher, oracle);
    }
    core.finish()
}

/// Outcome of a streamed run.
#[derive(Clone, Debug)]
pub struct StreamOutput {
    /// The paper's measurements.
    pub measurements: Measurements,
    /// The KPI accumulator.
    pub kpis: Kpis,
    /// Ingest/validation counters.
    pub ingest: IngestStats,
}

/// Stream `orders` through ingest validation into the dispatch core,
/// running due checks between arrivals — the incremental front end a
/// daemon would use. The stream is consumed lazily; it need not be
/// sorted (the core merges arrivals) or pre-validated (ingest refuses
/// malformed orders with typed errors, counted in
/// [`StreamOutput::ingest`]).
///
/// A check due strictly before the next arrival's release runs first; an
/// arrival releasing exactly at the next check instant is fed first,
/// preserving the core's arrivals-before-check tie rule — which is why a
/// valid sorted stream reproduces the batch driver's outcome exactly.
pub fn run_stream<D, I>(
    orders: I,
    workers: Vec<Worker>,
    dispatcher: &mut D,
    oracle: &dyn TravelBound,
    cfg: SimConfig,
    ingest_cfg: IngestConfig,
) -> StreamOutput
where
    D: Dispatcher,
    I: IntoIterator<Item = Order>,
{
    run_stream_recorded(
        orders,
        workers,
        dispatcher,
        oracle,
        cfg,
        ingest_cfg,
        watter_obs::Recorder::disabled(),
    )
}

/// [`run_stream`] with an observability recorder: ingest validation is
/// span-timed, admission totals are mirrored into the registry at the
/// end of the run, and the core/dispatcher record as in
/// [`run_recorded`]. Outcomes are bit-identical to the unrecorded run.
#[allow(clippy::too_many_arguments)]
pub fn run_stream_recorded<D, I>(
    orders: I,
    workers: Vec<Worker>,
    dispatcher: &mut D,
    oracle: &dyn TravelBound,
    cfg: SimConfig,
    ingest_cfg: IngestConfig,
    recorder: watter_obs::Recorder,
) -> StreamOutput
where
    D: Dispatcher,
    I: IntoIterator<Item = Order>,
{
    let mut ingest = OrderIngest::new(ingest_cfg);
    let mut core = DispatchCore::new(workers, cfg);
    core.set_recorder(recorder.clone());
    dispatcher.set_recorder(recorder.clone());
    for raw in orders {
        while !core.is_drained() && core.next_due().is_some_and(|due| due < raw.release) {
            core.step(Event::Check, dispatcher, oracle);
        }
        let admitted = {
            let _span = recorder.time(Stage::Ingest);
            ingest.admit(raw, core.clock())
        };
        if let Ok(order) = admitted {
            core.step(Event::Arrive(order), dispatcher, oracle);
        }
        ingest.observe_backlog(core.backlog() + dispatcher.pending());
    }
    core.step(Event::Close, dispatcher, oracle);
    while !core.is_drained() {
        core.step(Event::Check, dispatcher, oracle);
    }
    let (measurements, kpis) = core.finish();
    let stats = ingest.stats();
    recorder.set_at_least(Counter::OrdersAdmitted, stats.admitted);
    StreamOutput {
        measurements,
        kpis,
        ingest: stats,
    }
}

/// The pre-refactor monolithic event loop, preserved as the reference
/// implementation the core-driven [`run`] is proven bit-identical
/// against (`tests/streaming.rs`). Not for new callers — it exists so
/// the equivalence stays an enforced test rather than a changelog claim.
#[doc(hidden)]
pub fn run_monolithic<D: Dispatcher>(
    mut orders: Vec<Order>,
    workers: Vec<Worker>,
    dispatcher: &mut D,
    oracle: &dyn TravelBound,
    cfg: SimConfig,
) -> Measurements {
    assert!(cfg.check_period > 0, "check period must be positive");
    orders.sort_by_key(|o| (o.release, o.id));
    let mut fleet = Fleet::new(workers);
    let mut measurements = Measurements::default();
    let mut effects = Vec::new();
    let exec = Exec::from_parallelism(cfg.parallelism);

    let first_release = orders.first().map(|o| o.release).unwrap_or(0);
    let last_release = orders.last().map(|o| o.release).unwrap_or(0);
    let mut next_check = first_release + cfg.check_period;
    let mut arrivals = orders.into_iter().peekable();
    let deadline = last_release + cfg.drain_horizon;

    loop {
        // Next event: arrival or periodic check, whichever is earlier;
        // arrivals at the same instant as a check run first (the check then
        // sees them pooled, matching Algorithm 1's ordering).
        let next_arrival = arrivals.peek().map(|o| o.release);
        let now: Ts = match next_arrival {
            Some(a) if a <= next_check => a,
            _ => next_check,
        };
        if now > deadline {
            break;
        }
        if next_arrival == Some(now) {
            while arrivals.peek().map(|o| o.release) == Some(now) {
                let order = arrivals.next().expect("peeked");
                let mut ctx = SimCtx {
                    now,
                    fleet: &mut fleet,
                    measurements: &mut measurements,
                    oracle,
                    weights: cfg.weights,
                    exec: &exec,
                    effects: &mut effects,
                };
                let t0 = Instant::now();
                dispatcher.on_arrival(order, &mut ctx);
                measurements.record_decision_time(t0.elapsed().as_nanos());
                effects.clear();
            }
        } else {
            let mut ctx = SimCtx {
                now,
                fleet: &mut fleet,
                measurements: &mut measurements,
                oracle,
                weights: cfg.weights,
                exec: &exec,
                effects: &mut effects,
            };
            let t0 = Instant::now();
            dispatcher.on_check(&mut ctx);
            measurements.record_decision_time(t0.elapsed().as_nanos());
            effects.clear();
            next_check += cfg.check_period;
            // Drained: all arrivals delivered and nothing pending.
            if arrivals.peek().is_none() && dispatcher.pending() == 0 {
                break;
            }
        }
    }
    measurements
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Effect;
    use watter_core::{NodeId, OrderId, OrderOutcome, WorkerId};

    use watter_core::TravelCost;

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {}

    /// Trivial dispatcher: serve every order solo immediately; reject when
    /// no worker.
    struct Immediate {
        pending: usize,
    }

    impl Dispatcher for Immediate {
        fn on_arrival(&mut self, order: Order, ctx: &mut SimCtx<'_>) {
            match ctx.solo_group(&order).and_then(|g| ctx.dispatch_group(&g)) {
                Some(_) => {}
                None => ctx.reject(&order),
            }
        }

        fn on_check(&mut self, _ctx: &mut SimCtx<'_>) {}

        fn pending(&self) -> usize {
            self.pending
        }

        fn name(&self) -> String {
            "immediate".into()
        }
    }

    /// Records the interleaving of arrivals and checks.
    #[derive(Default)]
    struct Recorder {
        log: Vec<(char, Ts)>,
    }

    impl Dispatcher for Recorder {
        fn on_arrival(&mut self, order: Order, ctx: &mut SimCtx<'_>) {
            self.log.push(('a', ctx.now));
            ctx.reject(&order); // resolve immediately so the run drains
        }

        fn on_check(&mut self, ctx: &mut SimCtx<'_>) {
            self.log.push(('c', ctx.now));
        }

        fn pending(&self) -> usize {
            0
        }

        fn name(&self) -> String {
            "recorder".into()
        }
    }

    fn order(id: u32, p: u32, d: u32, release: Ts) -> Order {
        let direct = Line.cost(NodeId(p), NodeId(d));
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline: release + 3 * direct,
            wait_limit: direct,
            direct_cost: direct,
        }
    }

    #[test]
    fn immediate_dispatcher_serves_when_workers_free() {
        let orders = vec![order(0, 0, 5, 0), order(1, 2, 9, 30)];
        let workers = vec![
            Worker::new(WorkerId(0), NodeId(0), 4),
            Worker::new(WorkerId(1), NodeId(9), 4),
        ];
        let mut d = Immediate { pending: 0 };
        let m = run(orders, workers, &mut d, &Line, SimConfig::default());
        assert_eq!(m.total_orders, 2);
        assert_eq!(m.served_orders, 2);
        assert_eq!(m.service_rate(), 1.0);
        assert!(m.worker_travel > 0.0);
    }

    #[test]
    fn starved_fleet_rejects() {
        // One worker, two simultaneous distant orders.
        let orders = vec![order(0, 0, 9, 0), order(1, 0, 9, 1)];
        let workers = vec![Worker::new(WorkerId(0), NodeId(0), 4)];
        let mut d = Immediate { pending: 0 };
        let m = run(orders, workers, &mut d, &Line, SimConfig::default());
        assert_eq!(m.served_orders, 1);
        assert_eq!(m.rejected_orders, 1);
    }

    #[test]
    fn empty_order_stream_returns_pristine_measurements() {
        // Edge case: an empty stream must resolve at close with *exactly*
        // the default measurements — no synthetic check ticks, no decision
        // time (the monolithic loop used to run one check off the
        // `first_release = 0` fallback).
        let mut d = Immediate { pending: 0 };
        let (m, k) = run_with_kpis(
            vec![],
            vec![Worker::new(WorkerId(0), NodeId(0), 4)],
            &mut d,
            &Line,
            SimConfig::default(),
        );
        assert_eq!(m, Measurements::default());
        assert_eq!(k.checks, 0);
        assert_eq!(k.first_event, None);
    }

    #[test]
    fn zero_worker_fleet_with_no_orders_is_pristine() {
        let mut d = Immediate { pending: 0 };
        let (m, k) = run_with_kpis(vec![], vec![], &mut d, &Line, SimConfig::default());
        assert_eq!(m, Measurements::default());
        assert_eq!(k.fleet_size, 0);
        assert_eq!(k.checks, 0);
    }

    #[test]
    fn zero_worker_fleet_rejects_everything_cleanly() {
        let orders = vec![order(0, 0, 5, 0), order(1, 2, 9, 30)];
        let mut d = Immediate { pending: 0 };
        let m = run(orders, vec![], &mut d, &Line, SimConfig::default());
        assert_eq!(m.total_orders, 2);
        assert_eq!(m.rejected_orders, 2);
        assert_eq!(m.served_orders, 0);
        assert_eq!(m.worker_travel, 0.0);
    }

    /// The documented tie rule: an arrival releasing at exactly the next
    /// check instant is delivered *before* that check runs.
    #[test]
    fn arrival_at_check_instant_processed_before_the_check() {
        // First release 0 ⇒ checks at 10, 20, ...; the second order
        // releases exactly at the first check instant.
        let orders = vec![order(0, 0, 5, 0), order(1, 2, 9, 10)];
        let mut d = Recorder::default();
        run(
            orders.clone(),
            vec![Worker::new(WorkerId(0), NodeId(0), 4)],
            &mut d,
            &Line,
            SimConfig::default(),
        );
        assert_eq!(d.log, vec![('a', 0), ('a', 10), ('c', 10)]);
        // And the monolithic reference loop agrees.
        let mut dm = Recorder::default();
        run_monolithic(
            orders,
            vec![Worker::new(WorkerId(0), NodeId(0), 4)],
            &mut dm,
            &Line,
            SimConfig::default(),
        );
        assert_eq!(dm.log, vec![('a', 0), ('a', 10), ('c', 10)]);
    }

    /// The same tie rule observed through the core's effect stream.
    #[test]
    fn tie_effects_order_admitted_before_checked() {
        let mut core = DispatchCore::new(
            vec![Worker::new(WorkerId(0), NodeId(0), 4)],
            SimConfig::default(),
        );
        let mut d = Recorder::default();
        core.step(Event::Arrive(order(0, 0, 5, 0)), &mut d, &Line);
        core.step(Event::Arrive(order(1, 2, 9, 10)), &mut d, &Line);
        let fx = core.step(Event::Check, &mut d, &Line);
        let kinds: Vec<&'static str> = fx
            .iter()
            .map(|e| match e {
                Effect::Admitted { .. } => "admitted",
                Effect::Rejected { .. } => "rejected",
                Effect::Checked { .. } => "checked",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["admitted", "rejected", "admitted", "rejected", "checked"]
        );
        assert!(matches!(fx[4], Effect::Checked { at: 10, .. }));
    }

    #[test]
    fn stale_and_post_close_arrivals_are_refused() {
        use crate::core::RefuseReason;
        let mut core = DispatchCore::new(
            vec![Worker::new(WorkerId(0), NodeId(0), 4)],
            SimConfig::default(),
        );
        let mut d = Recorder::default();
        core.step(Event::Arrive(order(0, 0, 5, 0)), &mut d, &Line);
        core.step(Event::Check, &mut d, &Line); // clock advances to 10
        let fx = core.step(Event::Arrive(order(1, 2, 9, 3)), &mut d, &Line);
        assert_eq!(
            fx,
            vec![Effect::Refused {
                id: OrderId(1),
                release: 3,
                reason: RefuseReason::Stale
            }]
        );
        core.step(Event::Close, &mut d, &Line);
        let fx = core.step(Event::Arrive(order(2, 2, 9, 99)), &mut d, &Line);
        assert_eq!(
            fx,
            vec![Effect::Refused {
                id: OrderId(2),
                release: 99,
                reason: RefuseReason::Closed
            }]
        );
    }

    #[test]
    fn streamed_run_matches_batch_run() {
        let orders: Vec<Order> = (0..12u32)
            .map(|i| order(i, i % 7, (i * 3 + 1) % 9, (i as i64) * 7))
            .filter(|o| o.direct_cost > 0)
            .collect();
        let workers = vec![
            Worker::new(WorkerId(0), NodeId(0), 4),
            Worker::new(WorkerId(1), NodeId(8), 4),
        ];
        let mut db = Immediate { pending: 0 };
        let batch = run(
            orders.clone(),
            workers.clone(),
            &mut db,
            &Line,
            SimConfig::default(),
        );
        let mut ds = Immediate { pending: 0 };
        let out = run_stream(
            orders,
            workers,
            &mut ds,
            &Line,
            SimConfig::default(),
            IngestConfig::default(),
        );
        assert_eq!(out.measurements.without_timing(), batch.without_timing());
        assert_eq!(out.ingest.rejected, 0);
        assert!(out.ingest.admitted > 0);
    }

    #[test]
    fn measurements_track_outcome_kinds() {
        let o = order(0, 0, 5, 0);
        let mut m = Measurements::default();
        m.record(
            &o,
            &OrderOutcome::Served {
                detour: 0,
                response: 3,
                group_size: 1,
            },
            CostWeights::default(),
        );
        assert_eq!(m.served_orders, 1);
    }
}
