//! The simulation event loop.
//!
//! Interleaves order arrivals (sorted by release time) with the periodic
//! asynchronous checks of Algorithm 1, timing the dispatcher's decision
//! work to produce the paper's *Running Time* measurement. After the last
//! arrival, checks continue until every order reached a terminal outcome or
//! the drain horizon elapses.

use crate::dispatcher::{Dispatcher, SimCtx};
use crate::fleet::Fleet;
use std::time::Instant;
use watter_core::{
    CostWeights, DispatchParallelism, Dur, Exec, Measurements, Order, TravelBound, Ts, Worker,
};

/// Engine parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Period of the asynchronous checks (the paper's Δt, default 10 s).
    pub check_period: Dur,
    /// Extra-time weights (α, β).
    pub weights: CostWeights,
    /// Safety drain horizon after the last arrival; any order still pending
    /// then is force-rejected (prevents infinite loops on buggy
    /// dispatchers — with correct dispatchers everything resolves earlier).
    pub drain_horizon: Dur,
    /// Thread-pool size for the engine's own fan-out work (parallel
    /// nearest-idle fleet scans). Results are bit-identical for any
    /// setting; the default is fully sequential.
    pub parallelism: DispatchParallelism,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            check_period: 10,
            weights: CostWeights::default(),
            drain_horizon: 4 * 3600,
            parallelism: DispatchParallelism::SEQUENTIAL,
        }
    }
}

/// Run `dispatcher` over the order stream and return the measurements.
///
/// `orders` need not be sorted; the engine sorts by release time. The fleet
/// is rebuilt from `workers`, so repeated runs are independent.
pub fn run<D: Dispatcher>(
    mut orders: Vec<Order>,
    workers: Vec<Worker>,
    dispatcher: &mut D,
    oracle: &dyn TravelBound,
    cfg: SimConfig,
) -> Measurements {
    assert!(cfg.check_period > 0, "check period must be positive");
    orders.sort_by_key(|o| (o.release, o.id));
    let mut fleet = Fleet::new(workers);
    let mut measurements = Measurements::default();
    let exec = Exec::from_parallelism(cfg.parallelism);

    let first_release = orders.first().map(|o| o.release).unwrap_or(0);
    let last_release = orders.last().map(|o| o.release).unwrap_or(0);
    let mut next_check = first_release + cfg.check_period;
    let mut arrivals = orders.into_iter().peekable();
    let deadline = last_release + cfg.drain_horizon;

    loop {
        // Next event: arrival or periodic check, whichever is earlier;
        // arrivals at the same instant as a check run first (the check then
        // sees them pooled, matching Algorithm 1's ordering).
        let next_arrival = arrivals.peek().map(|o| o.release);
        let now: Ts = match next_arrival {
            Some(a) if a <= next_check => a,
            _ => next_check,
        };
        if now > deadline {
            break;
        }
        if next_arrival == Some(now) {
            while arrivals.peek().map(|o| o.release) == Some(now) {
                let order = arrivals.next().expect("peeked");
                let mut ctx = SimCtx {
                    now,
                    fleet: &mut fleet,
                    measurements: &mut measurements,
                    oracle,
                    weights: cfg.weights,
                    exec: &exec,
                };
                let t0 = Instant::now();
                dispatcher.on_arrival(order, &mut ctx);
                measurements.record_decision_time(t0.elapsed().as_nanos());
            }
        } else {
            let mut ctx = SimCtx {
                now,
                fleet: &mut fleet,
                measurements: &mut measurements,
                oracle,
                weights: cfg.weights,
                exec: &exec,
            };
            let t0 = Instant::now();
            dispatcher.on_check(&mut ctx);
            measurements.record_decision_time(t0.elapsed().as_nanos());
            next_check += cfg.check_period;
            // Drained: all arrivals delivered and nothing pending.
            if arrivals.peek().is_none() && dispatcher.pending() == 0 {
                break;
            }
        }
    }
    measurements
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{NodeId, OrderId, OrderOutcome, WorkerId};

    use watter_core::TravelCost;

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {}

    /// Trivial dispatcher: serve every order solo immediately; reject when
    /// no worker.
    struct Immediate {
        pending: usize,
    }

    impl Dispatcher for Immediate {
        fn on_arrival(&mut self, order: Order, ctx: &mut SimCtx<'_>) {
            match ctx.solo_group(&order).and_then(|g| ctx.dispatch_group(&g)) {
                Some(_) => {}
                None => ctx.reject(&order),
            }
        }

        fn on_check(&mut self, _ctx: &mut SimCtx<'_>) {}

        fn pending(&self) -> usize {
            self.pending
        }

        fn name(&self) -> String {
            "immediate".into()
        }
    }

    fn order(id: u32, p: u32, d: u32, release: Ts) -> Order {
        let direct = Line.cost(NodeId(p), NodeId(d));
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline: release + 3 * direct,
            wait_limit: direct,
            direct_cost: direct,
        }
    }

    #[test]
    fn immediate_dispatcher_serves_when_workers_free() {
        let orders = vec![order(0, 0, 5, 0), order(1, 2, 9, 30)];
        let workers = vec![
            Worker::new(WorkerId(0), NodeId(0), 4),
            Worker::new(WorkerId(1), NodeId(9), 4),
        ];
        let mut d = Immediate { pending: 0 };
        let m = run(orders, workers, &mut d, &Line, SimConfig::default());
        assert_eq!(m.total_orders, 2);
        assert_eq!(m.served_orders, 2);
        assert_eq!(m.service_rate(), 1.0);
        assert!(m.worker_travel > 0.0);
    }

    #[test]
    fn starved_fleet_rejects() {
        // One worker, two simultaneous distant orders.
        let orders = vec![order(0, 0, 9, 0), order(1, 0, 9, 1)];
        let workers = vec![Worker::new(WorkerId(0), NodeId(0), 4)];
        let mut d = Immediate { pending: 0 };
        let m = run(orders, workers, &mut d, &Line, SimConfig::default());
        assert_eq!(m.served_orders, 1);
        assert_eq!(m.rejected_orders, 1);
    }

    #[test]
    fn empty_order_stream_is_fine() {
        let mut d = Immediate { pending: 0 };
        let m = run(
            vec![],
            vec![Worker::new(WorkerId(0), NodeId(0), 4)],
            &mut d,
            &Line,
            SimConfig::default(),
        );
        assert_eq!(m.total_orders, 0);
    }

    #[test]
    fn measurements_track_outcome_kinds() {
        let o = order(0, 0, 5, 0);
        let mut m = Measurements::default();
        m.record(
            &o,
            &OrderOutcome::Served {
                detour: 0,
                response: 3,
                group_size: 1,
            },
            CostWeights::default(),
        );
        assert_eq!(m.served_orders, 1);
    }
}
