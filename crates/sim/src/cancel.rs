//! Rider impatience / cancellation model.
//!
//! Section VI-A: "Since the rider becomes more impatient, the order may be
//! canceled at any time, which is also considered as an expiration for
//! simplification." The paper's main experiments leave cancellation
//! implicit; this optional model makes it explicit for the robustness
//! ablation: at each periodic check a pooled order cancels with a hazard
//! that grows with the fraction of its maximum response time already
//! spent.

use watter_core::{Order, Ts};

/// Per-check cancellation hazard.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CancellationModel {
    /// Baseline per-check cancellation probability (mis-taps, plans
    /// changing) independent of waiting.
    pub base_hazard: f64,
    /// Impatience coefficient: extra probability at full waiting budget;
    /// scales quadratically with the waited fraction (riders tolerate
    /// short waits but abandon sharply near their limit).
    pub impatience: f64,
}

impl CancellationModel {
    /// No cancellations (the paper's main-experiment setting).
    pub const OFF: CancellationModel = CancellationModel {
        base_hazard: 0.0,
        impatience: 0.0,
    };

    /// A mild, realistic default for the robustness ablation.
    pub fn mild() -> Self {
        Self {
            base_hazard: 0.001,
            impatience: 0.02,
        }
    }

    /// Probability that `order` cancels during the check at `now`.
    pub fn hazard(&self, order: &Order, now: Ts) -> f64 {
        let max_wait = order.max_response().max(1) as f64;
        let frac = (order.response_at(now) as f64 / max_wait).clamp(0.0, 1.0);
        (self.base_hazard + self.impatience * frac * frac).clamp(0.0, 1.0)
    }

    /// Whether the model can ever cancel anything.
    pub fn is_active(&self) -> bool {
        self.base_hazard > 0.0 || self.impatience > 0.0
    }

    /// Deterministic cancellation draw: hashes (order id, timestamp, seed)
    /// into a uniform and compares against the hazard, so simulation runs
    /// stay reproducible without threading an RNG through the dispatcher.
    pub fn cancels(&self, order: &Order, now: Ts, seed: u64) -> bool {
        if !self.is_active() {
            return false;
        }
        let h = self.hazard(order, now);
        let mut x = seed
            ^ (order.id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (now as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
        // splitmix64 finalizer
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        u < h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{NodeId, OrderId};

    fn order(release: Ts, deadline: Ts) -> Order {
        Order {
            id: OrderId(0),
            pickup: NodeId(0),
            dropoff: NodeId(1),
            riders: 1,
            release,
            deadline,
            wait_limit: 100,
            direct_cost: 100,
        }
    }

    #[test]
    fn off_never_cancels() {
        let o = order(0, 1_000);
        for t in (0..900).step_by(10) {
            assert!(!CancellationModel::OFF.cancels(&o, t, 42));
        }
    }

    #[test]
    fn hazard_grows_with_waiting() {
        let m = CancellationModel::mild();
        let o = order(0, 1_000); // max response 900
        assert!(m.hazard(&o, 0) < m.hazard(&o, 450));
        assert!(m.hazard(&o, 450) < m.hazard(&o, 900));
        assert!(m.hazard(&o, 5_000) <= m.base_hazard + m.impatience + 1e-12);
    }

    #[test]
    fn draws_are_deterministic() {
        let m = CancellationModel::mild();
        let o = order(0, 1_000);
        for t in (0..900).step_by(50) {
            assert_eq!(m.cancels(&o, t, 7), m.cancels(&o, t, 7));
        }
    }

    #[test]
    fn heavy_impatience_cancels_most_waits() {
        let m = CancellationModel {
            base_hazard: 0.9,
            impatience: 0.0,
        };
        let o = order(0, 1_000);
        let cancelled = (0..1000).filter(|&s| m.cancels(&o, 500, s as u64)).count();
        assert!(cancelled > 800, "only {cancelled}/1000 cancelled");
    }
}
