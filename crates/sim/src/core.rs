//! The dispatch core: an explicit event-driven state machine.
//!
//! [`DispatchCore`] owns everything the simulation event loop used to
//! hold inline — the fleet, the clock, buffered arrivals, the periodic
//! check cadence and the metric accumulators — and exposes it as
//! `step(Event) -> Vec<Effect>` semantics. Drivers merely feed events:
//!
//! * the **batch driver** ([`crate::engine::run`]) queues a whole
//!   scenario, closes the stream and drains — bit-identical to the
//!   pre-refactor monolithic loop (kept as
//!   [`crate::engine::run_monolithic`] and pinned by
//!   `tests/streaming.rs`);
//! * the **streaming driver** ([`crate::engine::run_stream`]) interleaves
//!   ingest-validated arrivals with due checks, never materializing the
//!   stream;
//! * a future daemon front end (ROADMAP item 4) would feed events from a
//!   socket.
//!
//! # Event semantics
//!
//! * [`Event::Arrive`] buffers an order keyed by `(release, id)`. The
//!   core sorts/merges arrivals incrementally — streams need not be
//!   pre-sorted. Orders releasing before the clock, or arriving after
//!   [`Event::Close`], are refused with an explicit effect and touch no
//!   state.
//! * [`Event::Check`] advances to the next due instant `t` (the
//!   established cadence, or `min buffered release + check_period` before
//!   the first check anchors it): every buffered arrival with
//!   `release <= t` is delivered at its own release time first, then the
//!   periodic check runs at `t`.
//! * [`Event::Close`] declares the stream finished, enabling drain
//!   detection (and the drain-horizon safety deadline).
//!
//! # Deterministic tie handling
//!
//! An arrival releasing at **exactly** the next check instant is
//! delivered *before* that check runs — the check then sees it pooled,
//! matching Algorithm 1's ordering. This is a documented contract (not
//! scan-order luck): delivery drains the buffer up to and **including**
//! `t` before `on_check` fires, and `tests/streaming.rs` pins it.
//!
//! # Determinism
//!
//! Everything the core computes except wall-clock decision timing
//! (`Measurements::decision_nanos`, `Kpis::tick_nanos`) is a pure
//! function of the event sequence, so a snapshot taken between any two
//! steps and replayed through the tail reproduces the uninterrupted run
//! bit for bit (`tests/snapshot.rs`).

use crate::dispatcher::{Dispatcher, SimCtx};
use crate::engine::SimConfig;
use crate::fleet::Fleet;
use std::collections::BTreeMap;
use std::time::Instant;
use watter_core::{Kpis, Measurements, Order, OrderId, TravelBound, Ts, WorkerId};
use watter_obs::{Counter, Gauge, Recorder, TraceEvent, WindowField};

/// An input to the dispatch core.
#[derive(Clone, Debug)]
pub enum Event {
    /// A new order entered the system.
    Arrive(Order),
    /// Advance to the next due instant: deliver due arrivals, then run
    /// one periodic check (Algorithm 1's check loop).
    Check,
    /// No further arrivals will come; drain until every order resolves.
    Close,
}

/// Why an [`Event::Arrive`] was refused without touching state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefuseReason {
    /// The order's release time precedes the core's clock.
    Stale,
    /// The stream was already closed.
    Closed,
}

/// An observable consequence of applying one event.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect {
    /// An arrival was buffered for delivery at its release time.
    Queued {
        /// The order.
        id: OrderId,
        /// Its release time (= its delivery time).
        release: Ts,
    },
    /// An arrival was refused outright.
    Refused {
        /// The order.
        id: OrderId,
        /// Its release time.
        release: Ts,
        /// Why it was refused.
        reason: RefuseReason,
    },
    /// A buffered order was delivered to the dispatcher at its release.
    Admitted {
        /// The order.
        id: OrderId,
        /// Delivery instant.
        at: Ts,
    },
    /// An order was served (possibly as a group member).
    Served {
        /// The order.
        id: OrderId,
        /// Dispatch instant.
        at: Ts,
        /// The worker assigned, when the dispatch path knows it.
        worker: Option<WorkerId>,
        /// Size of the group it was served in.
        group_size: u32,
        /// Realized extra time (α·detour + β·response).
        extra: f64,
    },
    /// An order was rejected.
    Rejected {
        /// The order.
        id: OrderId,
        /// Rejection instant.
        at: Ts,
    },
    /// A periodic check ran.
    Checked {
        /// The check instant.
        at: Ts,
        /// Orders still pending inside the dispatcher afterwards.
        pending: usize,
    },
    /// The run is complete: stream closed, no buffered arrivals, nothing
    /// pending (or the drain horizon elapsed).
    Drained {
        /// The core clock at drain time.
        at: Ts,
    },
}

/// The dispatch state machine. See the module docs for event semantics.
#[derive(Debug)]
pub struct DispatchCore {
    cfg: SimConfig,
    fleet: Fleet,
    exec: watter_core::Exec,
    /// Arrivals buffered ahead of delivery, in delivery order.
    buffered: BTreeMap<(Ts, OrderId), Order>,
    /// The established check cadence; `None` until the first check runs
    /// (the cadence anchors at `min buffered release + check_period`).
    next_check: Option<Ts>,
    /// Latest instant the core has advanced to (`Ts::MIN` before any
    /// event applies, so arbitrarily early releases are never stale in a
    /// batch replay).
    clock: Ts,
    closed: bool,
    /// Largest queued release; with `drain_horizon` it bounds the drain.
    last_release: Ts,
    drained: bool,
    measurements: Measurements,
    kpis: Kpis,
    /// Scratch effect sink lent to [`SimCtx`] during dispatcher calls.
    effects: Vec<Effect>,
    /// Observability handle (disabled by default; see
    /// [`DispatchCore::set_recorder`]). Not part of snapshots — only
    /// the trace sequence number is carried.
    recorder: Recorder,
    /// Trace sequence number carried in from a restored snapshot; the
    /// next attached recorder resumes numbering from here so replays
    /// never double-count journal entries.
    restored_trace_seq: u64,
}

impl DispatchCore {
    /// A fresh core over `workers`.
    ///
    /// # Panics
    /// Panics if `cfg.check_period` is not positive.
    pub fn new(workers: Vec<watter_core::Worker>, cfg: SimConfig) -> Self {
        assert!(cfg.check_period > 0, "check period must be positive");
        let fleet = Fleet::new(workers);
        let kpis = Kpis::new(fleet.len());
        Self {
            exec: watter_core::Exec::from_parallelism(cfg.parallelism),
            cfg,
            fleet,
            buffered: BTreeMap::new(),
            next_check: None,
            clock: Ts::MIN,
            closed: false,
            last_release: Ts::MIN,
            drained: false,
            measurements: Measurements::default(),
            kpis,
            effects: Vec::new(),
            recorder: Recorder::disabled(),
            restored_trace_seq: 0,
        }
    }

    /// Attach an observability recorder. The core mirrors its effect
    /// stream into the registry (counters, window KPIs, trace events);
    /// outcomes are unaffected, so runs with and without a live
    /// recorder stay bit-identical. If this core was restored from a
    /// snapshot, the recorder's trace sequence resumes from the
    /// snapshot's position.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        recorder.bump_trace_seq_to(self.restored_trace_seq);
        self.recorder = recorder;
    }

    /// The attached observability handle (disabled unless
    /// [`DispatchCore::set_recorder`] was called).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Mirror one effect into the observability registry.
    fn observe(&self, e: &Effect) {
        match *e {
            Effect::Queued { .. } => self.recorder.incr(Counter::OrdersDispatched),
            Effect::Refused { .. } => {}
            Effect::Admitted { id, at } => {
                self.recorder.window_count(at, WindowField::Admitted);
                self.recorder
                    .trace(at, TraceEvent::OrderAdmitted { order: id.0 as u64 });
            }
            Effect::Served {
                id,
                at,
                worker,
                group_size,
                ..
            } => {
                self.recorder.incr(Counter::OrdersServed);
                self.recorder.window_count(at, WindowField::Served);
                self.recorder.trace(
                    at,
                    TraceEvent::OrderServed {
                        order: id.0 as u64,
                        worker: worker.map_or(u64::MAX, |w| w.0 as u64),
                        group_size: group_size as u64,
                    },
                );
            }
            Effect::Rejected { id, at } => {
                self.recorder.incr(Counter::OrdersRejected);
                self.recorder.window_count(at, WindowField::Rejected);
                self.recorder
                    .trace(at, TraceEvent::OrderRejected { order: id.0 as u64 });
            }
            Effect::Checked { at, pending } => {
                self.recorder.incr(Counter::Checks);
                self.recorder.window_count(at, WindowField::Checks);
                self.recorder.window_backlog(at, pending as u64, 0);
            }
            Effect::Drained { .. } => {}
        }
    }

    /// Apply one event, returning its observable effects in order.
    pub fn step<D: Dispatcher>(
        &mut self,
        event: Event,
        dispatcher: &mut D,
        oracle: &dyn TravelBound,
    ) -> Vec<Effect> {
        debug_assert!(self.effects.is_empty());
        match event {
            Event::Arrive(order) => self.apply_arrive(order),
            Event::Check => self.apply_check(dispatcher, oracle),
            Event::Close => self.apply_close(dispatcher),
        }
        let effects = std::mem::take(&mut self.effects);
        for e in &effects {
            if let Effect::Served { extra, .. } = e {
                self.kpis.record_extra(*extra);
            }
        }
        self.kpis
            .note_backlog(dispatcher.pending(), self.buffered.len());
        if self.recorder.is_enabled() {
            for e in &effects {
                self.observe(e);
            }
            self.recorder
                .gauge_set(Gauge::PoolPending, dispatcher.pending() as i64);
            self.recorder
                .gauge_set(Gauge::Backlog, self.buffered.len() as i64);
        }
        effects
    }

    fn apply_arrive(&mut self, order: Order) {
        let (id, release) = (order.id, order.release);
        if self.closed {
            self.effects.push(Effect::Refused {
                id,
                release,
                reason: RefuseReason::Closed,
            });
            return;
        }
        if release < self.clock {
            self.effects.push(Effect::Refused {
                id,
                release,
                reason: RefuseReason::Stale,
            });
            return;
        }
        self.last_release = self.last_release.max(release);
        self.buffered.insert((release, id), order);
        self.effects.push(Effect::Queued { id, release });
    }

    fn apply_check<D: Dispatcher>(&mut self, dispatcher: &mut D, oracle: &dyn TravelBound) {
        if self.drained {
            return;
        }
        let Some(t) = self.next_due() else {
            // No cadence anchor and nothing buffered: a check can only
            // resolve the run (nothing to deliver, no instant to check
            // at).
            if self.closed && dispatcher.pending() == 0 {
                self.drained = true;
                self.effects.push(Effect::Drained { at: self.clock });
            }
            return;
        };
        // Deliver every arrival due at or before `t`, each at its own
        // release instant — including `release == t`: the tie rule that
        // an arrival at exactly the check instant is pooled before the
        // check runs.
        let mut tick_nanos: u64 = 0;
        while let Some((&(release, _), _)) = self.buffered.first_key_value() {
            if release > t {
                break;
            }
            let (_, order) = self.buffered.pop_first().expect("peeked");
            self.clock = self.clock.max(release);
            self.kpis.note_event(release);
            self.effects.push(Effect::Admitted {
                id: order.id,
                at: release,
            });
            let mut ctx = SimCtx {
                now: release,
                fleet: &mut self.fleet,
                measurements: &mut self.measurements,
                oracle,
                weights: self.cfg.weights,
                exec: &self.exec,
                effects: &mut self.effects,
            };
            let t0 = Instant::now();
            dispatcher.on_arrival(order, &mut ctx);
            let nanos = t0.elapsed().as_nanos();
            self.measurements.record_decision_time(nanos);
            tick_nanos += nanos as u64;
        }
        // Safety deadline: once the stream is closed, checks stop
        // `drain_horizon` after the last release (matching the
        // monolithic loop, which broke *before* running such a check).
        if self.closed && t > self.last_release + self.cfg.drain_horizon {
            self.drained = true;
            self.effects.push(Effect::Drained { at: self.clock });
            return;
        }
        self.clock = t;
        self.kpis.note_event(t);
        {
            let mut ctx = SimCtx {
                now: t,
                fleet: &mut self.fleet,
                measurements: &mut self.measurements,
                oracle,
                weights: self.cfg.weights,
                exec: &self.exec,
                effects: &mut self.effects,
            };
            let t0 = Instant::now();
            dispatcher.on_check(&mut ctx);
            let nanos = t0.elapsed().as_nanos();
            self.measurements.record_decision_time(nanos);
            tick_nanos += nanos as u64;
        }
        self.next_check = Some(t + self.cfg.check_period);
        self.kpis.record_tick(tick_nanos);
        self.effects.push(Effect::Checked {
            at: t,
            pending: dispatcher.pending(),
        });
        if self.closed && self.buffered.is_empty() && dispatcher.pending() == 0 {
            self.drained = true;
            self.effects.push(Effect::Drained { at: t });
        }
    }

    fn apply_close<D: Dispatcher>(&mut self, dispatcher: &mut D) {
        if self.closed {
            return;
        }
        self.closed = true;
        // An empty run (no orders queued or pending) resolves cleanly at
        // close — no synthetic check ticks, measurements stay pristine.
        if self.buffered.is_empty() && dispatcher.pending() == 0 {
            self.drained = true;
            self.effects.push(Effect::Drained { at: self.clock });
        }
    }

    /// The instant the next [`Event::Check`] would run at, or `None` when
    /// a check could not run (drained, or nothing buffered before the
    /// cadence anchors). Streaming drivers compare this against the next
    /// arrival's release: checks strictly *before* it run first, while an
    /// arrival at exactly this instant must be fed first (the tie rule).
    pub fn next_due(&self) -> Option<Ts> {
        if self.drained {
            return None;
        }
        if let Some(nc) = self.next_check {
            return Some(nc);
        }
        self.buffered
            .first_key_value()
            .map(|(&(r, _), _)| r + self.cfg.check_period)
    }

    /// Whether the run is complete.
    pub fn is_drained(&self) -> bool {
        self.drained
    }

    /// Whether [`Event::Close`] was applied.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Latest instant the core has advanced to (`Ts::MIN` before any
    /// event applied).
    pub fn clock(&self) -> Ts {
        self.clock
    }

    /// Arrivals buffered ahead of delivery.
    pub fn backlog(&self) -> usize {
        self.buffered.len()
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The accumulated measurements.
    pub fn measurements(&self) -> &Measurements {
        &self.measurements
    }

    /// The accumulated KPIs.
    pub fn kpis(&self) -> &Kpis {
        &self.kpis
    }

    /// The fleet (diagnostics).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Consume the core, returning the accumulators.
    pub fn finish(self) -> (Measurements, Kpis) {
        (self.measurements, self.kpis)
    }

    pub(crate) fn snapshot_parts(&self) -> crate::snapshot::CoreState {
        crate::snapshot::CoreState {
            config: self.cfg,
            clock: self.clock,
            next_check: self.next_check,
            closed: self.closed,
            last_release: self.last_release,
            drained: self.drained,
            buffered: self.buffered.values().cloned().collect(),
            fleet: self.fleet.snapshot(),
            measurements: self.measurements.clone(),
            kpis: self.kpis.clone(),
            trace_seq: self.recorder.trace_seq().max(self.restored_trace_seq),
        }
    }

    pub(crate) fn from_snapshot_parts(state: &crate::snapshot::CoreState) -> Self {
        let mut core = Self::new(state.fleet.workers.clone(), state.config);
        core.fleet.restore_state(&state.fleet);
        core.buffered = state
            .buffered
            .iter()
            .map(|o| ((o.release, o.id), o.clone()))
            .collect();
        core.next_check = state.next_check;
        core.clock = state.clock;
        core.closed = state.closed;
        core.last_release = state.last_release;
        core.drained = state.drained;
        core.measurements = state.measurements.clone();
        core.kpis = state.kpis.clone();
        core.restored_trace_seq = state.trace_seq;
        core
    }
}
