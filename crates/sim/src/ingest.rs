//! Streaming order ingest: the validation front end.
//!
//! [`OrderIngest`] sits between a raw order source and the dispatch core
//! — the shape of angstrom's order-pool split (ingest → validation →
//! pooled storage). Each submitted order passes a validation stage that
//! rejects malformed, expired and out-of-bounds orders with typed
//! [`IngestError`]s before they ever reach the core; per-reason counters
//! and a backlog watermark accumulate in [`IngestStats`].
//!
//! Validation is *structural*: an order the simulator could process but
//! would certainly reject (e.g. already unservable at its own release)
//! is filtered here with [`IngestError::Expired`] rather than burning a
//! pool insert. Orders produced by `watter-workload` scenarios satisfy
//! every check (the generator asserts `deadline > release + direct`,
//! positive direct cost, one rider), so streaming a scenario through
//! ingest admits everything — which is what makes the streaming driver's
//! stats comparable to the batch driver's (the CI streaming smoke diffs
//! them).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use watter_core::{NodeId, Order, OrderId, Ts};

/// Why a raw order *line* was refused before reaching the core: either
/// the bytes were not a well-formed order at all, or the decoded order
/// failed a validation check. The stream path never panics on bad input —
/// a truncated or garbage line is a counted, typed rejection
/// ([`IngestStats::malformed`]), exactly like any other door rejection.
#[derive(Clone, Debug, PartialEq)]
pub enum LineError {
    /// The line failed to parse as an [`Order`] (truncated JSON, wrong
    /// shape, non-JSON bytes). Carries the parser's message.
    Malformed(String),
    /// The line decoded but the order failed validation.
    Invalid(IngestError),
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(msg) => write!(f, "malformed order line: {msg}"),
            Self::Invalid(e) => write!(f, "invalid order: {e}"),
        }
    }
}

impl std::error::Error for LineError {}

/// Ingest validation parameters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestConfig {
    /// Number of road-network nodes; orders referencing `NodeId >= nodes`
    /// are out of bounds. `None` skips the bounds check (opaque node
    /// spaces).
    pub nodes: Option<u32>,
}

impl IngestConfig {
    /// Config validating node ids against a road network of `nodes`
    /// nodes.
    pub fn for_nodes(nodes: usize) -> Self {
        Self {
            nodes: Some(nodes as u32),
        }
    }
}

/// Why an order was refused at the ingest stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// `riders == 0`: nobody to transport.
    ZeroRiders,
    /// Pick-up or drop-off outside the road network.
    NodeOutOfBounds(NodeId),
    /// Pick-up equals drop-off.
    DegenerateTrip,
    /// Cached direct cost is not positive (corrupt or unroutable trip).
    NonPositiveDirectCost,
    /// Negative wait limit.
    NegativeWaitLimit,
    /// Already unservable at its own release: `release + direct_cost >=
    /// deadline`, so even an instant solo dispatch misses the deadline.
    Expired,
    /// Release time precedes the submission clock (late feed).
    Stale {
        /// The ingest clock at submission.
        clock: Ts,
    },
    /// An order with this id was already admitted.
    DuplicateId,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroRiders => write!(f, "zero riders"),
            Self::NodeOutOfBounds(n) => write!(f, "node {n} out of bounds"),
            Self::DegenerateTrip => write!(f, "pick-up equals drop-off"),
            Self::NonPositiveDirectCost => write!(f, "non-positive direct cost"),
            Self::NegativeWaitLimit => write!(f, "negative wait limit"),
            Self::Expired => write!(f, "expired before release"),
            Self::Stale { clock } => write!(f, "release precedes clock {clock}"),
            Self::DuplicateId => write!(f, "duplicate order id"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Ingest counters (serializable; the CLI prints them per streamed run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Orders admitted to the core.
    pub admitted: u64,
    /// Orders refused, any reason.
    pub rejected: u64,
    /// Refusals: zero riders.
    pub zero_riders: u64,
    /// Refusals: node out of bounds.
    pub out_of_bounds: u64,
    /// Refusals: degenerate trip.
    pub degenerate: u64,
    /// Refusals: non-positive direct cost.
    pub bad_cost: u64,
    /// Refusals: negative wait limit.
    pub bad_wait: u64,
    /// Refusals: expired at release.
    pub expired: u64,
    /// Refusals: stale release.
    pub stale: u64,
    /// Refusals: duplicate id.
    pub duplicate: u64,
    /// Refusals: line did not parse as an order at all
    /// ([`LineError::Malformed`]; only the line-oriented
    /// [`OrderIngest::admit_line`] path can count these).
    pub malformed: u64,
    /// High-water mark of the observed backlog (buffered arrivals plus
    /// dispatcher-pending orders at submission time).
    pub peak_backlog: u64,
}

impl IngestStats {
    fn count(&mut self, err: IngestError) {
        self.rejected += 1;
        match err {
            IngestError::ZeroRiders => self.zero_riders += 1,
            IngestError::NodeOutOfBounds(_) => self.out_of_bounds += 1,
            IngestError::DegenerateTrip => self.degenerate += 1,
            IngestError::NonPositiveDirectCost => self.bad_cost += 1,
            IngestError::NegativeWaitLimit => self.bad_wait += 1,
            IngestError::Expired => self.expired += 1,
            IngestError::Stale { .. } => self.stale += 1,
            IngestError::DuplicateId => self.duplicate += 1,
        }
    }
}

/// The streaming validation front end.
#[derive(Clone, Debug, Default)]
pub struct OrderIngest {
    cfg: IngestConfig,
    seen: BTreeSet<OrderId>,
    stats: IngestStats,
}

impl OrderIngest {
    /// A fresh ingest stage.
    pub fn new(cfg: IngestConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    /// Parse one newline-delimited JSON order line and validate it for
    /// submission at `clock` — the daemon's door. Malformed bytes are a
    /// typed, counted rejection ([`IngestStats::malformed`]), never a
    /// panic; well-formed orders go through the same validation as
    /// [`OrderIngest::admit`].
    pub fn admit_line(&mut self, line: &str, clock: Ts) -> Result<Order, LineError> {
        let order = match Self::parse_line(line) {
            Ok(order) => order,
            Err(e) => {
                self.note_malformed();
                return Err(e);
            }
        };
        self.admit(order, clock).map_err(LineError::Invalid)
    }

    /// Parse one wire line into an [`Order`] without validating or
    /// counting anything. Split out of [`OrderIngest::admit_line`] for
    /// callers that need the decoded order *before* committing to
    /// admission (the daemon runs due checks against the order's release
    /// first, then admits at the advanced clock) — pair a failure with
    /// [`OrderIngest::note_malformed`] so the counters stay complete.
    pub fn parse_line(line: &str) -> Result<Order, LineError> {
        serde_json::from_str(line).map_err(|e| LineError::Malformed(format!("{e:?}")))
    }

    /// Count one malformed-line rejection (pairs with
    /// [`OrderIngest::parse_line`]).
    pub fn note_malformed(&mut self) {
        self.stats.rejected += 1;
        self.stats.malformed += 1;
    }

    /// Validate `order` for submission at `clock`. `Ok` admits the order
    /// (the caller feeds it to the core); `Err` drops it, counted in
    /// [`IngestStats`].
    pub fn admit(&mut self, order: Order, clock: Ts) -> Result<Order, IngestError> {
        match self.validate(&order, clock) {
            Ok(()) => {
                self.seen.insert(order.id);
                self.stats.admitted += 1;
                Ok(order)
            }
            Err(e) => {
                self.stats.count(e);
                Err(e)
            }
        }
    }

    fn validate(&self, order: &Order, clock: Ts) -> Result<(), IngestError> {
        if self.seen.contains(&order.id) {
            return Err(IngestError::DuplicateId);
        }
        if order.riders == 0 {
            return Err(IngestError::ZeroRiders);
        }
        if let Some(n) = self.cfg.nodes {
            for node in [order.pickup, order.dropoff] {
                if node.0 >= n {
                    return Err(IngestError::NodeOutOfBounds(node));
                }
            }
        }
        if order.pickup == order.dropoff {
            return Err(IngestError::DegenerateTrip);
        }
        if order.direct_cost <= 0 {
            return Err(IngestError::NonPositiveDirectCost);
        }
        if order.wait_limit < 0 {
            return Err(IngestError::NegativeWaitLimit);
        }
        if order.release + order.direct_cost >= order.deadline {
            return Err(IngestError::Expired);
        }
        if order.release < clock {
            return Err(IngestError::Stale { clock });
        }
        Ok(())
    }

    /// Track the pipeline backlog (pool-size watermark) after a
    /// submission.
    pub fn observe_backlog(&mut self, backlog: usize) {
        self.stats.peak_backlog = self.stats.peak_backlog.max(backlog as u64);
    }

    /// The accumulated counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Serializable runtime state for daemon checkpoints: the duplicate-id
    /// filter and the counters. The config is construction-time state and
    /// rides outside, like every other snapshot in this workspace.
    pub fn snapshot(&self) -> IngestSnapshot {
        IngestSnapshot {
            seen: self.seen.iter().copied().collect(),
            stats: self.stats,
        }
    }

    /// Rebuild an ingest stage from checkpointed state.
    pub fn restore(cfg: IngestConfig, snap: &IngestSnapshot) -> Self {
        Self {
            cfg,
            seen: snap.seen.iter().copied().collect(),
            stats: snap.stats,
        }
    }
}

/// Checkpointable runtime state of an [`OrderIngest`] (see
/// [`OrderIngest::snapshot`]). A recovered daemon must keep rejecting
/// duplicates admitted before the crash and keep counting from the
/// checkpointed totals, or its final stats would diverge from the
/// uninterrupted run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IngestSnapshot {
    /// Order ids admitted so far (the duplicate filter).
    pub seen: Vec<OrderId>,
    /// The accumulated counters.
    pub stats: IngestStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(id: u32) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(0),
            dropoff: NodeId(5),
            riders: 1,
            release: 100,
            deadline: 400,
            wait_limit: 60,
            direct_cost: 120,
        }
    }

    #[test]
    fn valid_order_admitted() {
        let mut ing = OrderIngest::new(IngestConfig::for_nodes(10));
        assert!(ing.admit(order(0), 0).is_ok());
        let s = ing.stats();
        assert_eq!((s.admitted, s.rejected), (1, 0));
    }

    #[test]
    fn typed_rejections() {
        let mut ing = OrderIngest::new(IngestConfig::for_nodes(10));
        let cases: Vec<(Order, IngestError)> = vec![
            (
                Order {
                    riders: 0,
                    ..order(1)
                },
                IngestError::ZeroRiders,
            ),
            (
                Order {
                    dropoff: NodeId(10),
                    ..order(2)
                },
                IngestError::NodeOutOfBounds(NodeId(10)),
            ),
            (
                Order {
                    dropoff: NodeId(0),
                    ..order(3)
                },
                IngestError::DegenerateTrip,
            ),
            (
                Order {
                    direct_cost: 0,
                    ..order(4)
                },
                IngestError::NonPositiveDirectCost,
            ),
            (
                Order {
                    wait_limit: -1,
                    ..order(5)
                },
                IngestError::NegativeWaitLimit,
            ),
            (
                Order {
                    deadline: 220,
                    ..order(6)
                },
                IngestError::Expired,
            ),
        ];
        for (o, want) in cases {
            assert_eq!(ing.admit(o, 0).unwrap_err(), want);
        }
        assert_eq!(ing.stats().rejected, 6);
        assert_eq!(ing.stats().admitted, 0);
    }

    #[test]
    fn stale_and_duplicate() {
        let mut ing = OrderIngest::new(IngestConfig::default());
        assert!(ing.admit(order(7), 100).is_ok());
        assert_eq!(
            ing.admit(order(7), 100).unwrap_err(),
            IngestError::DuplicateId
        );
        assert_eq!(
            ing.admit(order(8), 150).unwrap_err(),
            IngestError::Stale { clock: 150 }
        );
        let s = ing.stats();
        assert_eq!((s.duplicate, s.stale), (1, 1));
    }

    #[test]
    fn malformed_lines_are_typed_rejections_not_panics() {
        let mut ing = OrderIngest::new(IngestConfig::for_nodes(10));
        // A truncated order, plain garbage, an empty line, and a valid
        // JSON value of the wrong shape: all must come back as typed
        // `Malformed` errors and count in the stats.
        let valid = serde_json::to_string(&order(1)).expect("serialize");
        let truncated = &valid[..valid.len() - 7];
        for bad in [truncated, "not json at all", "", "[1,2,3]", "{\"id\":1}"] {
            let got = ing.admit_line(bad, 0);
            assert!(
                matches!(got, Err(LineError::Malformed(_))),
                "line {bad:?} must be malformed, got {got:?}"
            );
        }
        let s = ing.stats();
        assert_eq!((s.malformed, s.rejected, s.admitted), (5, 5, 0));
        // A well-formed line still goes through full validation.
        assert!(ing.admit_line(&valid, 0).is_ok());
        let invalid = serde_json::to_string(&Order {
            riders: 0,
            ..order(2)
        })
        .expect("serialize");
        assert_eq!(
            ing.admit_line(&invalid, 0).unwrap_err(),
            LineError::Invalid(IngestError::ZeroRiders)
        );
    }

    #[test]
    fn snapshot_restores_duplicate_filter_and_counters() {
        let mut ing = OrderIngest::new(IngestConfig::default());
        assert!(ing.admit(order(1), 0).is_ok());
        assert!(ing.admit_line("garbage", 0).is_err());
        let snap = ing.snapshot();
        let text = serde_json::to_string(&snap).expect("serialize");
        let back: IngestSnapshot = serde_json::from_str(&text).expect("parse");
        let mut restored = OrderIngest::restore(IngestConfig::default(), &back);
        assert_eq!(restored.stats(), ing.stats());
        // The restored stage still refuses the pre-crash admission.
        assert_eq!(
            restored.admit(order(1), 0).unwrap_err(),
            IngestError::DuplicateId
        );
    }

    #[test]
    fn backlog_watermark() {
        let mut ing = OrderIngest::new(IngestConfig::default());
        ing.observe_backlog(3);
        ing.observe_backlog(9);
        ing.observe_backlog(4);
        assert_eq!(ing.stats().peak_backlog, 9);
    }
}
