//! # watter-sim
//!
//! Event-driven ridesharing simulator.
//!
//! The engine replays an order stream against a dispatcher (WATTER variants
//! or the baselines in `watter-baselines`) over a shared fleet and road
//! network, collecting the paper's four measurements. Components:
//!
//! * [`fleet`] — worker runtime state (location, busy-until), nearest-idle
//!   queries;
//! * [`engine`] — the event loop interleaving order arrivals with the
//!   asynchronous periodic checks of Algorithm 1;
//! * [`dispatcher`] — the [`Dispatcher`] trait plus [`WatterDispatcher`],
//!   the order-pool management algorithm parameterized by a decision policy
//!   (Algorithm 1 + Algorithm 2);
//! * [`env`] — demand/supply snapshot construction over the grid index.
//!
//! The engine is oracle-agnostic: [`engine::run`] takes any
//! `&dyn TravelBound` (the `TravelCost` super-trait with admissible
//! lower bounds, trivially satisfied via the default `0` bound), so a
//! simulation runs unchanged on the dense all-pairs table or the landmark
//! A* oracle (`watter_road::CityOracle`, selected by
//! `watter_core::OracleKind` when a scenario is built) — including
//! 10⁵-node cities where only the latter fits in memory. Wrap the oracle
//! in `watter_road::CachedOracle` to memoize repeated point queries;
//! results are bit-identical either way.

pub mod cancel;
pub mod dispatcher;
pub mod engine;
pub mod env;
pub mod fleet;

pub use cancel::CancellationModel;
pub use dispatcher::{Dispatcher, SimCtx, WatterConfig, WatterDispatcher};
pub use engine::{run, SimConfig};
pub use env::build_env;
pub use fleet::Fleet;
