//! # watter-sim
//!
//! Event-driven ridesharing simulator, layered as a reusable **dispatch
//! core** plus thin **drivers**.
//!
//! The core replays an order stream against a dispatcher (WATTER variants
//! or the baselines in `watter-baselines`) over a shared fleet and road
//! network, collecting the paper's four measurements plus an operational
//! KPI surface. Components:
//!
//! * [`core`] — [`DispatchCore`], the explicit event-driven state machine
//!   (`step(Event) -> Vec<Effect>`): owns the fleet, clock, buffered
//!   arrivals, check cadence and metric accumulators;
//! * [`engine`] — the drivers: [`run`]/[`run_with_kpis`] (batch, proven
//!   bit-identical to the pre-refactor monolithic loop) and
//!   [`run_stream`] (streaming, through ingest validation);
//! * [`ingest`] — [`OrderIngest`], the streaming validation front end
//!   (typed rejections, per-reason counters, backlog watermark);
//! * [`snapshot`] — [`DispatchSnapshot`]: serde-serializable capture of a
//!   run between any two events; `restore + replay(tail)` reproduces the
//!   uninterrupted run bit for bit;
//! * [`checkpoint`] — [`CheckpointStore`]: atomic, checksum-headed,
//!   generation-rotated persistence for daemon checkpoints, with typed
//!   integrity errors and fallback recovery;
//! * [`daemon`] — [`Daemon`], the long-lived service driver: line-oriented
//!   ingest, periodic checkpointing, watermark backpressure
//!   ([`BackpressurePolicy`]) and deterministic fault injection
//!   (`watter_core::FaultPlan`), with crash recovery proven bit-identical
//!   by `tests/chaos.rs`;
//! * [`fleet`] — worker runtime state (location, busy-until),
//!   nearest-idle queries;
//! * [`dispatcher`] — the [`Dispatcher`] trait plus [`WatterDispatcher`],
//!   the order-pool management algorithm parameterized by a decision
//!   policy (Algorithm 1 + Algorithm 2);
//! * [`env`] — demand/supply snapshot construction over the grid index.
//!
//! The core is oracle-agnostic: every driver takes any
//! `&dyn TravelBound` (the `TravelCost` super-trait with admissible
//! lower bounds, trivially satisfied via the default `0` bound), so a
//! simulation runs unchanged on the dense all-pairs table or the landmark
//! A* oracle (`watter_road::CityOracle`, selected by
//! `watter_core::OracleKind` when a scenario is built) — including
//! 10⁵-node cities where only the latter fits in memory. Wrap the oracle
//! in `watter_road::CachedOracle` to memoize repeated point queries;
//! results are bit-identical either way.

pub mod cancel;
pub mod checkpoint;
pub mod core;
pub mod daemon;
pub mod dispatcher;
pub mod engine;
pub mod env;
pub mod fleet;
pub mod ingest;
pub mod snapshot;

pub use self::core::{DispatchCore, Effect, Event, RefuseReason};
pub use cancel::CancellationModel;
pub use checkpoint::{CheckpointError, CheckpointOps, CheckpointStore};
pub use daemon::{
    fault_lines, BackpressurePolicy, Daemon, DaemonCheckpoint, DaemonConfig, DaemonError,
    DaemonOutput, FeedOutcome, MetricsReport,
};
pub use dispatcher::{DegradableDispatcher, Dispatcher, SimCtx, WatterConfig, WatterDispatcher};
pub use engine::{
    run, run_recorded, run_stream, run_stream_recorded, run_with_kpis, SimConfig, StreamOutput,
};
pub use env::build_env;
pub use fleet::Fleet;
pub use ingest::{IngestConfig, IngestError, IngestSnapshot, IngestStats, LineError, OrderIngest};
pub use snapshot::{
    DispatchSnapshot, DispatcherState, FleetSnapshot, SnapshotDispatcher, SnapshotError,
};
