//! Worker fleet runtime state.
//!
//! The paper's worker model (Definition 2): a worker is **idle** or
//! **busy** delivering exactly one order group; after the last drop-off it
//! becomes idle at that location. The fleet tracks `(location, busy_until)`
//! per worker and answers nearest-idle queries.

use watter_core::{Dur, Exec, NodeId, TravelCost, Ts, Worker, WorkerId};

/// Mutable runtime state of one worker.
#[derive(Clone, Copy, Debug)]
struct WorkerState {
    loc: NodeId,
    busy_until: Ts,
}

/// The worker fleet.
#[derive(Clone, Debug)]
pub struct Fleet {
    workers: Vec<Worker>,
    state: Vec<WorkerState>,
}

impl Fleet {
    /// Build a fleet; every worker starts idle at its home location.
    pub fn new(workers: Vec<Worker>) -> Self {
        let state = workers
            .iter()
            .map(|w| WorkerState {
                loc: w.home,
                busy_until: Ts::MIN,
            })
            .collect();
        Self { workers, state }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Static description of a worker.
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.workers[id.index()]
    }

    /// Current location of a worker (for busy workers: the location where
    /// they will next become idle).
    pub fn location(&self, id: WorkerId) -> NodeId {
        self.state[id.index()].loc
    }

    /// Whether the worker is idle at `now`.
    pub fn is_idle(&self, id: WorkerId, now: Ts) -> bool {
        self.state[id.index()].busy_until <= now
    }

    /// When the worker becomes idle.
    pub fn busy_until(&self, id: WorkerId) -> Ts {
        self.state[id.index()].busy_until
    }

    /// Iterate over idle workers at `now`.
    pub fn idle_workers(&self, now: Ts) -> impl Iterator<Item = WorkerId> + '_ {
        self.state
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.busy_until <= now)
            .map(|(i, _)| WorkerId(i as u32))
    }

    /// Locations of idle workers at `now` (for supply snapshots).
    pub fn idle_locations(&self, now: Ts) -> impl Iterator<Item = NodeId> + '_ {
        self.state
            .iter()
            .filter(move |s| s.busy_until <= now)
            .map(|s| s.loc)
    }

    /// Count idle workers at `now`.
    pub fn idle_count(&self, now: Ts) -> usize {
        self.state.iter().filter(|s| s.busy_until <= now).count()
    }

    /// The idle worker closest to `target` (by travel time) with capacity
    /// at least `min_capacity`, or `None` if no such worker is idle.
    ///
    /// Ties on approach cost break toward the **lowest `WorkerId`** — an
    /// explicit part of the contract, not an accident of scan order, so
    /// the parallel chunked scan ([`Fleet::nearest_idle_par`]) can
    /// reproduce it exactly from per-chunk minima.
    pub fn nearest_idle<C: TravelCost>(
        &self,
        target: NodeId,
        now: Ts,
        min_capacity: u32,
        oracle: &C,
    ) -> Option<WorkerId> {
        let mut best: Option<(Dur, WorkerId)> = None;
        for (i, s) in self.state.iter().enumerate() {
            if s.busy_until > now || self.workers[i].capacity < min_capacity {
                continue;
            }
            let d = oracle.cost(s.loc, target);
            // Lexicographic (cost, id): strict improvement only, so the
            // lowest id among equidistant workers wins deterministically.
            if best.is_none_or(|(bd, bid)| (d, WorkerId(i as u32)) < (bd, bid)) {
                best = Some((d, WorkerId(i as u32)));
            }
        }
        best.map(|(_, id)| id)
    }

    /// [`Fleet::nearest_idle`] with the approach-cost queries fanned out
    /// over `exec`'s threads (worthwhile when each query is an A* search
    /// on a large city). Per-chunk `(cost, WorkerId)` minima are merged
    /// lexicographically, which is the same total order the sequential
    /// scan minimizes — identical result for every thread count.
    pub fn nearest_idle_par<C: TravelCost + ?Sized>(
        &self,
        target: NodeId,
        now: Ts,
        min_capacity: u32,
        oracle: &C,
        exec: &Exec,
    ) -> Option<WorkerId> {
        if !exec.is_parallel() {
            return self.nearest_idle(target, now, min_capacity, &oracle);
        }
        let eligible: Vec<usize> = (0..self.workers.len())
            .filter(|&i| {
                self.state[i].busy_until <= now && self.workers[i].capacity >= min_capacity
            })
            .collect();
        exec.map(&eligible, |&i| {
            (oracle.cost(self.state[i].loc, target), WorkerId(i as u32))
        })
        .into_iter()
        .min()
        .map(|(_, id)| id)
    }

    /// Capture the fleet's serializable state.
    pub fn snapshot(&self) -> crate::snapshot::FleetSnapshot {
        crate::snapshot::FleetSnapshot {
            workers: self.workers.clone(),
            locations: self.state.iter().map(|s| s.loc).collect(),
            busy_until: self.state.iter().map(|s| s.busy_until).collect(),
        }
    }

    /// Overwrite runtime state from a snapshot taken of this roster.
    /// Callers validate vector alignment (`DispatchCore::restore`).
    pub(crate) fn restore_state(&mut self, snap: &crate::snapshot::FleetSnapshot) {
        debug_assert_eq!(self.workers.len(), snap.locations.len());
        for (i, s) in self.state.iter_mut().enumerate() {
            s.loc = snap.locations[i];
            s.busy_until = snap.busy_until[i];
        }
    }

    /// Mark a worker busy until `busy_until`, ending at `end_loc`.
    ///
    /// # Panics
    /// Panics (debug) if the worker was already busy.
    pub fn assign(&mut self, id: WorkerId, end_loc: NodeId, now: Ts, travel: Dur) {
        let s = &mut self.state[id.index()];
        debug_assert!(s.busy_until <= now, "assigning busy worker {id}");
        s.loc = end_loc;
        s.busy_until = now + travel;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }

    fn fleet() -> Fleet {
        Fleet::new(vec![
            Worker::new(WorkerId(0), NodeId(0), 2),
            Worker::new(WorkerId(1), NodeId(10), 4),
            Worker::new(WorkerId(2), NodeId(20), 4),
        ])
    }

    #[test]
    fn all_start_idle_at_home() {
        let f = fleet();
        assert_eq!(f.idle_count(0), 3);
        assert_eq!(f.location(WorkerId(1)), NodeId(10));
    }

    #[test]
    fn nearest_idle_by_travel_time() {
        let f = fleet();
        assert_eq!(f.nearest_idle(NodeId(8), 0, 1, &Line), Some(WorkerId(1)));
        assert_eq!(f.nearest_idle(NodeId(2), 0, 1, &Line), Some(WorkerId(0)));
    }

    #[test]
    fn capacity_filter_applies() {
        let f = fleet();
        // Worker 0 (capacity 2) is closest to node 2 but we need 3 seats.
        assert_eq!(f.nearest_idle(NodeId(2), 0, 3, &Line), Some(WorkerId(1)));
    }

    #[test]
    fn assignment_makes_worker_busy_then_idle() {
        let mut f = fleet();
        f.assign(WorkerId(0), NodeId(5), 100, 60);
        assert!(!f.is_idle(WorkerId(0), 100));
        assert!(!f.is_idle(WorkerId(0), 159));
        assert!(f.is_idle(WorkerId(0), 160));
        assert_eq!(f.location(WorkerId(0)), NodeId(5));
        assert_eq!(f.idle_count(100), 2);
    }

    #[test]
    fn equidistant_workers_tie_break_by_lowest_id() {
        // Workers 1 (node 10) and 2 (node 20) are both 50 from node 15;
        // the contract picks the lower WorkerId regardless of scan order
        // or thread count.
        let f = fleet();
        assert_eq!(f.nearest_idle(NodeId(15), 0, 3, &Line), Some(WorkerId(1)));
        for threads in [1, 2, 4, 8] {
            let exec = Exec::new(threads);
            assert_eq!(
                f.nearest_idle_par(NodeId(15), 0, 3, &Line, &exec),
                Some(WorkerId(1)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let workers = (0..37)
            .map(|i| Worker::new(WorkerId(i), NodeId((i * 7) % 29), 4))
            .collect();
        let f = Fleet::new(workers);
        for target in 0..29 {
            let seq = f.nearest_idle(NodeId(target), 0, 1, &Line);
            for threads in [2, 3, 8] {
                let exec = Exec::new(threads);
                assert_eq!(
                    f.nearest_idle_par(NodeId(target), 0, 1, &Line, &exec),
                    seq,
                    "target={target} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn no_idle_worker_returns_none() {
        let mut f = Fleet::new(vec![Worker::new(WorkerId(0), NodeId(0), 4)]);
        f.assign(WorkerId(0), NodeId(1), 0, 1_000);
        assert_eq!(f.nearest_idle(NodeId(0), 500, 1, &Line), None);
    }
}
