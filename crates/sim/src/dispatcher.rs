//! Dispatchers: the pluggable algorithm under test.
//!
//! [`Dispatcher`] is the interface the engine drives; [`WatterDispatcher`]
//! implements the paper's Order Pooling Management Algorithm (Algorithm 1)
//! parameterized by a [`DecisionPolicy`] (Algorithm 2 or the online/timeout
//! variants). The GDP/GAS baselines implement the same trait in
//! `watter-baselines`.

use crate::core::Effect;
use crate::env::build_env;
use crate::fleet::Fleet;
use crate::snapshot::{DispatcherState, SnapshotDispatcher, SnapshotError};
use watter_core::{
    CostWeights, DispatchParallelism, Dur, Exec, Group, Measurements, Order, OrderId, OrderOutcome,
    TravelBound, Ts, WorkerId,
};
use watter_obs::{Counter, Recorder, Stage, TraceEvent};
use watter_pool::{OrderPool, PoolConfig, ShardMap, SpatialPrune};
use watter_road::GridIndex;
use watter_strategy::{DecisionContext, DecisionPolicy, NoopObserver, PoolObserver};

/// Mutable simulation context handed to dispatchers.
pub struct SimCtx<'a> {
    /// Current system timestamp `t_s`.
    pub now: Ts,
    /// The worker fleet.
    pub fleet: &'a mut Fleet,
    /// Metric accumulator.
    pub measurements: &'a mut Measurements,
    /// Travel-time oracle. Taking the [`TravelBound`] super-trait lets the
    /// pooling layer consult admissible lower bounds before paying for
    /// exact queries; backends without cheap bounds (the default `0`)
    /// degrade gracefully to exact-only filtering.
    pub oracle: &'a dyn TravelBound,
    /// Extra-time weights (α, β).
    pub weights: CostWeights,
    /// Thread pool for pure fan-out work (fleet scans). The engine builds
    /// one per run from [`crate::SimConfig::parallelism`]; dispatchers that
    /// construct a `SimCtx` by hand can use [`Exec::sequential`].
    pub exec: &'a Exec,
    /// Effect sink: every terminal outcome recorded through this context
    /// (served / rejected) is also appended here, so the dispatch core can
    /// return it from `step` and feed the KPI accumulator. Tests driving a
    /// dispatcher by hand can lend a throwaway `&mut Vec::new()`.
    pub effects: &'a mut Vec<Effect>,
}

impl SimCtx<'_> {
    /// Dispatch `group` to the nearest idle worker with sufficient
    /// capacity. On success records all measurements (served outcomes,
    /// worker travel) and returns the worker; on `None` no state changed.
    pub fn dispatch_group(&mut self, group: &Group) -> Option<WorkerId> {
        let first = group.route.first_node()?;
        let last = group.route.last_node()?;
        let wid = self.fleet.nearest_idle_par(
            first,
            self.now,
            group.total_riders(),
            self.oracle,
            self.exec,
        )?;
        let approach = self.oracle.cost(self.fleet.location(wid), first);
        let travel = approach + group.route.cost();
        self.fleet.assign(wid, last, self.now, travel);
        self.measurements.record_worker_travel(travel);
        self.measurements.record_approach(approach);
        for (idx, order) in group.orders.iter().enumerate() {
            self.record_served(order, group.detours[idx], group.len() as u32, Some(wid));
        }
        Some(wid)
    }

    /// Dispatch `group` to a *specific* idle worker (used by batch
    /// assignment baselines that optimize the worker choice themselves).
    /// Returns `false` (leaving state untouched) if the worker is busy or
    /// lacks capacity.
    pub fn dispatch_group_to(&mut self, wid: WorkerId, group: &Group) -> bool {
        let (Some(first), Some(last)) = (group.route.first_node(), group.route.last_node()) else {
            return false;
        };
        if !self.fleet.is_idle(wid, self.now)
            || self.fleet.worker(wid).capacity < group.total_riders()
        {
            return false;
        }
        let approach = self.oracle.cost(self.fleet.location(wid), first);
        let travel = approach + group.route.cost();
        self.fleet.assign(wid, last, self.now, travel);
        self.measurements.record_worker_travel(travel);
        self.measurements.record_approach(approach);
        for (idx, order) in group.orders.iter().enumerate() {
            self.record_served(order, group.detours[idx], group.len() as u32, Some(wid));
        }
        true
    }

    /// Record a served outcome (measurements + effect). The central sink
    /// every dispatch path funnels through — including baselines like GDP
    /// that manage their own schedules instead of [`dispatch_group`]
    /// (see [`SimCtx::dispatch_group`]) — so the effect stream the core
    /// returns is complete regardless of the algorithm under test.
    pub fn record_served(
        &mut self,
        order: &Order,
        detour: Dur,
        group_size: u32,
        worker: Option<WorkerId>,
    ) {
        let response = order.response_at(self.now);
        self.measurements.record(
            order,
            &OrderOutcome::Served {
                detour,
                response,
                group_size,
            },
            self.weights,
        );
        self.effects.push(Effect::Served {
            id: order.id,
            at: self.now,
            worker,
            group_size,
            extra: self.weights.extra_time(detour, response),
        });
    }

    /// Record a rejection.
    pub fn reject(&mut self, order: &Order) {
        self.measurements
            .record(order, &OrderOutcome::Rejected, self.weights);
        self.effects.push(Effect::Rejected {
            id: order.id,
            at: self.now,
        });
    }

    /// Build a singleton group (direct pick-up → drop-off route) for solo
    /// service, if still feasible at `now`.
    ///
    /// Uses [`Group::solo`], which reuses the order's cached
    /// [`Order::direct_cost`] — the periodic "last call" sweep re-checks
    /// solo feasibility for every pooled order each tick, and this keeps
    /// those checks oracle-query-free.
    pub fn solo_group(&self, order: &Order) -> Option<Group> {
        if self.now + order.direct_cost >= order.deadline {
            return None;
        }
        Some(Group::solo(order.clone(), &self.oracle))
    }
}

/// A dispatcher that can trade quality for bounded per-order work under
/// overload — the hook behind the daemon's `Degrade` backpressure policy.
///
/// Degraded mode must keep every outcome *terminal-complete* (each order
/// still ends served or rejected); what it may sacrifice is pooling
/// quality. The default implementation refuses the mode (`false`), which
/// is correct for dispatchers with no cheaper path — the daemon still
/// counts the affected orders, it just cannot change the algorithm.
pub trait DegradableDispatcher: Dispatcher {
    /// Enter (`true`) or leave (`false`) degraded mode. Returns whether
    /// the dispatcher actually supports the switch.
    fn set_degraded(&mut self, on: bool) -> bool {
        let _ = on;
        false
    }

    /// Whether degraded mode is currently active.
    fn is_degraded(&self) -> bool {
        false
    }
}

/// An online dispatch algorithm under test.
pub trait Dispatcher {
    /// A new order was released.
    fn on_arrival(&mut self, order: Order, ctx: &mut SimCtx<'_>);

    /// Periodic asynchronous check (Algorithm 1's check loop).
    fn on_check(&mut self, ctx: &mut SimCtx<'_>);

    /// Orders still awaiting a terminal outcome.
    fn pending(&self) -> usize;

    /// Display name for experiment tables.
    fn name(&self) -> String;

    /// Attach an observability recorder. Dispatchers that have nothing
    /// to report keep the default no-op; WATTER forwards the handle to
    /// the pool so the hot-path stages (insert, pair prefilter, clique
    /// search, planning) get span timings. Recording never changes
    /// outcomes.
    fn set_recorder(&mut self, recorder: Recorder) {
        let _ = recorder;
    }
}

/// Configuration of the WATTER dispatcher.
#[derive(Clone, Debug)]
pub struct WatterConfig {
    /// Pool parameters (planner limits, clique bounds, weights).
    pub pool: PoolConfig,
    /// Grid index used for demand/supply snapshots.
    pub grid: GridIndex,
    /// Period of the engine's asynchronous checks (used for the
    /// last-call guard: an order whose solo feasibility lapses before the
    /// next check must be served now or rejected).
    pub check_period: watter_core::Dur,
    /// Optional rider cancellation model (Section VI-A treats impatience
    /// cancellation as an implicit expiration; [`CancellationModel::OFF`]
    /// reproduces the paper's main experiments).
    pub cancellation: crate::cancel::CancellationModel,
    /// Seed for the deterministic cancellation draws.
    pub cancel_seed: u64,
    /// Optional spatial candidate pruning for pool inserts: bucket pooled
    /// orders by pick-up cell and scan only the slack-reachable ring
    /// instead of the whole pool. Bit-identical outcomes either way; `None`
    /// keeps the full scan.
    pub spatial: Option<SpatialPrune>,
    /// Sharded/parallel pool execution. `shards > 1` partitions pooled
    /// orders into grid-row-band shards owned by their pick-up cell (the
    /// proposal sweep and insert fan-out chunk by shard); `threads > 1`
    /// runs pure pool computation (edge evaluation, clique search, batch
    /// recomputes) on a scoped thread pool. Outcomes are bit-identical to
    /// [`DispatchParallelism::SEQUENTIAL`] for every setting — state
    /// commits stay sequential in canonical order.
    pub parallelism: DispatchParallelism,
}

/// Algorithm 1: graph-based order pooling management, parameterized by the
/// hold-or-dispatch policy and an experience observer.
pub struct WatterDispatcher<P, O = NoopObserver> {
    pool: OrderPool,
    policy: P,
    grid: GridIndex,
    check_period: watter_core::Dur,
    cancellation: crate::cancel::CancellationModel,
    cancel_seed: u64,
    observer: O,
    /// Degraded (solo-only) mode: arrivals bypass the pool entirely.
    /// Operational state set by the daemon's backpressure, not part of
    /// the dispatch snapshot (the daemon re-derives it on resume from the
    /// checkpointed hysteresis flag).
    degraded: bool,
    /// Observability handle (disabled unless attached via
    /// [`Dispatcher::set_recorder`]).
    recorder: Recorder,
}

impl<P: DecisionPolicy> WatterDispatcher<P, NoopObserver> {
    /// Build a production dispatcher (no experience recording).
    pub fn new(cfg: WatterConfig, policy: P) -> Self {
        Self::with_observer(cfg, policy, NoopObserver)
    }
}

impl<P: DecisionPolicy, O: PoolObserver> WatterDispatcher<P, O> {
    /// Build a dispatcher that reports every order event to `observer`
    /// (offline experience generation, Section VI-B).
    pub fn with_observer(cfg: WatterConfig, policy: P, observer: O) -> Self {
        let shards = (cfg.parallelism.shards > 1)
            .then(|| ShardMap::build(cfg.grid.clone(), cfg.parallelism.shards));
        Self {
            pool: OrderPool::with_parallelism(
                cfg.pool,
                cfg.spatial,
                shards,
                Exec::from_parallelism(cfg.parallelism),
            ),
            policy,
            grid: cfg.grid,
            check_period: cfg.check_period,
            cancellation: cfg.cancellation,
            cancel_seed: cfg.cancel_seed,
            observer,
            degraded: false,
            recorder: Recorder::disabled(),
        }
    }

    /// The underlying pool (diagnostics).
    pub fn pool(&self) -> &OrderPool {
        &self.pool
    }

    /// Consume the dispatcher, returning the observer (to extract recorded
    /// experience after a run).
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// Attempt solo service of `order`; on success records measurements,
    /// notifies the observer and removes the order from the pool.
    fn try_solo(
        &mut self,
        order: &Order,
        ctx: &mut SimCtx<'_>,
        env: &watter_core::EnvSnapshot,
    ) -> bool {
        let Some(solo) = ctx.solo_group(order) else {
            return false;
        };
        if ctx.dispatch_group(&solo).is_some() {
            self.observer.on_dispatch(order, 0, ctx.now, env);
            self.pool.remove_orders(&[order.id], ctx.now, &ctx.oracle);
            true
        } else {
            false
        }
    }
}

impl<P: DecisionPolicy, O: PoolObserver> Dispatcher for WatterDispatcher<P, O> {
    fn on_arrival(&mut self, order: Order, ctx: &mut SimCtx<'_>) {
        // Degraded (overload) mode: solo dispatch or reject, right now.
        // No pool insert means no shareability-graph work, so per-order
        // cost stays O(fleet scan) while the daemon sheds load. The
        // observer is skipped too — degraded outcomes are operational
        // fallbacks, not pooling experience.
        if self.degraded {
            match ctx.solo_group(&order).and_then(|g| ctx.dispatch_group(&g)) {
                Some(_) => {}
                None => ctx.reject(&order),
            }
            return;
        }
        // Algorithm 1 lines 2–4: insert into the pool, maintaining the
        // shareability graph and the best-group map.
        let _span = self.recorder.time(Stage::PoolInsert);
        self.pool.insert(order, ctx.now, &ctx.oracle);
    }

    fn on_check(&mut self, ctx: &mut SimCtx<'_>) {
        let now = ctx.now;
        // Lines 5–6: expire edges/groups; collect solo-infeasible orders.
        let mut dead = self.pool.maintain(now, &ctx.oracle);
        // Impatience cancellations (implicit expirations, Section VI-A).
        if self.cancellation.is_active() {
            for o in self.pool.orders() {
                if !dead.contains(&o.id) && self.cancellation.cancels(o, now, self.cancel_seed) {
                    dead.push(o.id);
                }
            }
        }
        let env = build_env(
            &self.grid,
            self.pool.orders(),
            ctx.fleet.idle_locations(now),
        );
        for id in dead {
            if let Some(o) = self.pool.order(id).cloned() {
                ctx.reject(&o);
                self.observer.on_expire(&o, now, &env);
                self.pool.remove_orders(&[id], now, &ctx.oracle);
            }
        }
        // Lines 8–16: per-order decision on the current best group. The
        // sweep order is canonical `(release, id)` regardless of shard
        // layout or thread count (see `OrderPool::proposals`).
        let ids = self.pool.proposals();
        let check_period = self.check_period;
        for (_, id) in ids {
            // May have been dispatched as a member of an earlier group.
            let Some(order) = self.pool.order(id).cloned() else {
                continue;
            };
            let decision_ctx = DecisionContext { now, env: &env };
            // "Last call": the order's solo feasibility lapses before the
            // next periodic check — serve it now (with its group if the
            // policy or necessity says so, solo otherwise) or lose it.
            let dying = now + check_period + order.direct_cost >= order.deadline;
            let dispatched = match self.pool.best_group(id) {
                Some(group) => {
                    let quality = group.quality(now, ctx.weights, &ctx.oracle);
                    if self.policy.decide(group, quality, &decision_ctx) || dying {
                        let group = group.clone();
                        // Manual span: a drop-guard timer would borrow
                        // `self.recorder` across the `&mut self` solo
                        // fallback below.
                        let t0 = self.recorder.is_enabled().then(std::time::Instant::now);
                        let committed = match ctx.dispatch_group(&group) {
                            Some(wid) => {
                                if group.len() >= 2 {
                                    self.recorder.incr(Counter::GroupsFormed);
                                    self.recorder.trace(
                                        now,
                                        TraceEvent::GroupFormed {
                                            worker: wid.0 as u64,
                                            size: group.len() as u64,
                                        },
                                    );
                                }
                                let members: Vec<OrderId> = group.order_ids().collect();
                                for (idx, o) in group.orders.iter().enumerate() {
                                    self.observer.on_dispatch(o, group.detours[idx], now, &env);
                                }
                                self.pool.remove_orders(&members, now, &ctx.oracle);
                                true
                            }
                            // No idle worker for the group: a dying order
                            // still gets a solo attempt below.
                            None => dying && self.try_solo(&order, ctx, &env),
                        };
                        if let Some(t0) = t0 {
                            self.recorder.record_stage_nanos(
                                Stage::DecisionCommit,
                                t0.elapsed().as_nanos() as u64,
                            );
                        }
                        committed
                    } else {
                        false
                    }
                }
                None => {
                    // No shareable partner. Past the watching window — or
                    // on the last feasible check — the order is served solo
                    // when a suitable worker exists (Definition 1 /
                    // Section V-A), otherwise it keeps waiting until
                    // solo-infeasible (then rejected above).
                    if now > order.timeout_at() || dying {
                        self.try_solo(&order, ctx, &env)
                    } else {
                        false
                    }
                }
            };
            if !dispatched {
                self.observer.on_wait(&order, now, &env);
            }
        }
    }

    fn pending(&self) -> usize {
        self.pool.len()
    }

    fn name(&self) -> String {
        self.policy.name().to_string()
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.pool.set_recorder(recorder.clone());
        self.recorder = recorder;
    }
}

impl<P: DecisionPolicy, O: PoolObserver> DegradableDispatcher for WatterDispatcher<P, O> {
    fn set_degraded(&mut self, on: bool) -> bool {
        self.degraded = on;
        true
    }

    fn is_degraded(&self) -> bool {
        self.degraded
    }
}

impl<P: DecisionPolicy, O: PoolObserver> SnapshotDispatcher for WatterDispatcher<P, O> {
    fn save_state(&self) -> DispatcherState {
        DispatcherState::Watter {
            pool: self.pool.snapshot(),
        }
    }

    /// Replaces the pool's runtime state. Everything else on the
    /// dispatcher (policy, grid, cancellation model, observer) is
    /// construction-time configuration — the cancellation draws are
    /// stateless hashes, so no RNG state needs restoring.
    fn load_state(&mut self, state: &DispatcherState) -> Result<(), SnapshotError> {
        match state {
            DispatcherState::Watter { pool } => Ok(self.pool.restore(pool)?),
            _ => Err(SnapshotError::DispatcherMismatch {
                expected: "WATTER pool",
            }),
        }
    }
}
