//! The dispatch daemon driver: a long-lived, crash-safe front end over
//! [`DispatchCore`].
//!
//! [`Daemon`] consumes newline-delimited JSON order lines (the wire
//! format `watter-daemon` reads from a pipe or Unix socket), interleaves
//! due checks exactly like [`crate::engine::run_stream`], and layers on
//! the three things a service needs that a batch run does not:
//!
//! * **checkpointing** — on an event-count and/or virtual-time cadence
//!   the full daemon state ([`DaemonCheckpoint`]) is persisted through a
//!   [`CheckpointStore`] (atomic rename, checksum header, generation
//!   rotation). [`Daemon::resume`] restores the newest valid generation;
//!   the host then re-feeds the input stream, skipping the first
//!   [`Daemon::lines_consumed`] lines;
//! * **backpressure** — when the backlog (buffered arrivals plus
//!   dispatcher-pending orders) crosses `high_watermark`, the configured
//!   [`BackpressurePolicy`] engages until the backlog falls back to
//!   `low_watermark` (hysteresis, so the policy does not flap at the
//!   boundary). Every affected order is counted in the checkpointed
//!   [`RobustnessReport`];
//! * **fault injection** — a [`FaultPlan`] can kill the run after a
//!   chosen line ([`FeedOutcome::Crashed`]), damage the newest checkpoint
//!   at crash time, and fail checkpoint writes transiently. Input-side
//!   faults (malformed / delayed lines) are instead baked into the line
//!   stream by [`fault_lines`], so a crashed-and-recovered run and its
//!   uninterrupted reference consume identical bytes.
//!
//! The contract `tests/chaos.rs` enforces: with the input stream fixed,
//! process faults (crash, checkpoint corruption, IO errors) never change
//! the final [`Measurements`]/[`Kpis`] (modulo wall-clock timing),
//! [`IngestStats`] or [`RobustnessReport`].

use crate::checkpoint::{CheckpointError, CheckpointOps, CheckpointStore};
use crate::core::{DispatchCore, Event};
use crate::dispatcher::DegradableDispatcher;
use crate::engine::SimConfig;
use crate::ingest::{IngestConfig, IngestSnapshot, IngestStats, LineError, OrderIngest};
use crate::snapshot::{DispatchSnapshot, SnapshotDispatcher, SnapshotError};
use serde::{Deserialize, Serialize};
use watter_core::{
    Dur, FaultPlan, KpiReport, Kpis, Measurements, Order, RobustnessReport, TravelBound, Ts, Worker,
};
use watter_obs::{Counter, Gauge, Recorder, Stage, TraceEvent};

/// Safety bound on the synchronous check-draining loop of
/// [`BackpressurePolicy::Block`]: with a positive check period the clock
/// advances every step, so deadlines eventually expire every pending
/// order, but a bound keeps a pathological configuration from spinning.
const MAX_BLOCK_DRAIN_STEPS: usize = 10_000;

/// What the daemon does with incoming orders while overloaded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Stop admitting: synchronously run due checks until the backlog
    /// falls to the low watermark, then admit the order with its release
    /// re-stamped to the drained clock. No order is dropped; blocking
    /// consumes the order's own slack (the deadline stays absolute).
    #[default]
    Block,
    /// Drop the order after validation. Cheapest, lossy; every shed
    /// order is counted so `ingest.admitted` always reconciles as
    /// `orders fed to the core + robustness.shed`.
    Shed,
    /// Keep admitting but switch the dispatcher to its degraded
    /// (solo, non-pooling) path until the backlog recedes — trading
    /// pooling quality for bounded per-order work.
    Degrade,
}

/// Daemon parameters (engine parameters live in [`SimConfig`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DaemonConfig {
    /// Checkpoint after this many consumed input lines (0 disables the
    /// event-count trigger).
    pub checkpoint_every_events: u64,
    /// Checkpoint when the virtual clock advanced this far since the last
    /// checkpoint (0 disables the virtual-time trigger).
    pub checkpoint_interval: Dur,
    /// Overload policy.
    pub policy: BackpressurePolicy,
    /// Backlog at which backpressure engages.
    pub high_watermark: usize,
    /// Backlog at which engaged backpressure releases.
    pub low_watermark: usize,
    /// Process-fault schedule (crash / checkpoint corruption / IO
    /// failures). Input faults do not belong here — bake them into the
    /// line stream with [`fault_lines`] so reference and recovered runs
    /// read the same bytes.
    pub fault: FaultPlan,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            checkpoint_every_events: 64,
            checkpoint_interval: 0,
            policy: BackpressurePolicy::Block,
            // Backpressure off by default: the watermark is unreachable.
            high_watermark: usize::MAX,
            low_watermark: 0,
            fault: FaultPlan::NONE,
        }
    }
}

/// Everything a recovered daemon needs: the dispatch-run snapshot plus
/// the daemon's own streaming state. `lines_consumed` is the replay
/// cursor — on resume the host re-feeds the input and skips that many
/// lines; `engaged` preserves backpressure hysteresis (history-dependent,
/// not derivable from the backlog alone); the ingest snapshot keeps the
/// duplicate filter and counters; the robustness counters keep
/// reconciling after the crash.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DaemonCheckpoint {
    /// Input lines consumed when the checkpoint was taken.
    pub lines_consumed: u64,
    /// Whether backpressure was engaged.
    pub engaged: bool,
    /// Ingest runtime state.
    pub ingest: IngestSnapshot,
    /// Backpressure consequence counters.
    pub robustness: RobustnessReport,
    /// The dispatch-run snapshot (core + dispatcher).
    pub snap: DispatchSnapshot,
}

/// What happened to one input line.
#[derive(Clone, Debug, PartialEq)]
pub enum FeedOutcome {
    /// Validated and fed to the core.
    Admitted,
    /// Fed to the core while the `Degrade` policy was engaged.
    Degraded,
    /// Fed after a blocking drain re-stamped its release.
    Blocked,
    /// Valid but dropped by the `Shed` policy.
    Shed,
    /// Refused at the door (malformed bytes or failed validation).
    Rejected(LineError),
    /// The fault plan kills the process after this line. Any planned
    /// checkpoint corruption has already been applied; the host must stop
    /// feeding and abandon the daemon without a final checkpoint (the
    /// simulated power cut).
    Crashed,
}

/// Why a daemon could not be built or resumed.
#[derive(Clone, Debug, PartialEq)]
pub enum DaemonError {
    /// Checkpoint storage failed.
    Checkpoint(CheckpointError),
    /// The checkpointed dispatch snapshot would not load.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            Self::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<CheckpointError> for DaemonError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<SnapshotError> for DaemonError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

/// Live telemetry bundle answered to the daemon's `#metrics` control
/// line: the paper-KPI report plus the observability snapshot. The
/// snapshot side is a pure function of the event stream except for the
/// wall-clock stage latencies (see `watter-obs`'s determinism notes).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Derived paper KPIs over the run so far.
    pub kpis: KpiReport,
    /// Observability registry snapshot (counters, gauges, stage
    /// latency percentiles, windowed KPIs, trace position).
    pub obs: watter_obs::ObsSnapshot,
}

/// Final accounting of a daemon run.
#[derive(Clone, Debug)]
pub struct DaemonOutput {
    /// The paper's measurements.
    pub measurements: Measurements,
    /// The KPI accumulator.
    pub kpis: Kpis,
    /// Ingest/validation counters.
    pub ingest: IngestStats,
    /// Backpressure consequence counters.
    pub robustness: RobustnessReport,
    /// Total input lines consumed.
    pub lines_consumed: u64,
    /// Checkpoint-store operation counters, if a store was attached.
    pub ops: Option<CheckpointOps>,
}

/// The dispatch daemon driver (see the module docs).
pub struct Daemon<'a, D> {
    core: DispatchCore,
    dispatcher: D,
    oracle: &'a dyn TravelBound,
    ingest: OrderIngest,
    store: Option<CheckpointStore>,
    cfg: DaemonConfig,
    robustness: RobustnessReport,
    engaged: bool,
    lines_consumed: u64,
    events_since_ckpt: u64,
    last_ckpt_clock: Option<Ts>,
    checkpoint_failures: u64,
    recorder: Recorder,
}

impl<'a, D: SnapshotDispatcher + DegradableDispatcher> Daemon<'a, D> {
    /// A fresh daemon over `workers`. Pass `store: None` to run without
    /// persistence (checkpoint triggers become no-ops).
    pub fn new(
        workers: Vec<Worker>,
        sim: SimConfig,
        dispatcher: D,
        oracle: &'a dyn TravelBound,
        ingest_cfg: IngestConfig,
        cfg: DaemonConfig,
        store: Option<CheckpointStore>,
    ) -> Self {
        Self {
            core: DispatchCore::new(workers, sim),
            dispatcher,
            oracle,
            ingest: OrderIngest::new(ingest_cfg),
            store,
            cfg,
            robustness: RobustnessReport::default(),
            engaged: false,
            lines_consumed: 0,
            events_since_ckpt: 0,
            last_ckpt_clock: None,
            checkpoint_failures: 0,
            recorder: Recorder::disabled(),
        }
    }

    /// Attach an observability recorder to the daemon, its core and its
    /// dispatcher. On a resumed daemon the recorder's trace sequence
    /// continues from the checkpoint's position. Outcomes are
    /// unaffected: the daemon mirrors counters it already keeps.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.core.set_recorder(recorder.clone());
        self.dispatcher.set_recorder(recorder.clone());
        recorder.gauge_set(Gauge::Degraded, i64::from(self.engaged));
        self.recorder = recorder;
    }

    /// The daemon's observability handle (disabled unless attached).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Resume from the newest valid checkpoint generation in `store`.
    /// `dispatcher` must be freshly built from the same configuration as
    /// the crashed run's. Returns `Ok(None)` when the store holds no
    /// generations (fresh start — the caller should fall back to
    /// [`Daemon::new`]); a store with only corrupt generations is an
    /// error. After a resume, re-feed the input stream skipping the first
    /// [`Daemon::lines_consumed`] lines.
    pub fn resume(
        mut store: CheckpointStore,
        mut dispatcher: D,
        oracle: &'a dyn TravelBound,
        ingest_cfg: IngestConfig,
        cfg: DaemonConfig,
    ) -> Result<Option<Self>, DaemonError> {
        let Some((_gen, ckpt)) = store.latest_valid()? else {
            return Ok(None);
        };
        let core = DispatchCore::restore(&ckpt.snap, &mut dispatcher)?;
        // The degraded flag is construction-time dispatcher state, not
        // part of the dispatch snapshot — re-derive it from the
        // checkpointed hysteresis state.
        dispatcher.set_degraded(ckpt.engaged && cfg.policy == BackpressurePolicy::Degrade);
        let last_ckpt_clock = Some(core.clock());
        Ok(Some(Self {
            core,
            dispatcher,
            oracle,
            ingest: OrderIngest::restore(ingest_cfg, &ckpt.ingest),
            store: Some(store),
            cfg,
            robustness: ckpt.robustness,
            engaged: ckpt.engaged,
            lines_consumed: ckpt.lines_consumed,
            events_since_ckpt: 0,
            last_ckpt_clock,
            checkpoint_failures: 0,
            recorder: Recorder::disabled(),
        }))
    }

    /// Consume one input line: parse, validate, apply backpressure, feed
    /// the core (running due checks first, like the streaming driver),
    /// and fire any due checkpoint. Returns what happened; on
    /// [`FeedOutcome::Crashed`] the host must stop immediately.
    pub fn feed_line(&mut self, line: &str) -> FeedOutcome {
        self.lines_consumed += 1;
        self.events_since_ckpt += 1;
        let parsed = {
            let _span = self.recorder.time(Stage::Ingest);
            OrderIngest::parse_line(line)
        };
        let outcome = match parsed {
            Err(e) => {
                self.ingest.note_malformed();
                self.recorder.incr(Counter::LinesMalformed);
                FeedOutcome::Rejected(e)
            }
            Ok(order) => self.feed_order(order),
        };
        self.ingest
            .observe_backlog(self.core.backlog() + self.dispatcher.pending());
        if self.recorder.is_enabled() {
            self.observe_feed();
        }
        self.maybe_checkpoint();
        if self.cfg.fault.crashes_at(self.lines_consumed) {
            if let (Some(kind), Some(store)) =
                (self.cfg.fault.corrupt_on_crash, self.store.as_ref())
            {
                let _ = store.corrupt_newest(kind);
            }
            return FeedOutcome::Crashed;
        }
        outcome
    }

    /// Feed one already-parsed order (validation and backpressure still
    /// apply).
    fn feed_order(&mut self, raw: Order) -> FeedOutcome {
        // Due checks strictly before the arrival run first — the same
        // interleave as `run_stream`, so virtual time tracks the feed.
        while !self.core.is_drained() && self.core.next_due().is_some_and(|due| due < raw.release) {
            self.core
                .step(Event::Check, &mut self.dispatcher, self.oracle);
        }
        let order = match self.ingest.admit(raw, self.core.clock()) {
            Ok(order) => order,
            Err(e) => return FeedOutcome::Rejected(LineError::Invalid(e)),
        };
        self.update_backpressure();
        if !self.engaged {
            self.core
                .step(Event::Arrive(order), &mut self.dispatcher, self.oracle);
            return FeedOutcome::Admitted;
        }
        match self.cfg.policy {
            BackpressurePolicy::Shed => {
                self.robustness.shed += 1;
                self.recorder.incr(Counter::OrdersShed);
                self.recorder
                    .window_count(self.core.clock(), watter_obs::WindowField::Shed);
                self.recorder.trace(
                    self.core.clock(),
                    TraceEvent::OrderShed {
                        order: order.id.0 as u64,
                    },
                );
                FeedOutcome::Shed
            }
            BackpressurePolicy::Degrade => {
                self.robustness.degraded += 1;
                self.recorder.incr(Counter::OrdersDegraded);
                self.recorder.trace(
                    self.core.clock(),
                    TraceEvent::OrderDegraded {
                        order: order.id.0 as u64,
                    },
                );
                self.core
                    .step(Event::Arrive(order), &mut self.dispatcher, self.oracle);
                FeedOutcome::Degraded
            }
            BackpressurePolicy::Block => {
                let mut steps = 0;
                while self.backlog() > self.cfg.low_watermark
                    && steps < MAX_BLOCK_DRAIN_STEPS
                    && !self.core.is_drained()
                    && self.core.next_due().is_some()
                {
                    self.core
                        .step(Event::Check, &mut self.dispatcher, self.oracle);
                    steps += 1;
                }
                self.update_backpressure();
                let restamped = self.core.clock().max(order.release);
                let blocked = restamped > order.release;
                if blocked {
                    self.robustness.blocked += 1;
                    self.recorder.incr(Counter::OrdersBlocked);
                    self.recorder.trace(
                        self.core.clock(),
                        TraceEvent::OrderBlocked {
                            order: order.id.0 as u64,
                        },
                    );
                }
                let order = Order {
                    release: restamped,
                    ..order
                };
                self.core
                    .step(Event::Arrive(order), &mut self.dispatcher, self.oracle);
                if blocked {
                    FeedOutcome::Blocked
                } else {
                    FeedOutcome::Admitted
                }
            }
        }
    }

    /// Hysteresis: engage at the high watermark, release at the low one.
    /// Transitions flip the dispatcher's degraded mode when the policy is
    /// `Degrade`.
    fn update_backpressure(&mut self) {
        let backlog = self.backlog();
        let was = self.engaged;
        if !self.engaged && backlog >= self.cfg.high_watermark {
            self.engaged = true;
        } else if self.engaged && backlog <= self.cfg.low_watermark {
            self.engaged = false;
        }
        if was != self.engaged {
            self.recorder.incr(Counter::DegradeFlips);
            self.recorder
                .gauge_set(Gauge::Degraded, i64::from(self.engaged));
            self.recorder.trace(
                self.core.clock(),
                TraceEvent::DegradeFlip {
                    engaged: self.engaged,
                },
            );
            if self.cfg.policy == BackpressurePolicy::Degrade {
                self.dispatcher.set_degraded(self.engaged);
            }
        }
    }

    /// Mirror the daemon's own counters into the registry after a fed
    /// line (only called with an enabled recorder). `set_at_least` keeps
    /// mirrored absolute totals idempotent across replays.
    fn observe_feed(&self) {
        let stats = self.ingest.stats();
        self.recorder
            .set_at_least(Counter::OrdersAdmitted, stats.admitted);
        self.recorder
            .set_at_least(Counter::LinesMalformed, stats.malformed);
        let backlog = self.backlog();
        let band = if backlog >= self.cfg.high_watermark {
            2
        } else {
            u64::from(backlog > self.cfg.low_watermark)
        };
        self.recorder
            .window_backlog(self.core.clock(), backlog as u64, band);
        if let Some(ops) = self.store.as_ref().map(|s| s.ops()) {
            self.recorder
                .set_at_least(Counter::CheckpointRetries, ops.retries);
        }
    }

    /// Combined pipeline backlog: arrivals buffered in the core plus
    /// orders pending in the dispatcher.
    pub fn backlog(&self) -> usize {
        self.core.backlog() + self.dispatcher.pending()
    }

    fn maybe_checkpoint(&mut self) {
        if self.store.is_none() {
            return;
        }
        let clock = self.core.clock();
        let anchor = *self.last_ckpt_clock.get_or_insert(clock);
        let due_events = self.cfg.checkpoint_every_events > 0
            && self.events_since_ckpt >= self.cfg.checkpoint_every_events;
        let due_time =
            self.cfg.checkpoint_interval > 0 && clock - anchor >= self.cfg.checkpoint_interval;
        if !(due_events || due_time) {
            return;
        }
        // A failed checkpoint (after the store's own retries) must not
        // kill dispatch — the daemon keeps serving and tries again at the
        // next trigger; the failure is counted for the operator.
        if self.checkpoint_now().is_err() {
            self.checkpoint_failures += 1;
            self.recorder.incr(Counter::CheckpointFailures);
        }
    }

    /// Persist the current state as a new checkpoint generation. No-op
    /// (`Ok(None)`) without a store.
    pub fn checkpoint_now(&mut self) -> Result<Option<u64>, CheckpointError> {
        if self.store.is_some() {
            // Traced *before* the snapshot is captured so the carried
            // trace sequence counts this record — a recovery replay
            // resumes past it instead of reusing its number. On a save
            // failure the optimistic record stays, paired with a
            // `checkpoint_failures` increment.
            self.recorder.trace(
                self.core.clock(),
                TraceEvent::CheckpointWritten {
                    lines: self.lines_consumed,
                },
            );
        }
        let ckpt = DaemonCheckpoint {
            lines_consumed: self.lines_consumed,
            engaged: self.engaged,
            ingest: self.ingest.snapshot(),
            robustness: self.robustness,
            snap: self.core.snapshot(&self.dispatcher),
        };
        let Some(store) = self.store.as_mut() else {
            return Ok(None);
        };
        let gen = store.save(&ckpt)?;
        self.events_since_ckpt = 0;
        self.last_ckpt_clock = Some(self.core.clock());
        self.recorder.incr(Counter::CheckpointsWritten);
        Ok(Some(gen))
    }

    /// End of input: close the stream and run checks until the core
    /// drains. This is also the clean-shutdown path (`SIGTERM` in the
    /// binary: final checkpoint, then close and drain).
    pub fn close_and_drain(&mut self) {
        self.core
            .step(Event::Close, &mut self.dispatcher, self.oracle);
        while !self.core.is_drained() {
            self.core
                .step(Event::Check, &mut self.dispatcher, self.oracle);
        }
    }

    /// Consume the daemon, returning the final accounting.
    pub fn finish(self) -> DaemonOutput {
        let ops = self.store.as_ref().map(|s| s.ops());
        let (measurements, kpis) = self.core.finish();
        DaemonOutput {
            measurements,
            kpis,
            ingest: self.ingest.stats(),
            robustness: self.robustness,
            lines_consumed: self.lines_consumed,
            ops,
        }
    }

    /// Live KPI report over the state so far (the `--kpis` query).
    pub fn kpi_report(&self) -> KpiReport {
        self.core.kpis().report(self.core.measurements())
    }

    /// Live telemetry for the `#metrics` control line: the KPI report
    /// plus a deterministic snapshot of the observability registry
    /// (counters, gauges, per-stage latency percentiles, windowed
    /// KPIs, trace-journal position).
    pub fn metrics_report(&self) -> MetricsReport {
        MetricsReport {
            kpis: self.kpi_report(),
            obs: self.recorder.snapshot(),
        }
    }

    /// Input lines consumed so far (the resume cursor).
    pub fn lines_consumed(&self) -> u64 {
        self.lines_consumed
    }

    /// Backpressure counters so far.
    pub fn robustness(&self) -> RobustnessReport {
        self.robustness
    }

    /// Ingest counters so far.
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingest.stats()
    }

    /// Whether backpressure is currently engaged.
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// Checkpoint triggers that failed even after the store's retries.
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures
    }

    /// Checkpoint-store operation counters, if a store is attached.
    pub fn store_ops(&self) -> Option<CheckpointOps> {
        self.store.as_ref().map(|s| s.ops())
    }

    /// The core's virtual clock.
    pub fn clock(&self) -> Ts {
        self.core.clock()
    }

    /// Whether the run has drained.
    pub fn is_drained(&self) -> bool {
        self.core.is_drained()
    }
}

/// Serialize `orders` to daemon wire lines, applying the plan's **input**
/// faults: roughly one in `malformed_every` lines is truncated mid-token,
/// and roughly one in `delay_every` lines slips [`FaultPlan::delay_slots`]
/// positions later in the feed (late delivery — the daemon's ingest then
/// refuses it as stale if its release has already passed). Deterministic:
/// the same `(orders, plan)` always yields the same lines, which is what
/// lets a chaos reference run and a crashed run consume identical bytes.
pub fn fault_lines(orders: &[Order], plan: &FaultPlan) -> Vec<String> {
    let mut keyed: Vec<(u64, u64, String)> = orders
        .iter()
        .enumerate()
        .map(|(i, order)| {
            let i = i as u64;
            let mut line = serde_json::to_string(order).expect("orders serialize");
            if plan.is_malformed(i) {
                line.truncate(line.len() / 2);
            }
            (i + plan.delay_of(i), i, line)
        })
        .collect();
    keyed.sort_by_key(|&(slot, i, _)| (slot, i));
    keyed.into_iter().map(|(_, _, line)| line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::Dispatcher;
    use crate::snapshot::DispatcherState;
    use crate::SimCtx;
    use watter_core::{NodeId, OrderId, TravelCost, WorkerId};

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {}

    /// Serve solo immediately; degraded mode is a no-op distinction here
    /// (the dispatcher is already solo-only) but the flag is tracked so
    /// tests can observe transitions.
    #[derive(Default)]
    struct Solo {
        degraded: bool,
        transitions: usize,
    }

    impl Dispatcher for Solo {
        fn on_arrival(&mut self, order: Order, ctx: &mut SimCtx<'_>) {
            match ctx.solo_group(&order).and_then(|g| ctx.dispatch_group(&g)) {
                Some(_) => {}
                None => ctx.reject(&order),
            }
        }
        fn on_check(&mut self, _ctx: &mut SimCtx<'_>) {}
        fn pending(&self) -> usize {
            0
        }
        fn name(&self) -> String {
            "solo".into()
        }
    }

    impl SnapshotDispatcher for Solo {
        fn save_state(&self) -> DispatcherState {
            DispatcherState::Stateless
        }
        fn load_state(&mut self, state: &DispatcherState) -> Result<(), SnapshotError> {
            match state {
                DispatcherState::Stateless => Ok(()),
                _ => Err(SnapshotError::DispatcherMismatch {
                    expected: "stateless",
                }),
            }
        }
    }

    impl DegradableDispatcher for Solo {
        fn set_degraded(&mut self, on: bool) -> bool {
            if self.degraded != on {
                self.transitions += 1;
            }
            self.degraded = on;
            true
        }
    }

    fn order(id: u32, release: Ts) -> Order {
        let (p, d) = (id % 7, (id * 3 + 1) % 9);
        let (p, d) = if p == d { (p, (d + 1) % 9) } else { (p, d) };
        let direct = Line.cost(NodeId(p), NodeId(d));
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline: release + 4 * direct,
            wait_limit: direct,
            direct_cost: direct,
        }
    }

    fn workers() -> Vec<Worker> {
        vec![
            Worker::new(WorkerId(0), NodeId(0), 4),
            Worker::new(WorkerId(1), NodeId(8), 4),
        ]
    }

    fn daemon<'a>(cfg: DaemonConfig, store: Option<CheckpointStore>) -> Daemon<'a, Solo> {
        Daemon::new(
            workers(),
            SimConfig::default(),
            Solo::default(),
            &Line,
            IngestConfig::default(),
            cfg,
            store,
        )
    }

    #[test]
    fn daemon_feed_matches_streamed_run() {
        let orders: Vec<Order> = (0..20u32).map(|i| order(i, (i as i64) * 7)).collect();
        let lines = fault_lines(&orders, &FaultPlan::NONE);
        let mut d = daemon(DaemonConfig::default(), None);
        for line in &lines {
            assert!(!matches!(d.feed_line(line), FeedOutcome::Crashed));
        }
        d.close_and_drain();
        let out = d.finish();

        let mut solo = Solo::default();
        let stream = crate::engine::run_stream(
            orders,
            workers(),
            &mut solo,
            &Line,
            SimConfig::default(),
            IngestConfig::default(),
        );
        assert_eq!(
            out.measurements.without_timing(),
            stream.measurements.without_timing()
        );
        assert_eq!(out.kpis.without_timing(), stream.kpis.without_timing());
        assert_eq!(out.ingest.admitted, stream.ingest.admitted);
        assert_eq!(out.robustness, RobustnessReport::default());
        assert_eq!(out.lines_consumed, 20);
    }

    #[test]
    fn malformed_and_stale_lines_are_counted_not_fatal() {
        let mut d = daemon(DaemonConfig::default(), None);
        assert!(matches!(
            d.feed_line("{ not json"),
            FeedOutcome::Rejected(LineError::Malformed(_))
        ));
        assert!(matches!(
            d.feed_line(&fault_lines(&[order(0, 50)], &FaultPlan::NONE)[0]),
            FeedOutcome::Admitted
        ));
        d.close_and_drain();
        let out = d.finish();
        assert_eq!(out.ingest.malformed, 1);
        assert_eq!(out.ingest.admitted, 1);
        assert_eq!(out.lines_consumed, 2);
    }

    #[test]
    fn shed_policy_reconciles_against_ingest_totals() {
        let cfg = DaemonConfig {
            policy: BackpressurePolicy::Shed,
            high_watermark: 1,
            low_watermark: 0,
            ..DaemonConfig::default()
        };
        // Same-instant burst: the backlog builds because no check can run
        // between same-release arrivals.
        let orders: Vec<Order> = (0..10u32).map(|i| order(i, 0)).collect();
        let mut d = daemon(cfg, None);
        let mut shed = 0;
        for line in fault_lines(&orders, &FaultPlan::NONE) {
            if matches!(d.feed_line(&line), FeedOutcome::Shed) {
                shed += 1;
            }
        }
        d.close_and_drain();
        let out = d.finish();
        assert!(out.robustness.shed > 0, "watermark 1 must shed something");
        assert_eq!(out.robustness.shed, shed);
        // Reconciliation: everything admitted either reached the core or
        // was shed; the core resolved exactly the fed orders.
        assert_eq!(
            out.measurements.total_orders,
            out.ingest.admitted - out.robustness.shed
        );
    }

    #[test]
    fn metrics_alone_reconcile_admitted_dispatched_and_shed() {
        let cfg = DaemonConfig {
            policy: BackpressurePolicy::Shed,
            high_watermark: 1,
            low_watermark: 0,
            ..DaemonConfig::default()
        };
        let orders: Vec<Order> = (0..10u32).map(|i| order(i, 0)).collect();
        let mut d = daemon(cfg, None);
        d.set_recorder(Recorder::enabled());
        d.feed_line("definitely not json");
        for line in fault_lines(&orders, &FaultPlan::NONE) {
            assert!(!matches!(d.feed_line(&line), FeedOutcome::Crashed));
        }
        d.close_and_drain();
        let rec = d.recorder().clone();
        let out = d.finish();
        // The registry alone must reconcile the pipeline: every validated
        // admission either reached the core or was shed, no third fate.
        let admitted = rec.counter(Counter::OrdersAdmitted);
        let dispatched = rec.counter(Counter::OrdersDispatched);
        let shed = rec.counter(Counter::OrdersShed);
        assert!(shed > 0, "watermark 1 must shed something");
        assert_eq!(admitted, dispatched + shed);
        // And the mirrors agree with the daemon's own accounting.
        assert_eq!(admitted, out.ingest.admitted);
        assert_eq!(shed, out.robustness.shed);
        assert_eq!(rec.counter(Counter::LinesMalformed), out.ingest.malformed);
        assert_eq!(rec.counter(Counter::LinesMalformed), 1);
        // Terminal outcomes cover everything the core accepted.
        assert_eq!(
            rec.counter(Counter::OrdersServed) + rec.counter(Counter::OrdersRejected),
            dispatched
        );
        // The degrade hysteresis engaged at least once and every flip
        // journaled a trace event with monotone sequence numbers.
        assert!(rec.counter(Counter::DegradeFlips) > 0);
        let trace = rec.drain_trace();
        assert!(trace.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(trace.iter().any(|r| r.event.kind() == "degrade_flip"));
        assert!(trace.iter().any(|r| r.event.kind() == "order_shed"));
    }

    #[test]
    fn degrade_policy_flips_dispatcher_mode_with_hysteresis() {
        let cfg = DaemonConfig {
            policy: BackpressurePolicy::Degrade,
            high_watermark: 2,
            low_watermark: 0,
            ..DaemonConfig::default()
        };
        let orders: Vec<Order> = (0..12u32).map(|i| order(i, 0)).collect();
        let mut d = daemon(cfg, None);
        for line in fault_lines(&orders, &FaultPlan::NONE) {
            let out = d.feed_line(&line);
            assert!(
                !matches!(out, FeedOutcome::Shed | FeedOutcome::Crashed),
                "degrade never drops: {out:?}"
            );
        }
        let degraded = d.robustness().degraded;
        assert!(degraded > 0, "watermark 2 must degrade something");
        d.close_and_drain();
        let out = d.finish();
        assert_eq!(out.robustness.degraded, degraded);
        // Everything admitted was fed to the core (degrade is lossless at
        // the door).
        assert_eq!(out.measurements.total_orders, out.ingest.admitted);
    }

    #[test]
    fn block_policy_restamps_instead_of_dropping() {
        let cfg = DaemonConfig {
            policy: BackpressurePolicy::Block,
            high_watermark: 2,
            low_watermark: 0,
            ..DaemonConfig::default()
        };
        let orders: Vec<Order> = (0..12u32).map(|i| order(i, (i as i64) / 4)).collect();
        let mut d = daemon(cfg, None);
        for line in fault_lines(&orders, &FaultPlan::NONE) {
            let out = d.feed_line(&line);
            assert!(
                !matches!(out, FeedOutcome::Shed | FeedOutcome::Crashed),
                "block never drops: {out:?}"
            );
        }
        d.close_and_drain();
        let out = d.finish();
        assert_eq!(out.robustness.shed, 0);
        assert_eq!(out.measurements.total_orders, out.ingest.admitted);
    }

    #[test]
    fn crash_restore_replay_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!(
            "watter_daemon_crash_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let orders: Vec<Order> = (0..30u32).map(|i| order(i, (i as i64) * 5)).collect();
        let lines = fault_lines(&orders, &FaultPlan::NONE);

        // Reference: uninterrupted, no store.
        let mut reference = daemon(DaemonConfig::default(), None);
        for line in &lines {
            reference.feed_line(line);
        }
        reference.close_and_drain();
        let reference = reference.finish();

        // Crashed run: checkpoint every 4 lines, die after line 17.
        let cfg = DaemonConfig {
            checkpoint_every_events: 4,
            fault: FaultPlan::crash_at(17, None),
            ..DaemonConfig::default()
        };
        let store = CheckpointStore::open(&dir, 3, FaultPlan::NONE).expect("open");
        let mut crashed = daemon(cfg, Some(store));
        let mut died = false;
        for line in &lines {
            if matches!(crashed.feed_line(line), FeedOutcome::Crashed) {
                died = true;
                break;
            }
        }
        assert!(died, "fault plan must fire");
        drop(crashed); // the power cut: no final checkpoint

        // Recover and replay the tail.
        let store = CheckpointStore::open(&dir, 3, FaultPlan::NONE).expect("reopen");
        let mut recovered = Daemon::resume(
            store,
            Solo::default(),
            &Line,
            IngestConfig::default(),
            DaemonConfig::default(),
        )
        .expect("resume")
        .expect("checkpoint exists");
        let skip = recovered.lines_consumed() as usize;
        assert!((4..17).contains(&skip), "resumed from a mid-run checkpoint");
        for line in &lines[skip..] {
            assert!(!matches!(recovered.feed_line(line), FeedOutcome::Crashed));
        }
        recovered.close_and_drain();
        let recovered = recovered.finish();

        assert_eq!(
            recovered.measurements.without_timing(),
            reference.measurements.without_timing()
        );
        assert_eq!(
            recovered.kpis.without_timing(),
            reference.kpis.without_timing()
        );
        assert_eq!(recovered.ingest, reference.ingest);
        assert_eq!(recovered.robustness, reference.robustness);
        assert_eq!(recovered.lines_consumed, reference.lines_consumed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_lines_bake_deterministic_input_faults() {
        let orders: Vec<Order> = (0..40u32).map(|i| order(i, (i as i64) * 3)).collect();
        let plan = FaultPlan {
            seed: 11,
            malformed_every: Some(6),
            delay_every: Some(8),
            delay_slots: 3,
            ..FaultPlan::NONE
        };
        let a = fault_lines(&orders, &plan);
        assert_eq!(a, fault_lines(&orders, &plan), "must be deterministic");
        assert_eq!(a.len(), orders.len(), "faults never lose lines");
        let clean = fault_lines(&orders, &FaultPlan::NONE);
        assert_ne!(a, clean, "plan must actually perturb the stream");
        let malformed = a
            .iter()
            .filter(|l| serde_json::from_str::<Order>(l).is_err())
            .count();
        assert!(malformed > 0, "1-in-6 over 40 lines should corrupt some");
        // And the daemon digests the faulted stream without panicking,
        // counting every malformed line.
        let mut d = daemon(DaemonConfig::default(), None);
        for line in &a {
            d.feed_line(line);
        }
        d.close_and_drain();
        let out = d.finish();
        assert_eq!(out.ingest.malformed as usize, malformed);
        assert_eq!(out.lines_consumed as usize, a.len());
    }
}
