//! One function per paper artifact.
//!
//! Every figure of Section VII is a sweep of one parameter × three city
//! profiles × the compared algorithms, reporting Extra Time, Unified Cost,
//! Service Rate and Running Time. `scale` shrinks order/worker counts for
//! quick runs (1.0 = the calibrated defaults documented in
//! EXPERIMENTS.md).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use watter::pipeline::{train, TrainingConfig};
use watter::prelude::*;
use watter::runner::{run_algorithm, Algo};
use watter_workload::{CityProfile, Scenario, ScenarioParams};

/// One table row: a (city, sweep-x, algorithm) measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// City tag (NYC/CDC/XIA).
    pub city: String,
    /// Sweep point, e.g. `n=1000`.
    pub x: String,
    /// Algorithm name.
    pub algorithm: String,
    /// The four measurements.
    pub stats: RunStats,
}

/// Per-profile trained artifacts, shared across sweep points (the paper
/// trains on historical days once, then evaluates every configuration).
pub struct TrainedCache {
    models: HashMap<&'static str, (Arc<Gmm>, Arc<ValueFunction>)>,
    scale: f64,
}

impl TrainedCache {
    /// Empty cache; models are trained lazily per profile.
    pub fn new(scale: f64) -> Self {
        Self {
            models: HashMap::new(),
            scale,
        }
    }

    /// Get (or train) the GMM + value function for a profile.
    pub fn get(&mut self, profile: CityProfile) -> (Arc<Gmm>, Arc<ValueFunction>) {
        let scale = self.scale;
        self.models
            .entry(profile.tag())
            .or_insert_with(|| {
                let mut params = scaled_params(profile, scale);
                params.seed ^= 0xDEAD_BEEF; // a different "day" for training
                let training = Scenario::build(params);
                let trained = train(&training, &TrainingConfig::default());
                (Arc::new(trained.gmm), Arc::new(trained.value))
            })
            .clone()
    }
}

/// Default params for a profile with order/worker counts scaled.
pub fn scaled_params(profile: CityProfile, scale: f64) -> ScenarioParams {
    let mut p = ScenarioParams::default_for(profile);
    p.n_orders = ((p.n_orders as f64 * scale) as usize).max(50);
    p.n_workers = ((p.n_workers as f64 * scale) as usize).max(10);
    p
}

/// The paper's compared algorithms for a profile (Figure legends).
fn algos(cache: &mut TrainedCache, profile: CityProfile) -> Vec<Algo> {
    let (gmm, value) = cache.get(profile);
    vec![
        Algo::Gdp,
        Algo::Gas,
        Algo::WatterOnline,
        Algo::WatterTimeout,
        Algo::WatterExpectGmm(gmm),
        Algo::WatterExpectValue(value),
    ]
}

fn run_point(
    rows: &mut Vec<ExperimentRow>,
    scenario: &Scenario,
    x: String,
    cache: &mut TrainedCache,
) {
    for algo in algos(cache, scenario.params.profile) {
        let name = algo.name().to_string();
        let stats = run_algorithm(scenario, algo);
        rows.push(ExperimentRow {
            city: scenario.params.profile.tag().to_string(),
            x: x.clone(),
            algorithm: name,
            stats,
        });
    }
}

/// Figure 3: vary the number of riders `n`.
pub fn fig3(scale: f64) -> Vec<ExperimentRow> {
    let mut cache = TrainedCache::new(scale);
    let mut rows = Vec::new();
    for profile in CityProfile::ALL {
        for n in ScenarioParams::rider_sweep(profile) {
            let n = ((n as f64 * scale) as usize).max(50);
            let mut params = scaled_params(profile, scale);
            params.n_orders = n;
            let scenario = Scenario::build(params);
            run_point(&mut rows, &scenario, format!("n={n}"), &mut cache);
        }
    }
    rows
}

/// Figure 4: vary the number of workers `m`.
pub fn fig4(scale: f64) -> Vec<ExperimentRow> {
    let mut cache = TrainedCache::new(scale);
    let mut rows = Vec::new();
    for profile in CityProfile::ALL {
        for m in ScenarioParams::worker_sweep() {
            let m = ((m as f64 * scale) as usize).max(10);
            let mut params = scaled_params(profile, scale);
            params.n_workers = m;
            let scenario = Scenario::build(params);
            run_point(&mut rows, &scenario, format!("m={m}"), &mut cache);
        }
    }
    rows
}

/// Figure 5: vary the deadline scale τ.
pub fn fig5(scale: f64) -> Vec<ExperimentRow> {
    let mut cache = TrainedCache::new(scale);
    let mut rows = Vec::new();
    for profile in CityProfile::ALL {
        for tau in ScenarioParams::deadline_sweep() {
            let mut params = scaled_params(profile, scale);
            params.deadline_scale = tau;
            let scenario = Scenario::build(params);
            run_point(&mut rows, &scenario, format!("tau={tau}"), &mut cache);
        }
    }
    rows
}

/// Figure 6: vary the maximum vehicle capacity Kw.
pub fn fig6(scale: f64) -> Vec<ExperimentRow> {
    let mut cache = TrainedCache::new(scale);
    let mut rows = Vec::new();
    for profile in CityProfile::ALL {
        for kw in ScenarioParams::capacity_sweep() {
            let mut params = scaled_params(profile, scale);
            params.max_capacity = kw;
            let scenario = Scenario::build(params);
            run_point(&mut rows, &scenario, format!("Kw={kw}"), &mut cache);
        }
    }
    rows
}

/// Appendix D: vary the watching window η (WATTER variants only — the
/// baselines do not use η).
pub fn appendix_eta(scale: f64) -> Vec<ExperimentRow> {
    let mut cache = TrainedCache::new(scale);
    let mut rows = Vec::new();
    let profile = CityProfile::Chengdu;
    for eta in ScenarioParams::eta_sweep() {
        let mut params = scaled_params(profile, scale);
        params.wait_scale = eta;
        let scenario = Scenario::build(params);
        let (gmm, value) = cache.get(profile);
        for algo in [
            Algo::WatterOnline,
            Algo::WatterTimeout,
            Algo::WatterExpectGmm(gmm.clone()),
            Algo::WatterExpectValue(value.clone()),
        ] {
            let name = algo.name().to_string();
            let stats = run_algorithm(&scenario, algo);
            rows.push(ExperimentRow {
                city: profile.tag().into(),
                x: format!("eta={eta}"),
                algorithm: name,
                stats,
            });
        }
    }
    rows
}

/// Appendix F: vary the time slot / check period Δt.
pub fn appendix_dt(scale: f64) -> Vec<ExperimentRow> {
    let mut cache = TrainedCache::new(scale);
    let mut rows = Vec::new();
    let profile = CityProfile::Chengdu;
    for dt in ScenarioParams::dt_sweep() {
        let mut params = scaled_params(profile, scale);
        params.check_period = dt;
        let scenario = Scenario::build(params);
        run_point(&mut rows, &scenario, format!("dt={dt}"), &mut cache);
    }
    rows
}

/// Appendix G: vary the grid-index dimension g.
pub fn appendix_grid(scale: f64) -> Vec<ExperimentRow> {
    let mut rows = Vec::new();
    let profile = CityProfile::Chengdu;
    for g in ScenarioParams::grid_sweep() {
        let mut params = scaled_params(profile, scale);
        params.grid_dim = g;
        // Re-train per grid size: the state dimensionality changes.
        let mut train_params = params.clone();
        train_params.seed ^= 0xDEAD_BEEF;
        let trained = train(&Scenario::build(train_params), &TrainingConfig::default());
        let scenario = Scenario::build(params);
        for algo in [
            Algo::WatterExpectGmm(Arc::new(trained.gmm)),
            Algo::WatterExpectValue(Arc::new(trained.value)),
        ] {
            let name = algo.name().to_string();
            let stats = run_algorithm(&scenario, algo);
            rows.push(ExperimentRow {
                city: profile.tag().into(),
                x: format!("g={g}"),
                algorithm: name,
                stats,
            });
        }
    }
    rows
}

/// Loss-weight study (appendix C/E): train with different ω and report the
/// resulting evaluation extra time plus the training-loss trace.
pub fn appendix_omega(scale: f64) -> (Vec<ExperimentRow>, Vec<(f64, Vec<f32>)>) {
    let mut rows = Vec::new();
    let mut curves = Vec::new();
    let profile = CityProfile::Chengdu;
    let params = scaled_params(profile, scale);
    let mut train_params = params.clone();
    train_params.seed ^= 0xDEAD_BEEF;
    let training = Scenario::build(train_params);
    let scenario = Scenario::build(params);
    for omega in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut cfg = TrainingConfig::default();
        cfg.trainer.omega = omega;
        let trained = train(&training, &cfg);
        curves.push((omega, trained.losses.clone()));
        let stats = run_algorithm(&scenario, Algo::WatterExpectValue(Arc::new(trained.value)));
        rows.push(ExperimentRow {
            city: profile.tag().into(),
            x: format!("omega={omega}"),
            algorithm: "WATTER-expect".into(),
            stats,
        });
    }
    (rows, curves)
}

/// Design-choice ablations called out in DESIGN.md: clique-enumeration
/// fan-out (`max_neighbors`), demand correlation (`echo_prob`) and the
/// rider-cancellation robustness check.
pub fn ablations(scale: f64) -> Vec<ExperimentRow> {
    let mut rows = Vec::new();
    let profile = CityProfile::Chengdu;

    // (a) clique fan-out: bounds the best-group search; the paper has no
    // such bound, so the ablation checks the bound is inactive-ish.
    for fanout in [4usize, 8, 12, 16] {
        let params = scaled_params(profile, scale);
        let scenario = Scenario::build(params);
        let mut wcfg = watter::runner::watter_config(&scenario);
        wcfg.pool.clique.max_neighbors = fanout;
        let cfg = watter::runner::sim_config(&scenario);
        let mut d = watter_sim::WatterDispatcher::new(wcfg, watter_strategy::OnlinePolicy);
        let m = watter_sim::run(
            scenario.orders.clone(),
            scenario.workers.clone(),
            &mut d,
            scenario.oracle.as_ref(),
            cfg,
        );
        rows.push(ExperimentRow {
            city: profile.tag().into(),
            x: format!("fanout={fanout}"),
            algorithm: "WATTER-online".into(),
            stats: RunStats::from(&m),
        });
    }

    // (b) demand correlation: how much of the pooling benefit comes from
    // commuter-flow structure.
    for echo in [0.0f64, 0.3, 0.55, 0.8] {
        let mut params = scaled_params(profile, scale);
        params.echo_prob = echo;
        let scenario = Scenario::build(params);
        let stats = run_algorithm(&scenario, Algo::WatterOnline);
        rows.push(ExperimentRow {
            city: profile.tag().into(),
            x: format!("echo={echo}"),
            algorithm: "WATTER-online".into(),
            stats,
        });
    }

    // (c) rider cancellation: robustness of the pool to impatience.
    for (tag, model) in [
        ("cancel=off", watter_sim::CancellationModel::OFF),
        ("cancel=mild", watter_sim::CancellationModel::mild()),
        (
            "cancel=heavy",
            watter_sim::CancellationModel {
                base_hazard: 0.005,
                impatience: 0.08,
            },
        ),
    ] {
        let params = scaled_params(profile, scale);
        let scenario = Scenario::build(params);
        let stats = run_algorithm(&scenario, Algo::WatterOnlineCancel(model));
        rows.push(ExperimentRow {
            city: profile.tag().into(),
            x: tag.into(),
            algorithm: "WATTER-online".into(),
            stats,
        });
    }
    rows
}

/// One row of the oracle engineering study: a (city size, backend)
/// build/query measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OracleBenchRow {
    /// City side length in blocks.
    pub city_side: usize,
    /// Node count (`side²`).
    pub nodes: usize,
    /// Backend tag: `dense-serial`, `dense-parallel`, `alt16`, `ch`,
    /// `dijkstra`.
    pub backend: String,
    /// One-off construction time, milliseconds.
    pub build_ms: f64,
    /// Resident size of the precomputed structure, bytes.
    pub bytes: u64,
    /// Mean point-query latency over a fixed random pair set, microseconds.
    pub query_us: f64,
    /// Cold queries timed per backend at this size.
    pub queries: usize,
}

/// Travel-cost oracle study: build time, memory and point-query latency of
/// the dense table (serial and parallel build), the ALT oracle, the
/// contraction hierarchy and raw Dijkstra across city sizes. All backends
/// return bit-identical costs; this quantifies the memory/latency
/// trade-off documented in the README. Dense rows are skipped beyond
/// `DENSE_NODE_LIMIT` (the table would not fit), and per-query search
/// backends time fewer pairs on metropolis-scale graphs to keep the study
/// runnable.
pub fn oracle_study(sides: &[usize]) -> Vec<OracleBenchRow> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use std::time::Instant;
    use watter_core::{NodeId, DENSE_NODE_LIMIT};
    use watter_road::{dijkstra, AltOracle, ChOracle, CostMatrix, RoadGraph};

    const LANDMARKS: usize = 16;

    let mut rows = Vec::new();
    for &side in sides {
        let graph = Arc::new(CityProfile::Chengdu.city_config(side).generate(7));
        let n = graph.node_count();
        // Per-query searches on a 10⁵-node graph cost milliseconds
        // (Dijkstra: tens of ms); cap the pair count so the study stays
        // minutes, not hours, while means remain stable.
        let queries = if n > 20_000 { 200 } else { 2_000 };
        let mut rng = StdRng::seed_from_u64(side as u64);
        let pairs: Vec<(NodeId, NodeId)> = (0..queries)
            .map(|_| {
                (
                    NodeId(rng.gen_range(0..n as u32)),
                    NodeId(rng.gen_range(0..n as u32)),
                )
            })
            .collect();
        let time_queries = |f: &dyn Fn(NodeId, NodeId) -> i64| {
            let t0 = Instant::now();
            let mut acc = 0i64;
            for &(a, b) in &pairs {
                acc = acc.wrapping_add(f(a, b));
            }
            std::hint::black_box(acc);
            t0.elapsed().as_secs_f64() * 1e6 / queries as f64
        };
        let mut push = |backend: &str, build_ms: f64, bytes: u64, query_us: f64| {
            rows.push(OracleBenchRow {
                city_side: side,
                nodes: n,
                backend: backend.to_string(),
                build_ms,
                bytes,
                query_us,
                queries,
            });
        };

        if n <= DENSE_NODE_LIMIT {
            let t0 = Instant::now();
            let serial = CostMatrix::build_serial(&graph);
            let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
            let q = time_queries(&|a, b| watter_core::TravelCost::cost(&serial, a, b));
            push("dense-serial", serial_ms, (n * n * 4) as u64, q);
            drop(serial);

            let t0 = Instant::now();
            let parallel = CostMatrix::build(&graph);
            let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
            let q = time_queries(&|a, b| watter_core::TravelCost::cost(&parallel, a, b));
            push("dense-parallel", parallel_ms, (n * n * 4) as u64, q);
            drop(parallel);
        }

        let t0 = Instant::now();
        let alt = AltOracle::build(Arc::clone(&graph), LANDMARKS);
        let alt_ms = t0.elapsed().as_secs_f64() * 1e3;
        let q = time_queries(&|a, b| watter_core::TravelCost::cost(&alt, a, b));
        push(
            &format!("alt{LANDMARKS}"),
            alt_ms,
            alt.landmark_bytes() as u64,
            q,
        );
        drop(alt);

        let t0 = Instant::now();
        let ch = ChOracle::build(Arc::clone(&graph));
        let ch_ms = t0.elapsed().as_secs_f64() * 1e3;
        let q = time_queries(&|a, b| watter_core::TravelCost::cost(&ch, a, b));
        push("ch", ch_ms, ch.resident_bytes() as u64, q);
        drop(ch);

        let graph_ref: &RoadGraph = &graph;
        let q = time_queries(&|a, b| dijkstra::shortest_path_cost(graph_ref, a, b));
        push("dijkstra", 0.0, 0, q);
    }
    rows
}

/// One row of the pooling-acceleration scaling study: a (configuration)
/// large-city run with its dispatch outcome and wall-clock cost.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PoolScaleRow {
    /// City side length in blocks.
    pub city_side: usize,
    /// Node count (`side²`).
    pub nodes: usize,
    /// Acceleration configuration: `full-scan` (PR 2-style pool insert
    /// scanning every pooled order, uncached oracle), `spatial`
    /// (grid-pruned insert), `spatial+cache` (grid-pruned insert +
    /// memoized oracle). All three use the bound-guided pre-filter.
    /// `spatial+cache tN` adds the sharded parallel dispatch engine on
    /// `N` threads.
    pub config: String,
    /// Dispatch-engine worker threads (1 = sequential engine).
    pub threads: usize,
    /// Order-pool shards (1 = unsharded).
    pub shards: usize,
    /// Orders simulated.
    pub orders: usize,
    /// Orders served / rejected — must be identical across configurations
    /// (the layers are exact accelerations, not approximations).
    pub served: u64,
    /// Orders rejected.
    pub rejected: u64,
    /// Extra Time (the METRS objective Φ), seconds.
    pub extra_time_s: f64,
    /// Service rate, percent.
    pub service_rate_pct: f64,
    /// End-to-end wall time of the simulation, seconds.
    pub wall_s: f64,
    /// Wall time per order, milliseconds — the headline scaling number.
    pub per_order_ms: f64,
    /// Cost-cache hits (0 when the cache is off).
    pub cache_hits: u64,
    /// Cost-cache misses (0 when the cache is off).
    pub cache_misses: u64,
}

/// Pooling-acceleration scaling study (`reproduce -- pool [side]`): run
/// the large-city scenario under each acceleration configuration and
/// record per-order wall time. Dispatch outcomes must match across
/// configurations — the function asserts it, so a regression that breaks
/// the bit-identical guarantee fails the study loudly.
pub fn pool_scale_study(city_side: usize) -> Vec<PoolScaleRow> {
    use std::time::Instant;
    use watter::runner::{sim_config, watter_config};
    use watter_core::TravelBound;
    use watter_road::CachedOracle;

    let mut params = ScenarioParams::large_city();
    params.city_side = city_side;
    let mut scenario = Scenario::build(params);
    let nodes = scenario.graph.node_count();

    // The threads-vs-throughput column: the best single-threaded
    // configuration rerun on the parallel sharded engine. Outcomes must
    // stay bit-identical; only wall-clock may move (and only moves on a
    // multi-core host).
    let mut rows: Vec<PoolScaleRow> = Vec::new();
    for (config, spatial, cache, threads, shards) in [
        ("full-scan", false, false, 1, 1),
        ("spatial", true, false, 1, 1),
        ("spatial+cache", true, true, 1, 1),
        ("spatial+cache t2", true, true, 2, 2),
        ("spatial+cache t4", true, true, 4, 4),
    ] {
        scenario.params.parallelism = watter_core::DispatchParallelism { threads, shards };
        let cached =
            cache.then(|| CachedOracle::with_default_capacity(Arc::clone(&scenario.oracle)));
        let oracle: &dyn TravelBound = match &cached {
            Some(c) => c,
            None => scenario.oracle.as_ref(),
        };
        let mut wcfg = watter_config(&scenario);
        if !spatial {
            wcfg.spatial = None;
        }
        let mut d = WatterDispatcher::new(wcfg, OnlinePolicy);
        let t0 = Instant::now();
        let m = watter_sim::run(
            scenario.orders.clone(),
            scenario.workers.clone(),
            &mut d,
            oracle,
            sim_config(&scenario),
        );
        let wall_s = t0.elapsed().as_secs_f64();
        let stats = RunStats::from(&m);
        let row = PoolScaleRow {
            city_side,
            nodes,
            config: config.to_string(),
            threads,
            shards,
            orders: scenario.orders.len(),
            served: m.served_orders,
            rejected: m.rejected_orders,
            extra_time_s: stats.extra_time,
            service_rate_pct: stats.service_rate_pct,
            wall_s,
            per_order_ms: wall_s * 1e3 / scenario.orders.len().max(1) as f64,
            cache_hits: cached.as_ref().map_or(0, |c| c.hits()),
            cache_misses: cached.as_ref().map_or(0, |c| c.misses()),
        };
        if let Some(base) = rows.first() {
            assert_eq!(
                (row.served, row.rejected, row.extra_time_s),
                (base.served, base.rejected, base.extra_time_s),
                "acceleration config `{config}` changed dispatch outcomes"
            );
        }
        rows.push(row);
    }
    rows
}

/// One row of the observability overhead study: the large-city run
/// under one recorder configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObsRow {
    /// City side length in blocks.
    pub city_side: usize,
    /// Node count (`side²`).
    pub nodes: usize,
    /// Recorder configuration: `baseline` (the plain [`run_full`]
    /// entry, recorder structurally absent), `disabled` (a disabled
    /// recorder threaded through every hook — the zero-cost claim) or
    /// `enabled` (full registry: counters, spans, windows, trace).
    pub config: String,
    /// Timed repetitions (wall numbers are best-of).
    pub reps: usize,
    /// Orders simulated.
    pub orders: usize,
    /// Orders served — must be identical across configurations.
    pub served: u64,
    /// Orders rejected.
    pub rejected: u64,
    /// Extra Time (the METRS objective Φ), seconds.
    pub extra_time_s: f64,
    /// Best end-to-end wall time of the simulation, seconds.
    pub wall_s: f64,
    /// Best wall time per order, milliseconds.
    pub per_order_ms: f64,
    /// Wall-time overhead vs the baseline row, percent (the study's
    /// headline: `disabled` must sit in the noise floor, `enabled`
    /// within the 5% budget).
    pub overhead_pct: f64,
    /// Per-stage latency breakdown (`enabled` row only).
    pub stages: Vec<watter_obs::StageSample>,
}

/// Observability overhead study (`reproduce -- obs [side]`): the
/// large-city scenario timed under no recorder, a disabled recorder
/// and a fully enabled recorder. Dispatch outcomes must be identical
/// across all three (asserted — the metrics are observers, not
/// participants); only wall clock may move, and the `reproduce` binary
/// gates the enabled overhead at 5%.
pub fn obs_study(city_side: usize, reps: usize) -> Vec<ObsRow> {
    use std::time::Instant;
    use watter::runner::{run_full, run_full_recorded, DriveMode};
    use watter_obs::Recorder;

    let mut params = ScenarioParams::large_city();
    params.city_side = city_side;
    // The cache both accelerates the ALT oracle and exercises the
    // hit/miss observability stages.
    params.cost_cache = true;
    // More riders than the pool study so each timed run lasts long
    // enough to resolve sub-percent overhead differences.
    params.n_orders = (params.n_orders * 10).max(400);
    params.n_workers = (params.n_workers * 10).max(100);
    let scenario = Scenario::build(params);
    let nodes = scenario.graph.node_count();

    // Untimed warm-up so the first timed configuration doesn't pay the
    // process's one-off costs (allocator growth, page faults, lazily
    // built oracle state) that later configurations would get for free.
    run_full(&scenario, Algo::WatterOnline, DriveMode::Batch).expect("batch mode always runs");

    // Reps are interleaved (baseline, disabled, enabled, baseline, …)
    // rather than blocked per configuration: on a busy host wall times
    // drift over minutes, and blocked reps would alias that drift into
    // the overhead comparison.
    let configs = ["baseline", "disabled", "enabled"];
    let reps = reps.max(1);
    let mut walls = [f64::INFINITY; 3];
    let mut outcomes: Vec<Option<(Measurements, watter_obs::ObsSnapshot)>> =
        vec![None; configs.len()];
    for _ in 0..reps {
        for (i, config) in configs.iter().enumerate() {
            let recorder = match *config {
                "enabled" => Recorder::enabled(),
                _ => Recorder::disabled(),
            };
            let t0 = Instant::now();
            let out = match *config {
                "baseline" => run_full(&scenario, Algo::WatterOnline, DriveMode::Batch),
                _ => run_full_recorded(
                    &scenario,
                    Algo::WatterOnline,
                    DriveMode::Batch,
                    recorder.clone(),
                ),
            }
            .expect("batch mode always runs");
            walls[i] = walls[i].min(t0.elapsed().as_secs_f64());
            outcomes[i] = Some((out.measurements, recorder.snapshot()));
        }
    }

    let mut rows: Vec<ObsRow> = Vec::new();
    for (i, config) in configs.iter().enumerate() {
        let (m, snap) = outcomes[i].take().expect("reps >= 1");
        let stats = RunStats::from(&m);
        let wall_s = walls[i];
        let baseline_wall = rows.first().map_or(wall_s, |r| r.wall_s);
        let row = ObsRow {
            city_side,
            nodes,
            config: config.to_string(),
            reps,
            orders: scenario.orders.len(),
            served: m.served_orders,
            rejected: m.rejected_orders,
            extra_time_s: stats.extra_time,
            wall_s,
            per_order_ms: wall_s * 1e3 / scenario.orders.len().max(1) as f64,
            overhead_pct: (wall_s - baseline_wall) / baseline_wall * 100.0,
            stages: snap.stages,
        };
        if let Some(base) = rows.first() {
            assert_eq!(
                (row.served, row.rejected, row.extra_time_s),
                (base.served, base.rejected, base.extra_time_s),
                "recorder config `{config}` changed dispatch outcomes"
            );
        }
        rows.push(row);
    }
    rows
}

/// One row of the KPI study: the operational report of a
/// (city, algorithm) run — the service-operations view
/// (`reproduce -- kpis`), complementing the paper's four headline
/// metrics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KpiRow {
    /// City tag (NYC/CDC/XIA).
    pub city: String,
    /// Algorithm name.
    pub algorithm: String,
    /// The full KPI report (distributions, utilization, backlog marks).
    pub report: KpiReport,
}

/// KPI study (`reproduce -- kpis [scale]`): run the untrained algorithms
/// on each profile through the batch driver and report the KPI surface —
/// extra-time distribution, fleet utilization, dispatch-latency
/// percentiles, backlog high-water marks.
pub fn kpi_study(scale: f64) -> Vec<KpiRow> {
    use watter::runner::{run_full, DriveMode};
    let mut rows = Vec::new();
    for profile in CityProfile::ALL {
        let scenario = Scenario::build(scaled_params(profile, scale));
        for algo in [
            Algo::Gdp,
            Algo::NonSharing,
            Algo::WatterOnline,
            Algo::WatterTimeout,
        ] {
            let name = algo.name();
            let out = run_full(&scenario, algo, DriveMode::Batch)
                .expect("batch mode is supported by every algorithm");
            rows.push(KpiRow {
                city: profile.tag().to_string(),
                algorithm: name.to_string(),
                report: out.kpis.report(&out.measurements),
            });
        }
    }
    rows
}

/// Example 1 (Figure 1 + Table I): the worked 6-node example.
pub mod example1 {
    use watter::prelude::*;
    use watter_core::{NodeId, OrderId, WorkerId};
    use watter_road::{graph::Edge, CostMatrix, GridIndex, RoadGraph};

    /// Node names of Figure 1.
    pub const NAMES: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

    /// Build the Figure 1 road network: 6 nodes, 7 edges, 1 minute each.
    ///
    /// The topology is reconstructed from the example's stated trajectory
    /// costs: `a–b, b–c, c–f, f–e, e–d, a–d, b–e`, which reproduces every
    /// travel time quoted in Example 1 (`cost(a,c)=2`, `cost(d,c)=3`,
    /// `cost(d,f)=2`, `cost(e,f)=1` minutes).
    pub fn network() -> RoadGraph {
        let coords = vec![
            (0.0, 0.0), // a
            (1.0, 0.0), // b
            (2.0, 0.0), // c
            (0.0, 1.0), // d
            (1.0, 1.0), // e
            (2.0, 1.0), // f
        ];
        let e = |a: u32, b: u32| Edge {
            from: NodeId(a),
            to: NodeId(b),
            travel: 60,
        };
        RoadGraph::from_undirected_edges(
            coords,
            vec![
                e(0, 1), // a-b
                e(1, 2), // b-c
                e(2, 5), // c-f
                e(5, 4), // f-e
                e(4, 3), // e-d
                e(0, 3), // a-d
                e(1, 4), // b-e
            ],
        )
    }

    /// The four orders of Table I (release seconds, pick-up, drop-off),
    /// with generous deadlines so every strategy in the example stays
    /// feasible.
    pub fn orders() -> Vec<Order> {
        let matrix = CostMatrix::build(&network());
        let spec = [
            (5, 0u32, 2u32), // o1: a -> c
            (8, 3, 5),       // o2: d -> f
            (10, 3, 2),      // o3: d -> c
            (12, 4, 5),      // o4: e -> f
        ];
        spec.iter()
            .enumerate()
            .map(|(i, &(t, p, d))| {
                let direct = watter_core::TravelCost::cost(&matrix, NodeId(p), NodeId(d));
                Order {
                    id: OrderId(i as u32),
                    pickup: NodeId(p),
                    dropoff: NodeId(d),
                    riders: 1,
                    release: t,
                    deadline: t + 6 * direct,
                    wait_limit: 2 * direct,
                    direct_cost: direct,
                }
            })
            .collect()
    }

    /// The two idle workers: w1 at `d`, w2 at `a` (inferred from the
    /// non-sharing trajectories `⟨d,f,e,f⟩` and `⟨a,c,d,c⟩`).
    pub fn workers() -> Vec<Worker> {
        vec![
            Worker::new(WorkerId(0), NodeId(3), 4),
            Worker::new(WorkerId(1), NodeId(0), 4),
        ]
    }

    /// Run one dispatcher over the example, returning `(total worker
    /// travel, route-only travel)` in minutes. The paper's Example 1
    /// compares route travel (the repositioning/approach legs are implicit
    /// in its trajectories).
    pub fn total_travel_minutes(which: &str) -> (f64, f64) {
        use watter_baselines::{
            GasConfig, GasDispatcher, GdpConfig, GdpDispatcher, NonSharingDispatcher,
        };
        use watter_pool::{cliques::CliqueLimits, PlanLimits, PoolConfig};
        use watter_sim::{run, SimConfig, WatterConfig, WatterDispatcher};
        let graph = network();
        let matrix = CostMatrix::build(&graph);
        let grid = GridIndex::build(&graph, 2);
        let cfg = SimConfig {
            check_period: 10,
            weights: CostWeights::default(),
            drain_horizon: 3600,
            parallelism: watter_core::DispatchParallelism::SEQUENTIAL,
        };
        let wcfg = WatterConfig {
            pool: PoolConfig {
                limits: PlanLimits { capacity: 4 },
                clique: CliqueLimits::default(),
                weights: CostWeights::default(),
            },
            grid,
            check_period: 10,
            cancellation: watter_sim::CancellationModel::OFF,
            cancel_seed: 0,
            spatial: None,
            parallelism: watter_core::DispatchParallelism::SEQUENTIAL,
        };
        let m = match which {
            "nonshare" => {
                let mut d = NonSharingDispatcher::new();
                run(orders(), workers(), &mut d, &matrix, cfg)
            }
            "gdp" => {
                let mut d = GdpDispatcher::new(GdpConfig::default(), &workers());
                run(orders(), workers(), &mut d, &matrix, cfg)
            }
            "gas" => {
                let mut d = GasDispatcher::new(GasConfig {
                    batch_window: 10,
                    max_group_size: 4,
                    beam_width: 8,
                });
                run(orders(), workers(), &mut d, &matrix, cfg)
            }
            "watter" => {
                let mut d = WatterDispatcher::new(wcfg, OnlinePolicy);
                run(orders(), workers(), &mut d, &matrix, cfg)
            }
            other => panic!("unknown strategy {other}"),
        };
        (m.worker_travel / 60.0, m.route_travel() / 60.0)
    }
}

/// One row of the chaos study: a seeded crash/corruption scenario and
/// whether recovery reproduced the uninterrupted reference bit for bit.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosStudyRow {
    /// City tag (NYC/CDC/XIA).
    pub city: String,
    /// Human-readable fault schedule, e.g. `crash@30+bitflip`.
    pub fault: String,
    /// Backpressure policy under test.
    pub policy: String,
    /// Line index the crash fired after.
    pub crashed_at: Option<u64>,
    /// Replay cursor recovery restored from.
    pub resumed_from: Option<u64>,
    /// Checkpoint generations discarded as corrupt during recovery.
    pub discarded_generations: u64,
    /// Orders shed / degraded-dispatched / blocked in the recovered run.
    pub shed: u64,
    /// See `shed`.
    pub degraded: u64,
    /// See `shed`.
    pub blocked: u64,
    /// The recovery contract: recovered == reference, bit for bit.
    pub consistent: bool,
}

/// Chaos study (`reproduce -- chaos [scale]`): for each city profile,
/// crash a checkpointing daemon mid-stream under every corruption mode ×
/// backpressure policy, recover it, and record whether the recovered run
/// matches the uninterrupted reference. Every row must report
/// `consistent: true`; the CI smoke greps for violations.
pub fn chaos_study(scale: f64) -> Vec<ChaosStudyRow> {
    use watter::chaos::{run_chaos, ChaosSpec};
    use watter_core::{CorruptKind, FaultPlan};
    use watter_sim::BackpressurePolicy;

    let corruptions: [(Option<CorruptKind>, &str); 3] = [
        (None, "clean"),
        (Some(CorruptKind::Torn), "torn"),
        (Some(CorruptKind::BitFlip), "bitflip"),
    ];
    let policies = [
        (BackpressurePolicy::Block, "block"),
        (BackpressurePolicy::Shed, "shed"),
        (BackpressurePolicy::Degrade, "degrade"),
    ];
    let mut rows = Vec::new();
    for profile in CityProfile::ALL {
        let mut params = scaled_params(profile, (scale * 0.25).min(1.0));
        params.city_side = params.city_side.min(12);
        let scenario = Scenario::build(params);
        let crash_at = (scenario.orders.len() / 2) as u64;
        for (corrupt, ctag) in corruptions {
            for (policy, ptag) in policies {
                let spec = ChaosSpec {
                    fault: FaultPlan {
                        seed: 0xC4A0 ^ crash_at,
                        crash_after_events: Some(crash_at),
                        corrupt_on_crash: corrupt,
                        malformed_every: Some(11),
                        delay_every: Some(9),
                        delay_slots: 2,
                        io_failures: 1,
                    },
                    policy,
                    high_watermark: 6,
                    low_watermark: 3,
                    checkpoint_every_events: 7,
                    keep: 3,
                };
                let dir = std::env::temp_dir().join(format!(
                    "watter_chaos_study_{}_{}_{}_{}",
                    std::process::id(),
                    profile.tag(),
                    ctag,
                    ptag
                ));
                let outcome =
                    run_chaos(&scenario, &spec, &dir).expect("chaos harness must not error");
                let _ = std::fs::remove_dir_all(&dir);
                rows.push(ChaosStudyRow {
                    city: profile.tag().to_string(),
                    fault: format!("crash@{crash_at}+{ctag}"),
                    policy: ptag.to_string(),
                    crashed_at: outcome.crashed_at,
                    resumed_from: outcome.resumed_from,
                    discarded_generations: outcome.discarded_generations,
                    shed: outcome.recovered.robustness.shed,
                    degraded: outcome.recovered.robustness.degraded,
                    blocked: outcome.recovered.robustness.blocked,
                    consistent: outcome.is_consistent(),
                });
            }
        }
    }
    rows
}
