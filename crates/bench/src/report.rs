//! Table printing and JSON persistence for experiment results.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Print a fixed-width table of experiment rows.
pub fn print_table(title: &str, rows: &[crate::ExperimentRow]) {
    println!("\n## {title}");
    println!(
        "{:<6} {:<10} {:<18} {:>13} {:>13} {:>11} {:>13} {:>8}",
        "city", "x", "algorithm", "extra(s)", "unified", "service(%)", "run(ms/ord)", "avg|g|"
    );
    for r in rows {
        println!(
            "{:<6} {:<10} {:<18} {:>13.0} {:>13.0} {:>11.1} {:>13.4} {:>8.2}",
            r.city,
            r.x,
            r.algorithm,
            r.stats.extra_time,
            r.stats.unified_cost,
            r.stats.service_rate_pct,
            r.stats.running_time * 1e3,
            r.stats.mean_group_size
        );
    }
}

/// Serialize any result set to pretty JSON under `results/`.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    let s = serde_json::to_string_pretty(value).expect("results serialize");
    f.write_all(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter::prelude::RunStats;

    #[test]
    fn json_roundtrips() {
        let dir = std::env::temp_dir().join("watter_bench_test");
        let path = dir.join("probe.json");
        let rows = vec![crate::ExperimentRow {
            city: "CDC".into(),
            x: "n=1000".into(),
            algorithm: "GDP".into(),
            stats: RunStats {
                extra_time: 1.0,
                unified_cost: 2.0,
                service_rate_pct: 3.0,
                running_time: 4.0,
                mean_group_size: 5.0,
            },
        }];
        write_json(&path, &rows).unwrap();
        let back: Vec<crate::ExperimentRow> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].stats.extra_time, 1.0);
        std::fs::remove_dir_all(dir).ok();
    }
}
