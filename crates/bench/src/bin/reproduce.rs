//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p watter-bench --release --bin reproduce -- [exp] [scale]
//! ```
//!
//! `exp` ∈ {example1, fig3, fig4, fig5, fig6, eta, dt, grid, omega,
//! ablations, kpis, oracle, pool, chaos, obs, all};
//! `scale` shrinks order/worker counts (default 1.0). Results are printed
//! as tables and written to `results/<exp>.json`.
//!
//! `pool` takes a city side length instead of a scale
//! (`reproduce -- pool 320` is the 10⁵-node scaling study) and writes
//! `results/pool_scale.json`.
//!
//! `obs` also takes a side length: it times the large-city run with no
//! recorder, a disabled recorder and a fully enabled recorder, writes
//! `results/obs.json` with the per-stage latency breakdown, and exits
//! non-zero if the enabled-path overhead exceeds 5%.

use std::path::PathBuf;
use watter_bench::{experiments, print_table, write_json};

fn results_path(name: &str) -> PathBuf {
    PathBuf::from("results").join(format!("{name}.json"))
}

fn run_figure(name: &str, title: &str, f: impl FnOnce() -> Vec<watter_bench::ExperimentRow>) {
    let t0 = std::time::Instant::now();
    let rows = f();
    print_table(title, &rows);
    write_json(&results_path(name), &rows).expect("write results");
    eprintln!(
        "[{name}] done in {:.1}s -> results/{name}.json",
        t0.elapsed().as_secs_f64()
    );
}

fn example1() {
    println!("\n## Example 1 (Figure 1 + Table I): worker travel (minutes)");
    println!("{:<22} {:>10} {:>12}", "strategy", "total", "route-only");
    let mut totals = Vec::new();
    for which in ["nonshare", "gdp", "gas", "watter"] {
        let (total, route) = experiments::example1::total_travel_minutes(which);
        println!("{:<22} {:>10.1} {:>12.1}", which, total, route);
        totals.push((which.to_string(), total, route));
    }
    write_json(&results_path("example1"), &totals).expect("write results");
}

fn omega(scale: f64) {
    let (rows, curves) = experiments::appendix_omega(scale);
    print_table("Appendix C/E: loss weight ω (CDC)", &rows);
    println!("\ntraining-loss curves (first→last, downsampled):");
    for (omega, losses) in &curves {
        let step = (losses.len() / 8).max(1);
        let pts: Vec<String> = losses
            .iter()
            .step_by(step)
            .map(|l| format!("{l:.0}"))
            .collect();
        println!("  ω={omega:<5} {}", pts.join(" → "));
    }
    write_json(&results_path("omega"), &rows).expect("write results");
}

fn oracle() {
    println!("\n## Oracle study: build/query trade-off per backend");
    println!(
        "{:<6} {:>8} {:<16} {:>12} {:>14} {:>12} {:>8}",
        "side", "nodes", "backend", "build (ms)", "memory (B)", "query (µs)", "queries"
    );
    // 320 is the metropolis-scale city (102 400 nodes); dense backends
    // are skipped there and CH/ALT/Dijkstra answer cold point queries.
    let rows = experiments::oracle_study(&[12, 20, 32, 320]);
    for r in &rows {
        println!(
            "{:<6} {:>8} {:<16} {:>12.1} {:>14} {:>12.2} {:>8}",
            r.city_side, r.nodes, r.backend, r.build_ms, r.bytes, r.query_us, r.queries
        );
    }
    write_json(&results_path("oracle"), &rows).expect("write results");
    eprintln!("[oracle] -> results/oracle.json");
}

fn pool(side: usize) {
    println!("\n## Pooling-acceleration scaling study ({side}×{side} blocks)");
    println!(
        "{:<18} {:>7} {:>7} {:>8} {:>7} {:>9} {:>11} {:>9} {:>13} {:>11} {:>11}",
        "config",
        "threads",
        "shards",
        "orders",
        "served",
        "rejected",
        "service(%)",
        "wall(s)",
        "per-order(ms)",
        "hits",
        "misses"
    );
    let rows = watter_bench::experiments::pool_scale_study(side);
    for r in &rows {
        println!(
            "{:<18} {:>7} {:>7} {:>8} {:>7} {:>9} {:>11.1} {:>9.1} {:>13.1} {:>11} {:>11}",
            r.config,
            r.threads,
            r.shards,
            r.orders,
            r.served,
            r.rejected,
            r.service_rate_pct,
            r.wall_s,
            r.per_order_ms,
            r.cache_hits,
            r.cache_misses
        );
    }
    write_json(&results_path("pool_scale"), &rows).expect("write results");
    eprintln!("[pool] -> results/pool_scale.json");
}

fn obs(side: usize) {
    println!("\n## Observability overhead study ({side}×{side} blocks)");
    println!(
        "{:<10} {:>8} {:>7} {:>9} {:>9} {:>13} {:>12}",
        "config", "orders", "served", "rejected", "wall(s)", "per-order(ms)", "overhead(%)"
    );
    let rows = watter_bench::experiments::obs_study(side, 3);
    for r in &rows {
        println!(
            "{:<10} {:>8} {:>7} {:>9} {:>9.2} {:>13.2} {:>+12.2}",
            r.config, r.orders, r.served, r.rejected, r.wall_s, r.per_order_ms, r.overhead_pct
        );
    }
    if let Some(enabled) = rows.iter().find(|r| r.config == "enabled") {
        println!("\nPer-stage latency (enabled run):");
        println!(
            "{:<22} {:>9} {:>11} {:>9} {:>9} {:>9} {:>9}",
            "stage", "count", "sum(µs)", "p50(µs)", "p90(µs)", "p99(µs)", "max(µs)"
        );
        for s in &enabled.stages {
            println!(
                "{:<22} {:>9} {:>11} {:>9} {:>9} {:>9} {:>9}",
                s.stage, s.count, s.sum_us, s.p50_us, s.p90_us, s.p99_us, s.max_us
            );
        }
    }
    write_json(&results_path("obs"), &rows).expect("write results");
    let enabled_overhead = rows
        .iter()
        .find(|r| r.config == "enabled")
        .map_or(0.0, |r| r.overhead_pct);
    eprintln!("[obs] enabled-path overhead {enabled_overhead:+.2}% -> results/obs.json");
    if enabled_overhead > 5.0 {
        eprintln!("[obs] FAIL: enabled-path overhead exceeds the 5% budget");
        std::process::exit(1);
    }
}

fn kpis(scale: f64) {
    println!("\n## KPI study: service-operations view per (city, algorithm)");
    println!(
        "{:<5} {:<22} {:>8} {:>9} {:>9} {:>8} {:>10} {:>8} {:>8}",
        "city",
        "algorithm",
        "serve(%)",
        "extraP50",
        "extraP90",
        "util(%)",
        "tickP99µs",
        "checks",
        "peakQ"
    );
    let rows = experiments::kpi_study(scale);
    for r in &rows {
        println!(
            "{:<5} {:<22} {:>8.1} {:>9.0} {:>9.0} {:>8.1} {:>10.1} {:>8} {:>8}",
            r.city,
            r.algorithm,
            r.report.service_rate_pct,
            r.report.extra_time_s.p50,
            r.report.extra_time_s.p90,
            r.report.fleet_utilization_pct,
            r.report.tick_latency_us.p99,
            r.report.checks,
            r.report.peak_pending
        );
    }
    write_json(&results_path("kpis"), &rows).expect("write results");
    eprintln!("[kpis] -> results/kpis.json");
}

fn chaos(scale: f64) {
    println!("\n## Chaos study: crash/corrupt/recover per (city, fault, policy)");
    println!(
        "{:<5} {:<18} {:<9} {:>9} {:>9} {:>10} {:>6} {:>9} {:>8} {:>11}",
        "city",
        "fault",
        "policy",
        "crash@",
        "resume@",
        "discarded",
        "shed",
        "degraded",
        "blocked",
        "consistent"
    );
    let rows = experiments::chaos_study(scale);
    for r in &rows {
        println!(
            "{:<5} {:<18} {:<9} {:>9} {:>9} {:>10} {:>6} {:>9} {:>8} {:>11}",
            r.city,
            r.fault,
            r.policy,
            r.crashed_at.map_or("-".into(), |c| c.to_string()),
            r.resumed_from.map_or("-".into(), |c| c.to_string()),
            r.discarded_generations,
            r.shed,
            r.degraded,
            r.blocked,
            r.consistent
        );
    }
    write_json(&results_path("chaos"), &rows).expect("write results");
    let violations = rows.iter().filter(|r| !r.consistent).count();
    eprintln!("[chaos] {violations} consistency violations -> results/chaos.json");
    if violations > 0 {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let exp = args.get(1).map(|s| s.as_str()).unwrap_or("all");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1.0);

    match exp {
        "example1" => example1(),
        "fig3" => run_figure("fig3", "Figure 3: varying number of riders n", || {
            experiments::fig3(scale)
        }),
        "fig4" => run_figure("fig4", "Figure 4: varying number of workers m", || {
            experiments::fig4(scale)
        }),
        "fig5" => run_figure("fig5", "Figure 5: varying deadline scale τ", || {
            experiments::fig5(scale)
        }),
        "fig6" => run_figure("fig6", "Figure 6: varying max capacity Kw", || {
            experiments::fig6(scale)
        }),
        "eta" => run_figure("eta", "Appendix D: watching window η (CDC)", || {
            experiments::appendix_eta(scale)
        }),
        "dt" => run_figure("dt", "Appendix F: check period Δt (CDC)", || {
            experiments::appendix_dt(scale)
        }),
        "grid" => run_figure("grid", "Appendix G: grid dimension g (CDC)", || {
            experiments::appendix_grid(scale)
        }),
        "omega" => omega(scale),
        "kpis" => kpis(scale),
        "oracle" => oracle(),
        "pool" => pool(args.get(2).and_then(|s| s.parse().ok()).unwrap_or(320)),
        "obs" => obs(args.get(2).and_then(|s| s.parse().ok()).unwrap_or(320)),
        "chaos" => chaos(scale),
        "ablations" => run_figure(
            "ablations",
            "Ablations: clique fan-out, demand correlation, cancellation",
            || experiments::ablations(scale),
        ),
        "all" => {
            example1();
            run_figure("fig3", "Figure 3: varying number of riders n", || {
                experiments::fig3(scale)
            });
            run_figure("fig4", "Figure 4: varying number of workers m", || {
                experiments::fig4(scale)
            });
            run_figure("fig5", "Figure 5: varying deadline scale τ", || {
                experiments::fig5(scale)
            });
            run_figure("fig6", "Figure 6: varying max capacity Kw", || {
                experiments::fig6(scale)
            });
            run_figure("eta", "Appendix D: watching window η (CDC)", || {
                experiments::appendix_eta(scale)
            });
            run_figure("dt", "Appendix F: check period Δt (CDC)", || {
                experiments::appendix_dt(scale)
            });
            run_figure("grid", "Appendix G: grid dimension g (CDC)", || {
                experiments::appendix_grid(scale)
            });
            omega(scale);
            run_figure(
                "ablations",
                "Ablations: clique fan-out, demand correlation, cancellation",
                || experiments::ablations(scale),
            );
            kpis(scale);
            oracle();
            chaos(scale);
            obs(320);
        }
        other => {
            eprintln!("unknown experiment `{other}`; use example1|fig3|fig4|fig5|fig6|eta|dt|grid|omega|ablations|kpis|oracle|pool|chaos|obs|all");
            std::process::exit(2);
        }
    }
}
