//! # watter-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section VII). The [`experiments`] module provides one
//! function per paper artifact (Figures 3–6, the appendix sweeps,
//! Example 1); the `reproduce` binary drives them and prints the same
//! rows/series the paper reports. Criterion micro-benchmarks live in
//! `benches/`.

pub mod experiments;
pub mod report;

pub use experiments::{ExperimentRow, OracleBenchRow, PoolScaleRow, TrainedCache};
pub use report::{print_table, write_json};
