//! Subprocess smoke test for the `reproduce` binary: `reproduce example1`
//! is the fastest paper artifact and exercises the whole stack (road
//! network, pooling, baselines, dispatch), so it doubles as the guard that
//! the experiment harness can't silently rot.

use std::process::Command;

#[test]
fn example1_reproduces_paper_numbers() {
    let out = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .arg("example1")
        .output()
        .expect("spawn reproduce");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "reproduce example1 failed: {}{}",
        stdout,
        String::from_utf8_lossy(&out.stderr)
    );
    for strategy in ["nonshare", "gdp", "gas", "watter"] {
        assert!(
            stdout.contains(strategy),
            "missing `{strategy}` row in:\n{stdout}"
        );
    }
    // Table I: 12 minutes of worker travel without sharing vs a 5-minute
    // shared group route (see tests/example1.rs for the full derivation).
    let row = |name: &str| -> Vec<f64> {
        stdout
            .lines()
            .find(|l| l.trim_start().starts_with(name))
            .unwrap_or_else(|| panic!("no `{name}` row in:\n{stdout}"))
            .split_whitespace()
            .skip(1)
            .map(|tok| tok.parse().expect("numeric cell"))
            .collect()
    };
    assert_eq!(row("nonshare")[0], 12.0, "non-sharing total travel");
    assert_eq!(row("gdp")[1], 5.0, "GDP group-route travel");
}
