//! Road-substrate micro-benchmarks: shortest paths, APSP construction,
//! grid-index queries — the operations behind every `cost()` call in the
//! framework.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use watter::prelude::*;
use watter_core::NodeId;
use watter_road::{dijkstra, GridIndex};

fn bench_road(c: &mut Criterion) {
    let city = CityConfig {
        width: 24,
        height: 24,
        ..CityConfig::default()
    }
    .generate(7);
    let matrix = CostMatrix::build(&city);
    let grid = GridIndex::build(&city, 10);
    let far = NodeId((city.node_count() - 1) as u32);

    let mut g = c.benchmark_group("road");
    g.bench_function("dijkstra_point_to_point_24x24", |b| {
        b.iter(|| dijkstra::shortest_path_cost(&city, black_box(NodeId(0)), black_box(far)))
    });
    g.bench_function("apsp_lookup", |b| {
        b.iter(|| watter_core::TravelCost::cost(&matrix, black_box(NodeId(17)), black_box(far)))
    });
    g.bench_function("apsp_build_12x12", |b| {
        let small = CityConfig {
            width: 12,
            height: 12,
            ..CityConfig::default()
        }
        .generate(7);
        b.iter(|| CostMatrix::build(black_box(&small)))
    });
    g.bench_function("grid_cell_of", |b| {
        b.iter(|| grid.cell_of(black_box(NodeId(123))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_road
}
criterion_main!(benches);
