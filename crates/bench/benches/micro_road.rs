//! Road-substrate micro-benchmarks: shortest paths, APSP construction,
//! grid-index queries — the operations behind every `cost()` call in the
//! framework.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use watter::prelude::*;
use watter_core::NodeId;
use watter_road::{dijkstra, AltOracle, GridIndex};

fn bench_road(c: &mut Criterion) {
    let city = CityConfig {
        width: 24,
        height: 24,
        ..CityConfig::default()
    }
    .generate(7);
    let matrix = CostMatrix::build(&city);
    let grid = GridIndex::build(&city, 10);
    let far = NodeId((city.node_count() - 1) as u32);

    let mut g = c.benchmark_group("road");
    g.bench_function("dijkstra_point_to_point_24x24", |b| {
        b.iter(|| dijkstra::shortest_path_cost(&city, black_box(NodeId(0)), black_box(far)))
    });
    g.bench_function("apsp_lookup", |b| {
        b.iter(|| watter_core::TravelCost::cost(&matrix, black_box(NodeId(17)), black_box(far)))
    });
    g.bench_function("apsp_build_12x12", |b| {
        let small = CityConfig {
            width: 12,
            height: 12,
            ..CityConfig::default()
        }
        .generate(7);
        b.iter(|| CostMatrix::build(black_box(&small)))
    });
    g.bench_function("grid_cell_of", |b| {
        b.iter(|| grid.cell_of(black_box(NodeId(123))))
    });
    g.finish();
}

/// Oracle subsystem benches: parallel vs serial APSP construction, and the
/// point-query latency ladder (dense lookup ≪ ALT A* < plain Dijkstra).
/// On a ≥ 4-core host the parallel build should come in ≥ 2× under the
/// serial one; on a single core the two coincide.
fn bench_oracle(c: &mut Criterion) {
    let city = CityConfig {
        width: 16,
        height: 16,
        ..CityConfig::default()
    }
    .generate(7);

    let big = Arc::new(
        CityConfig {
            width: 40,
            height: 40,
            ..CityConfig::default()
        }
        .generate(7),
    );
    let dense = CostMatrix::build(&big);
    let alt = AltOracle::build(Arc::clone(&big), 16);
    let far = NodeId((big.node_count() - 1) as u32);

    let mut g = c.benchmark_group("oracle");
    g.bench_function("apsp_build_serial_16x16", |b| {
        b.iter(|| CostMatrix::build_serial(black_box(&city)))
    });
    g.bench_function("apsp_build_parallel_16x16", |b| {
        b.iter(|| CostMatrix::build(black_box(&city)))
    });
    g.bench_function("dense_lookup_40x40", |b| {
        b.iter(|| watter_core::TravelCost::cost(&dense, black_box(NodeId(17)), black_box(far)))
    });
    g.bench_function("alt_point_query_40x40", |b| {
        b.iter(|| watter_core::TravelCost::cost(&alt, black_box(NodeId(17)), black_box(far)))
    });
    g.bench_function("dijkstra_point_query_40x40", |b| {
        b.iter(|| dijkstra::shortest_path_cost(&big, black_box(NodeId(17)), black_box(far)))
    });
    // Landmark preprocessing: the k single-source sweeps are independent
    // and run one scoped-thread chunk each; same ≥ 2×-on-≥ 4-cores
    // expectation as the APSP build above, bit-identical output.
    g.bench_function("landmarks_build_serial_40x40_k16", |b| {
        b.iter(|| watter_road::Landmarks::build_serial(black_box(&big), 16))
    });
    g.bench_function("landmarks_build_parallel_40x40_k16", |b| {
        b.iter(|| watter_road::Landmarks::build(black_box(&big), 16))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_road, bench_oracle
}
criterion_main!(benches);
