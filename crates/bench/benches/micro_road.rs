//! Road-substrate micro-benchmarks: shortest paths, APSP construction,
//! grid-index queries — the operations behind every `cost()` call in the
//! framework.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use watter::prelude::*;
use watter_core::NodeId;
use watter_road::{dijkstra, AltOracle, GridIndex};

fn bench_road(c: &mut Criterion) {
    let city = CityConfig {
        width: 24,
        height: 24,
        ..CityConfig::default()
    }
    .generate(7);
    let matrix = CostMatrix::build(&city);
    let grid = GridIndex::build(&city, 10);
    let far = NodeId((city.node_count() - 1) as u32);

    let mut g = c.benchmark_group("road");
    g.bench_function("dijkstra_point_to_point_24x24", |b| {
        b.iter(|| dijkstra::shortest_path_cost(&city, black_box(NodeId(0)), black_box(far)))
    });
    g.bench_function("apsp_lookup", |b| {
        b.iter(|| watter_core::TravelCost::cost(&matrix, black_box(NodeId(17)), black_box(far)))
    });
    g.bench_function("apsp_build_12x12", |b| {
        let small = CityConfig {
            width: 12,
            height: 12,
            ..CityConfig::default()
        }
        .generate(7);
        b.iter(|| CostMatrix::build(black_box(&small)))
    });
    g.bench_function("grid_cell_of", |b| {
        b.iter(|| grid.cell_of(black_box(NodeId(123))))
    });
    g.finish();
}

/// Oracle subsystem benches: parallel vs serial APSP construction, and the
/// point-query latency ladder (dense lookup ≪ ALT A* < plain Dijkstra).
/// On a ≥ 4-core host the parallel build should come in ≥ 2× under the
/// serial one; on a single core the two coincide.
fn bench_oracle(c: &mut Criterion) {
    let city = CityConfig {
        width: 16,
        height: 16,
        ..CityConfig::default()
    }
    .generate(7);

    let big = Arc::new(
        CityConfig {
            width: 40,
            height: 40,
            ..CityConfig::default()
        }
        .generate(7),
    );
    let dense = CostMatrix::build(&big);
    let alt = AltOracle::build(Arc::clone(&big), 16);
    let far = NodeId((big.node_count() - 1) as u32);

    let mut g = c.benchmark_group("oracle");
    g.bench_function("apsp_build_serial_16x16", |b| {
        b.iter(|| CostMatrix::build_serial(black_box(&city)))
    });
    g.bench_function("apsp_build_parallel_16x16", |b| {
        b.iter(|| CostMatrix::build(black_box(&city)))
    });
    g.bench_function("dense_lookup_40x40", |b| {
        b.iter(|| watter_core::TravelCost::cost(&dense, black_box(NodeId(17)), black_box(far)))
    });
    g.bench_function("alt_point_query_40x40", |b| {
        b.iter(|| watter_core::TravelCost::cost(&alt, black_box(NodeId(17)), black_box(far)))
    });
    g.bench_function("dijkstra_point_query_40x40", |b| {
        b.iter(|| dijkstra::shortest_path_cost(&big, black_box(NodeId(17)), black_box(far)))
    });
    // Landmark preprocessing: the k single-source sweeps are independent
    // and run one scoped-thread chunk each; same ≥ 2×-on-≥ 4-cores
    // expectation as the APSP build above, bit-identical output.
    g.bench_function("landmarks_build_serial_40x40_k16", |b| {
        b.iter(|| watter_road::Landmarks::build_serial(black_box(&big), 16))
    });
    g.bench_function("landmarks_build_parallel_40x40_k16", |b| {
        b.iter(|| watter_road::Landmarks::build(black_box(&big), 16))
    });
    g.finish();
}

/// Direct-mapped memo cache with one `Mutex` per slot — the design the
/// lock-free seqlock slots in `watter_road::CachedOracle` replaced. Kept
/// here (bench-only) as the contention baseline.
struct MutexCache<C> {
    inner: C,
    slots: Vec<std::sync::Mutex<Option<(u64, i64)>>>,
    mask: u64,
}

impl<C: watter_core::TravelCost> MutexCache<C> {
    fn new(inner: C, capacity: usize) -> Self {
        let cap = capacity.next_power_of_two();
        Self {
            inner,
            slots: (0..cap).map(|_| std::sync::Mutex::new(None)).collect(),
            mask: cap as u64 - 1,
        }
    }

    fn cost(&self, a: NodeId, b: NodeId) -> i64 {
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        let mut h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        let mut slot = self.slots[(h & self.mask) as usize].lock().unwrap();
        if let Some((k, c)) = *slot {
            if k == key {
                return c;
            }
        }
        let c = self.inner.cost(a, b);
        *slot = Some((key, c));
        c
    }
}

/// Reader contention on the travel-cost memo layer: the same mixed
/// hit/miss query stream through the lock-free seqlock slots of
/// [`watter_road::CachedOracle`] and through the per-slot `Mutex`
/// baseline, at 1 and 4 threads. The lock-free slots should be at worst
/// even single-threaded and pull ahead under concurrent readers (on a
/// single-core host the threaded numbers only measure scheduling, not
/// contention — see BENCH_pool_scale.json's host note).
fn bench_cache_contention(c: &mut Criterion) {
    use watter_road::CachedOracle;

    let city = Arc::new(
        CityConfig {
            width: 24,
            height: 24,
            ..CityConfig::default()
        }
        .generate(7),
    );
    let n = city.node_count() as u32;
    let matrix = Arc::new(CostMatrix::build(&city));
    // A skewed query stream: a hot working set plus a cold tail, so both
    // caches see hits, misses and slot collisions.
    let queries: Vec<(NodeId, NodeId)> = (0u64..4096)
        .map(|i| {
            let mut h = (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
            let a = (h % 64) as u32; // hot set
            let b = (h >> 32) as u32 % n; // cold tail
            (NodeId(a), NodeId(b))
        })
        .collect();

    let run = |threads: usize, cost: &(dyn Fn(NodeId, NodeId) -> i64 + Sync)| {
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|qs| scope.spawn(move || qs.iter().map(|&(a, b)| cost(a, b)).sum::<i64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i64>()
        })
    };

    let mut g = c.benchmark_group("cache_contention");
    for threads in [1usize, 4] {
        g.bench_function(format!("seqlock_slots_t{threads}"), |b| {
            let cache = CachedOracle::new(Arc::clone(&matrix), 1 << 10);
            b.iter(|| run(threads, &|a, b| watter_core::TravelCost::cost(&cache, a, b)))
        });
        g.bench_function(format!("mutex_slots_t{threads}"), |b| {
            let cache = MutexCache::new(Arc::clone(&matrix), 1 << 10);
            b.iter(|| run(threads, &|a, b| cache.cost(a, b)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_road, bench_oracle, bench_cache_contention
}
criterion_main!(benches);
