//! End-to-end figure benchmarks: one scaled-down sweep point per paper
//! figure, timing a full simulation run per algorithm. These keep `cargo
//! bench` fast while exercising exactly the code paths the `reproduce`
//! binary uses at full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use watter::runner::{run_algorithm, Algo};
use watter_workload::{CityProfile, Scenario, ScenarioParams};

fn small_scenario(profile: CityProfile) -> Scenario {
    let mut p = ScenarioParams::default_for(profile);
    p.n_orders = 200;
    p.n_workers = 40;
    p.city_side = 14;
    Scenario::build(p)
}

fn bench_figures(c: &mut Criterion) {
    let cdc = small_scenario(CityProfile::Chengdu);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    // Figure 3/4 default point: one run per algorithm (the paper's
    // running-time rows are exactly these wall-clock measurements).
    g.bench_function("fig3_point_gdp", |b| {
        b.iter(|| run_algorithm(&cdc, Algo::Gdp))
    });
    g.bench_function("fig3_point_gas", |b| {
        b.iter(|| run_algorithm(&cdc, Algo::Gas))
    });
    g.bench_function("fig3_point_watter_online", |b| {
        b.iter(|| run_algorithm(&cdc, Algo::WatterOnline))
    });
    g.bench_function("fig3_point_watter_timeout", |b| {
        b.iter(|| run_algorithm(&cdc, Algo::WatterTimeout))
    });
    g.bench_function("fig3_point_watter_const", |b| {
        b.iter(|| run_algorithm(&cdc, Algo::WatterConstant(150.0)))
    });
    // Figure 5 end points (τ sweep extremes).
    for tau in [1.2f64, 1.8] {
        let mut p = ScenarioParams::default_for(CityProfile::Chengdu);
        p.n_orders = 200;
        p.n_workers = 40;
        p.city_side = 14;
        p.deadline_scale = tau;
        let s = Scenario::build(p);
        g.bench_function(format!("fig5_tau{tau}_watter_online"), |b| {
            b.iter(|| run_algorithm(&s, Algo::WatterOnline))
        });
    }
    // Figure 6 end points (capacity extremes).
    for kw in [2u32, 5] {
        let mut p = ScenarioParams::default_for(CityProfile::Chengdu);
        p.n_orders = 200;
        p.n_workers = 40;
        p.city_side = 14;
        p.max_capacity = kw;
        let s = Scenario::build(p);
        g.bench_function(format!("fig6_kw{kw}_watter_online"), |b| {
            b.iter(|| run_algorithm(&s, Algo::WatterOnline))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
