//! Learning-component micro-benchmarks: GMM fitting, threshold
//! optimization and value-network inference — the overhead WATTER-expect
//! pays per decision (visible in the paper's running-time row).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use watter_learn::{gmm::Component, mlp::AdamConfig, optimal_threshold, Gmm, Mlp, StateFeaturizer};
use watter_road::{CityConfig, GridIndex};

fn bench_learn(c: &mut Criterion) {
    let truth = Gmm::new(vec![
        Component {
            weight: 0.6,
            mean: 120.0,
            var: 900.0,
        },
        Component {
            weight: 0.4,
            mean: 420.0,
            var: 3600.0,
        },
    ]);
    let mut rng = StdRng::seed_from_u64(5);
    let data: Vec<f64> = (0..2000).map(|_| truth.sample(&mut rng)).collect();

    let mut g = c.benchmark_group("learn");
    g.bench_function("gmm_fit_2000x3", |b| {
        b.iter(|| Gmm::fit(black_box(&data), 3, 25))
    });
    let gmm = Gmm::fit(&data, 3, 25);
    g.bench_function("optimal_threshold", |b| {
        b.iter(|| optimal_threshold(black_box(600.0), &gmm))
    });

    let city = CityConfig {
        width: 24,
        height: 24,
        ..CityConfig::default()
    }
    .generate(7);
    let feat = StateFeaturizer::new(GridIndex::build(&city, 10), 10);
    let net = Mlp::new(&[feat.dim(), 64, 32], AdamConfig::default(), 1);
    let x = vec![0.1f32; feat.dim()];
    g.bench_function("value_net_forward_502", |b| {
        b.iter(|| net.predict(black_box(&x)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_learn
}
criterion_main!(benches);
