//! Order-pool micro-benchmarks: route planning, pair-edge insertion,
//! clique enumeration and the GDP insertion operator — the inner loops of
//! the paper's running-time comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use watter_baselines::insertion::Schedule;
use watter_core::{NodeId, OrderId};
use watter_pool::{plan_min_cost, OrderPool, PlanLimits, PoolConfig};
use watter_workload::{CityProfile, Scenario, ScenarioParams};

fn scenario() -> Scenario {
    let mut p = ScenarioParams::default_for(CityProfile::Chengdu);
    p.n_orders = 300;
    p.n_workers = 30;
    Scenario::build(p)
}

fn bench_pool(c: &mut Criterion) {
    let s = scenario();
    let orders = &s.orders;
    let oracle = s.oracle.as_ref();
    let limits = PlanLimits { capacity: 4 };

    let mut g = c.benchmark_group("pool");
    g.bench_function("plan_route_pair", |b| {
        let now = orders[0].release.min(orders[1].release);
        b.iter(|| plan_min_cost(black_box(&[&orders[0], &orders[1]]), now, limits, oracle))
    });
    g.bench_function("plan_route_quad", |b| {
        let group: Vec<&watter_core::Order> = orders[0..4].iter().collect();
        let now = group.iter().map(|o| o.release).min().unwrap();
        b.iter(|| plan_min_cost(black_box(&group), now, limits, oracle))
    });
    g.bench_function("pool_insert_100", |b| {
        b.iter(|| {
            let mut pool = OrderPool::new(PoolConfig {
                limits,
                ..PoolConfig::default()
            });
            for o in &orders[..100] {
                pool.insert(o.clone(), o.release, &oracle);
            }
            black_box(pool.len())
        })
    });
    g.bench_function("gdp_insertion_scan", |b| {
        let mut sched = Schedule::idle(NodeId(0), 0, 4);
        for o in &orders[..3] {
            if let Some(ins) = sched.best_insertion(o, 0, &oracle) {
                sched.apply_insertion(o.clone(), ins, 0, &oracle);
            }
        }
        let probe = &orders[10];
        b.iter(|| sched.best_insertion(black_box(probe), 0, &oracle))
    });
    let _ = OrderId(0);
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pool
}
criterion_main!(benches);
