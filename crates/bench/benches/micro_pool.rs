//! Order-pool micro-benchmarks: route planning, pair-edge insertion,
//! clique enumeration and the GDP insertion operator — the inner loops of
//! the paper's running-time comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use watter_baselines::insertion::Schedule;
use watter_core::{NodeId, OrderId};
use watter_pool::{plan_min_cost, OrderPool, PlanLimits, PoolConfig, SpatialPrune};
use watter_road::CachedOracle;
use watter_workload::{CityProfile, Scenario, ScenarioParams};

fn scenario() -> Scenario {
    let mut p = ScenarioParams::default_for(CityProfile::Chengdu);
    p.n_orders = 300;
    p.n_workers = 30;
    Scenario::build(p)
}

fn bench_pool(c: &mut Criterion) {
    let s = scenario();
    let orders = &s.orders;
    let oracle = s.oracle.as_ref();
    let limits = PlanLimits { capacity: 4 };

    let mut g = c.benchmark_group("pool");
    g.bench_function("plan_route_pair", |b| {
        let now = orders[0].release.min(orders[1].release);
        b.iter(|| plan_min_cost(black_box(&[&orders[0], &orders[1]]), now, limits, oracle))
    });
    g.bench_function("plan_route_quad", |b| {
        let group: Vec<&watter_core::Order> = orders[0..4].iter().collect();
        let now = group.iter().map(|o| o.release).min().unwrap();
        b.iter(|| plan_min_cost(black_box(&group), now, limits, oracle))
    });
    g.bench_function("pool_insert_100", |b| {
        b.iter(|| {
            let mut pool = OrderPool::new(PoolConfig {
                limits,
                ..PoolConfig::default()
            });
            for o in &orders[..100] {
                pool.insert(o.clone(), o.release, &oracle);
            }
            black_box(pool.len())
        })
    });
    g.bench_function("gdp_insertion_scan", |b| {
        let mut sched = Schedule::idle(NodeId(0), 0, 4);
        for o in &orders[..3] {
            if let Some(ins) = sched.best_insertion(o, 0, &oracle) {
                sched.apply_insertion(o.clone(), ins, 0, &oracle);
            }
        }
        let probe = &orders[10];
        b.iter(|| sched.best_insertion(black_box(probe), 0, &oracle))
    });
    let _ = OrderId(0);
    g.finish();

    // The acceleration layers target the *point-query* oracle regime
    // (ALT), where every exact travel-cost query is an A* search: the
    // bound-guided pre-filter skips most searches outright, the cache
    // turns repeats into an array read, and spatial pruning keeps the
    // insert scan O(nearby). On the dense table those queries are already
    // O(1) array reads, so the layers are deliberately inert there (the
    // `pool_insert_100` number above is the dense control).
    let mut alt_params = ScenarioParams::default_for(CityProfile::Chengdu);
    alt_params.n_orders = 300;
    alt_params.n_workers = 30;
    alt_params.city_side = 40;
    alt_params.oracle = watter_core::OracleKind::Alt { landmarks: 8 };
    let s = Scenario::build(alt_params);
    let orders = &s.orders;
    let oracle = s.oracle.as_ref();

    let mut g = c.benchmark_group("pool");
    g.bench_function("pool_insert_100_alt", |b| {
        b.iter(|| {
            let mut pool = OrderPool::new(PoolConfig {
                limits,
                ..PoolConfig::default()
            });
            for o in &orders[..100] {
                pool.insert(o.clone(), o.release, &oracle);
            }
            black_box(pool.len())
        })
    });
    g.bench_function("pool_insert_100_alt_spatial", |b| {
        let spatial = SpatialPrune::for_graph(&s.graph, s.grid.clone());
        b.iter(|| {
            let mut pool = OrderPool::with_spatial(
                PoolConfig {
                    limits,
                    ..PoolConfig::default()
                },
                spatial.clone(),
            );
            for o in &orders[..100] {
                pool.insert(o.clone(), o.release, &oracle);
            }
            black_box(pool.len())
        })
    });
    g.bench_function("pool_insert_100_alt_spatial_cached", |b| {
        let spatial = SpatialPrune::for_graph(&s.graph, s.grid.clone());
        b.iter(|| {
            // Cache built inside the loop: steady-state hit rate is
            // reached within one batch, and a fresh cache per iteration
            // keeps the measurement honest about cold misses.
            let cached = CachedOracle::with_default_capacity(oracle);
            let mut pool = OrderPool::with_spatial(
                PoolConfig {
                    limits,
                    ..PoolConfig::default()
                },
                spatial.clone(),
            );
            for o in &orders[..100] {
                pool.insert(o.clone(), o.release, &cached);
            }
            black_box(pool.len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pool
}
criterion_main!(benches);
