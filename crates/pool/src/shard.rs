//! Grid-region sharding of the order pool.
//!
//! A [`ShardMap`] partitions the city's grid index into contiguous **row
//! bands**, one shard each. Every order has a single deterministic *owner
//! shard* — the shard of its pick-up cell — so shard membership is a pure
//! function of the order, never of thread scheduling. Groups whose members
//! straddle a band boundary need no special protocol: the shareability
//! graph is global, and each order's best group is owned (computed,
//! stored, proposed) by that order's home shard alone, which is exactly
//! the "deterministic owner resolves boundary pools" handoff rule.
//!
//! The canonical merge order for anything produced per shard is
//! `(shard_id, OrderId)`; because shard membership is scheduling-
//! independent, concatenating per-shard results in that order yields the
//! same sequence for every thread *and* shard count.

use watter_core::NodeId;
use watter_road::GridIndex;

/// Assignment of grid cells (and thereby orders, via their pick-up node)
/// to contiguous row-band shards.
#[derive(Clone, Debug)]
pub struct ShardMap {
    grid: GridIndex,
    shards: usize,
}

impl ShardMap {
    /// Partition `grid` into `shards` row bands. The count is clamped to
    /// `[1, grid.dim()]` — more shards than grid rows would leave empty
    /// bands with nothing to own.
    pub fn build(grid: GridIndex, shards: usize) -> Self {
        let shards = shards.clamp(1, grid.dim().max(1));
        Self { grid, shards }
    }

    /// Number of shards (≥ 1).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The grid the sharding is defined over.
    pub fn grid(&self) -> &GridIndex {
        &self.grid
    }

    /// Owner shard of a grid cell: its row band. Bands are as equal as
    /// integer division allows (`dim` rows over `shards` bands).
    pub fn shard_of_cell(&self, cell: usize) -> usize {
        let (_, row) = self.grid.cell_xy(cell);
        (row * self.shards / self.grid.dim()).min(self.shards - 1)
    }

    /// Owner shard of an order picked up at `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of_cell(self.grid.cell_of(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_road::citygen::CityConfig;

    fn grid(dim: usize) -> GridIndex {
        let g = CityConfig {
            width: 12,
            height: 12,
            ..Default::default()
        }
        .generate(7);
        GridIndex::build(&g, dim)
    }

    #[test]
    fn shard_count_clamped_to_grid_rows() {
        let m = ShardMap::build(grid(6), 64);
        assert_eq!(m.shards(), 6);
        let m = ShardMap::build(grid(6), 0);
        assert_eq!(m.shards(), 1);
    }

    #[test]
    fn every_cell_owned_by_exactly_one_valid_shard() {
        for shards in [1, 2, 3, 4, 6] {
            let m = ShardMap::build(grid(6), shards);
            for cell in 0..m.grid().cells() {
                assert!(m.shard_of_cell(cell) < m.shards());
            }
        }
    }

    #[test]
    fn bands_are_contiguous_and_monotone_in_row() {
        let m = ShardMap::build(grid(8), 3);
        let mut last = 0;
        for row in 0..8 {
            // Cell index = row * dim + col (see GridIndex::cell_xy).
            let s = m.shard_of_cell(row * 8);
            assert!(s >= last, "shard must not decrease with row");
            last = s;
        }
        assert_eq!(last, 2, "all bands used");
    }

    #[test]
    fn owner_is_a_pure_function_of_the_pickup() {
        let m = ShardMap::build(grid(6), 4);
        for n in [0u32, 5, 37, 101, 143] {
            let node = NodeId(n);
            assert_eq!(m.shard_of(node), m.shard_of(node));
        }
    }
}
