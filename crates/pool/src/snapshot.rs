//! Serializable snapshot of the order pool.
//!
//! [`PoolSnapshot`] captures the pool's *actual* state — pooled orders,
//! live shareability edges, and the best-group map — rather than a recipe
//! for rebuilding it, because pool state is **not** a pure function of the
//! pooled-order set: routes are planned at insert-time `now`, and
//! `offer_group` keeps the earlier group on mean-extra-time ties, so
//! replaying inserts from a later clock would diverge. Serializing the
//! graph and best map verbatim makes `restore` exact, which is what the
//! bit-identical `restore + replay == run` contract requires
//! (`tests/snapshot.rs`).
//!
//! Derived structures are rebuilt on restore, not serialized: the spatial
//! insert-prune buckets and shard membership are pure functions of the
//! pooled orders, and the `contained_in` reverse index is a pure function
//! of the best map.

use serde::{Deserialize, Serialize};
use watter_core::{Dur, Order, OrderId, Route, Ts};

/// One live shareability edge (`a < b`; each undirected edge once).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdgeSnapshot {
    /// Lower endpoint.
    pub a: OrderId,
    /// Upper endpoint.
    pub b: OrderId,
    /// Latest jointly feasible dispatch instant (`τ_e`, inclusive).
    pub expires_at: Ts,
    /// Travel cost of the pair's minimal-cost route.
    pub route_cost: Dur,
}

/// One entry of the best-group map: the owner and its group, with members
/// stored by id (rebuilt against the pooled-order handles on restore).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BestSnapshot {
    /// The pooled order this group is the best for.
    pub id: OrderId,
    /// Group members, in group order.
    pub members: Vec<OrderId>,
    /// The group's planned route.
    pub route: Route,
    /// Per-member detours, aligned with `members`.
    pub detours: Vec<Dur>,
}

/// Complete serializable state of an [`crate::OrderPool`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolSnapshot {
    /// Pooled orders, ascending by id.
    pub orders: Vec<Order>,
    /// Live shareability edges.
    pub edges: Vec<EdgeSnapshot>,
    /// Best-group map entries, ascending by owner id.
    pub best: Vec<BestSnapshot>,
    /// Lifetime counters.
    pub stats: crate::PoolStats,
}

/// Why a [`PoolSnapshot`] could not be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// An edge or best-group entry references an order that is not in the
    /// snapshot's pooled-order set.
    MissingOrder(OrderId),
    /// A best-group entry's detour list does not align with its members.
    MalformedGroup(OrderId),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingOrder(id) => write!(f, "snapshot references unpooled order {id}"),
            Self::MalformedGroup(id) => write!(f, "best group of {id} misaligned with members"),
        }
    }
}

impl std::error::Error for RestoreError {}
