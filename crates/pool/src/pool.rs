//! The order pool (Algorithm 1's data structures).
//!
//! [`OrderPool`] owns the temporal shareability graph and the **best-group
//! map** `Gb`: for every pooled order, the feasible shared group (clique of
//! size ≥ 2) with the smallest mean extra time. The map is maintained under
//! the four update events of Section IV-B:
//!
//! 1. **order arrival** — the arriving order's cliques are enumerated once;
//!    every member of an enumerated group whose mean extra time beats its
//!    current best adopts the new group;
//! 2. **order departure** (dispatch/rejection) — orders whose best group
//!    contained a departed member are recomputed;
//! 3. **edge expiry** — orders incident to expired edges revalidate;
//! 4. **group expiry** — a best group whose `τ_g` passed is recomputed.
//!
//! Best-group rankings are stable over time between structural events:
//! every pooled order's response time grows at 1 s/s, so each group's mean
//! extra time grows at exactly `β` s/s and comparisons are time-invariant.
//! This is what makes caching `Gb` sound.

use crate::cliques::{all_groups_for_par, best_group_for, best_group_for_par, CliqueLimits};
use crate::planner::PlanLimits;
use crate::shard::ShardMap;
use crate::share_graph::{PairEdge, ShareGraph};
use crate::snapshot::{BestSnapshot, EdgeSnapshot, PoolSnapshot, RestoreError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;
use watter_core::{CostWeights, Exec, Group, Order, OrderId, TravelBound, Ts};
use watter_obs::{Recorder, Stage};

/// Pool configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolConfig {
    /// Route-planner limits (vehicle capacity ceiling).
    pub limits: PlanLimits,
    /// Clique enumeration bounds.
    pub clique: CliqueLimits,
    /// Extra-time weights (α, β).
    pub weights: CostWeights,
}

/// Counters exposed for diagnostics and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Orders inserted over the pool's lifetime.
    pub inserted: u64,
    /// Orders removed (dispatch or rejection).
    pub removed: u64,
    /// Best-group recomputations triggered by update events.
    pub recomputes: u64,
    /// Groups enumerated during insertions.
    pub groups_enumerated: u64,
}

/// Per-shard membership bookkeeping (see [`ShardMap`]): each pooled order
/// belongs to exactly one slot — the row band of its pick-up cell — which
/// is the deterministic *owner* of its best group and proposals.
#[derive(Clone, Debug)]
struct ShardState {
    map: ShardMap,
    /// Pooled order ids per shard; `BTreeSet` keeps within-shard sweeps
    /// id-ordered so per-shard output is canonical before the merge.
    members: Vec<BTreeSet<OrderId>>,
}

/// The WATTER order pool.
///
/// By default fully sequential. [`OrderPool::with_parallelism`] turns on
/// the sharded parallel engine: pair-edge validation, clique search and
/// best-group recomputation fan out over an [`Exec`] thread pool, while
/// every state commit stays sequential in canonical `(shard, OrderId)` /
/// ascending-id order — so pool state is bit-identical for every thread
/// and shard count (`tests/parallel.rs` proves it end to end).
#[derive(Clone, Debug, Default)]
pub struct OrderPool {
    cfg: PoolConfig,
    graph: ShareGraph,
    best: BTreeMap<OrderId, Group>,
    /// Reverse index: order → pooled orders whose best group contains it.
    contained_in: BTreeMap<OrderId, BTreeSet<OrderId>>,
    stats: PoolStats,
    exec: Exec,
    shards: Option<ShardState>,
    /// Observability handle (disabled by default). Spans only — the
    /// pool's hot-path stages never read it for control flow, so
    /// outcomes are identical with recording on or off.
    recorder: Recorder,
}

impl OrderPool {
    /// Create an empty pool.
    pub fn new(cfg: PoolConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    /// Empty pool whose shareability graph prunes insert scans spatially
    /// (see [`ShareGraph::with_spatial`]): inserts visit only the
    /// slack-reachable cell ring around the new order's pick-up instead of
    /// every pooled order. Pool state stays bit-identical to
    /// [`OrderPool::new`].
    pub fn with_spatial(cfg: PoolConfig, spatial: crate::spatial::SpatialPrune) -> Self {
        Self {
            cfg,
            graph: ShareGraph::with_spatial(spatial),
            ..Self::default()
        }
    }

    /// Empty pool with the full engine configuration: optional spatial
    /// insert pruning, optional grid-region sharding and a fork-join
    /// executor. `shards = None` / a sequential `exec` degrade exactly to
    /// [`OrderPool::with_spatial`] / [`OrderPool::new`].
    pub fn with_parallelism(
        cfg: PoolConfig,
        spatial: Option<crate::spatial::SpatialPrune>,
        shards: Option<ShardMap>,
        exec: Exec,
    ) -> Self {
        Self {
            cfg,
            graph: match spatial {
                Some(sp) => ShareGraph::with_spatial(sp),
                None => ShareGraph::new(),
            },
            exec,
            shards: shards.map(|map| ShardState {
                members: vec![BTreeSet::new(); map.shards()],
                map,
            }),
            ..Self::default()
        }
    }

    /// Number of pooled orders.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Attach an observability recorder; the pool times its hot-path
    /// stages (pair prefilter, clique search, group planning) through it.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The configured pool parameters.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    /// The underlying shareability graph (read-only).
    pub fn graph(&self) -> &ShareGraph {
        &self.graph
    }

    /// The pooled order with the given id.
    pub fn order(&self, id: OrderId) -> Option<&Order> {
        self.graph.order(id)
    }

    /// Iterate over pooled orders.
    pub fn orders(&self) -> impl Iterator<Item = &Order> {
        self.graph.orders()
    }

    /// The current best shared group of `id`, if any (O(1) retrieval,
    /// Algorithm 1 lines 8–9).
    pub fn best_group(&self, id: OrderId) -> Option<&Group> {
        self.best.get(&id)
    }

    /// Insert an arriving order (update event 1) and maintain `Gb`.
    ///
    /// With a parallel [`Exec`], the two expensive pure stages fan out
    /// over threads — pair-edge validation (chunked by the candidate's
    /// owner shard, merged back in canonical `(shard, id)` order and
    /// re-sorted to the ascending-id commit order) and the arriving
    /// order's clique enumeration (chunked by top-level branch). All graph
    /// and best-map mutation stays sequential, so the result is
    /// bit-identical to the sequential insert.
    pub fn insert<C: TravelBound>(&mut self, order: Order, now: Ts, oracle: &C) {
        self.stats.inserted += 1;
        let id = order.id;
        let center = Arc::new(order);
        let edges = {
            let _span = self.recorder.time(Stage::PairFilter);
            let candidates = self.graph.candidate_partners(&center, now);
            self.eval_edges(&center, &candidates, now, oracle)
        };
        self.graph.commit(Arc::clone(&center), edges);
        if let Some(st) = &mut self.shards {
            let home = st.map.shard_of(center.pickup);
            st.members[home].insert(id);
        }
        // Enumerate the arriving order's groups once; offer each to every
        // member (the arriving order may improve neighbours' bests too).
        let groups = {
            let _span = self.recorder.time(Stage::CliqueSearch);
            all_groups_for_par(
                &center,
                &self.graph,
                now,
                self.cfg.limits,
                self.cfg.clique,
                oracle,
                &self.exec,
            )
        };
        self.stats.groups_enumerated += groups.len() as u64;
        // Manual span: a drop-guard timer would borrow `self.recorder`
        // across the `&mut self` calls below.
        let t0 = self.recorder.is_enabled().then(Instant::now);
        for g in groups {
            self.offer_group(g, now, oracle);
        }
        if let Some(t0) = t0 {
            self.recorder
                .record_stage_nanos(Stage::Planner, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Pure stage of an insert: validate every candidate pair, returning
    /// edges ascending by candidate id. Parallel path: candidates are
    /// chunked by owner shard (contiguous index chunks when unsharded),
    /// evaluated concurrently, merged in `(shard, id)` order and sorted
    /// back to ascending id — the same set the sequential scan produces,
    /// because [`ShareGraph::eval_edge`] never reads mutable state.
    fn eval_edges<C: TravelBound>(
        &self,
        center: &Arc<Order>,
        candidates: &[OrderId],
        now: Ts,
        oracle: &C,
    ) -> Vec<(OrderId, PairEdge)> {
        let graph = &self.graph;
        let limits = self.cfg.limits;
        if !self.exec.is_parallel() {
            return candidates
                .iter()
                .filter_map(|&j| {
                    graph
                        .eval_edge(center, j, now, limits, oracle)
                        .map(|e| (j, e))
                })
                .collect();
        }
        let chunks: Vec<Vec<OrderId>> = match &self.shards {
            Some(st) => {
                // Group candidates by their owner shard; within a shard the
                // ids stay ascending because `candidates` is ascending.
                let mut by_shard: Vec<Vec<OrderId>> = vec![Vec::new(); st.map.shards()];
                for &j in candidates {
                    if let Some(o) = graph.order(j) {
                        by_shard[st.map.shard_of(o.pickup)].push(j);
                    }
                }
                by_shard
            }
            None => candidates
                .chunks(candidates.len().div_ceil(self.exec.threads()).max(1))
                .map(|c| c.to_vec())
                .collect(),
        };
        let mut edges: Vec<(OrderId, PairEdge)> = self
            .exec
            .map(&chunks, |chunk| {
                chunk
                    .iter()
                    .filter_map(|&j| {
                        graph
                            .eval_edge(center, j, now, limits, oracle)
                            .map(|e| (j, e))
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        edges.sort_unstable_by_key(|&(j, _)| j);
        edges
    }

    /// Remove orders that were dispatched together or rejected (update
    /// event 2), recomputing bests that referenced them.
    pub fn remove_orders<C: TravelBound>(&mut self, ids: &[OrderId], now: Ts, oracle: &C) {
        let mut affected: BTreeSet<OrderId> = BTreeSet::new();
        for &id in ids {
            self.stats.removed += 1;
            if let Some(st) = &mut self.shards {
                if let Some(o) = self.graph.order(id) {
                    let home = st.map.shard_of(o.pickup);
                    st.members[home].remove(&id);
                }
            }
            self.graph.remove(id);
            self.best.remove(&id);
            if let Some(holders) = self.contained_in.remove(&id) {
                affected.extend(holders);
            }
        }
        // Drop reverse-index entries pointing *from* removed ids.
        for holders in self.contained_in.values_mut() {
            for id in ids {
                holders.remove(id);
            }
        }
        let recompute: Vec<OrderId> = affected
            .into_iter()
            .filter(|&id| self.graph.order(id).is_some() && !ids.contains(&id))
            .collect();
        self.recompute_batch(&recompute, now, oracle);
    }

    /// Periodic maintenance (Algorithm 1 lines 5–6): expire edges and
    /// stale best groups (update events 3 and 4). Returns orders that can
    /// no longer be served even solo and must be rejected by the caller.
    pub fn maintain<C: TravelBound>(&mut self, now: Ts, oracle: &C) -> Vec<OrderId> {
        let touched = self.graph.expire_edges(now);
        // Staleness only reads the graph and each order's own best entry,
        // and recomputes only write their own entry — so collecting the
        // stale set up front and batch-recomputing is the sequential
        // interleaving's fixed point.
        let stale: Vec<OrderId> = touched
            .into_iter()
            .filter(|&id| self.best_is_stale(id, now))
            .collect();
        self.recompute_batch(&stale, now, oracle);
        // Group expiry: τ_g passed even though individual edges may remain.
        let stale: Vec<OrderId> = self
            .best
            .iter()
            .filter(|(_, g)| g.expires_at(oracle) < now)
            .map(|(&id, _)| id)
            .collect();
        self.recompute_batch(&stale, now, oracle);
        self.graph.dead_orders(now)
    }

    /// Canonical dispatch-proposal sweep: every pooled order keyed by
    /// `(release, id)`, ascending — the order the decision loop visits
    /// them in (FIFO by release, id-tie-broken).
    ///
    /// Sharded pools sweep each shard's member slot independently (in
    /// parallel when the executor allows) and merge the per-shard runs;
    /// because an order's shard is a pure function of its pick-up cell,
    /// the merged sequence is identical for every shard and thread count —
    /// and identical to the unsharded sweep of the global order map.
    pub fn proposals(&self) -> Vec<(Ts, OrderId)> {
        let mut all: Vec<(Ts, OrderId)> = match &self.shards {
            Some(st) => {
                let graph = &self.graph;
                self.exec
                    .map(&st.members, |slot| {
                        slot.iter()
                            .filter_map(|&id| graph.order(id).map(|o| (o.release, o.id)))
                            .collect::<Vec<_>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect()
            }
            None => self.graph.orders().map(|o| (o.release, o.id)).collect(),
        };
        all.sort_unstable();
        all
    }

    /// Recompute the best groups of `ids` (ascending, distinct): the pure
    /// searches run concurrently — across orders when the batch is large
    /// enough to feed every thread, inside each order's clique search
    /// otherwise — and results are applied sequentially in ascending id
    /// order. `best_group_for` reads only the (immutable during the batch)
    /// graph, never the best map, so batch results equal one-at-a-time
    /// sequential recomputation exactly.
    fn recompute_batch<C: TravelBound>(&mut self, ids: &[OrderId], now: Ts, oracle: &C) {
        if ids.is_empty() {
            return;
        }
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        self.stats.recomputes += ids.len() as u64;
        let t0 = self.recorder.is_enabled().then(Instant::now);
        let graph = &self.graph;
        let cfg = &self.cfg;
        let results: Vec<Option<Group>> = if ids.len() >= self.exec.threads() {
            self.exec.map(ids, |&id| {
                graph.order_handle(id).and_then(|center| {
                    best_group_for(
                        center,
                        graph,
                        now,
                        cfg.limits,
                        cfg.clique,
                        cfg.weights,
                        oracle,
                    )
                })
            })
        } else {
            ids.iter()
                .map(|&id| {
                    graph.order_handle(id).and_then(|center| {
                        best_group_for_par(
                            center,
                            graph,
                            now,
                            cfg.limits,
                            cfg.clique,
                            cfg.weights,
                            oracle,
                            &self.exec,
                        )
                    })
                })
                .collect()
        };
        for (&id, found) in ids.iter().zip(results) {
            self.unlink_best(id);
            if let Some(g) = found {
                self.link_best(id, g);
            }
        }
        if let Some(t0) = t0 {
            self.recorder
                .record_stage_nanos(Stage::CliqueSearch, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Whether `id`'s cached best group lost a member or an edge.
    fn best_is_stale(&self, id: OrderId, now: Ts) -> bool {
        match self.best.get(&id) {
            None => false,
            Some(g) => {
                let ids: Vec<OrderId> = g.order_ids().collect();
                // all members still pooled and pairwise connected?
                for (i, &a) in ids.iter().enumerate() {
                    if self.graph.order(a).is_none() {
                        return true;
                    }
                    for &b in &ids[i + 1..] {
                        if !self.graph.connected(a, b) {
                            return true;
                        }
                    }
                }
                let _ = now;
                false
            }
        }
    }

    /// Offer a freshly enumerated group to each of its members.
    fn offer_group<C: TravelBound>(&mut self, g: Group, now: Ts, oracle: &C) {
        let _ = oracle;
        let mean = g.mean_extra_time(now, self.cfg.weights);
        let member_ids: Vec<OrderId> = g.order_ids().collect();
        for &m in &member_ids {
            let better = match self.best.get(&m) {
                Some(cur) => mean < cur.mean_extra_time(now, self.cfg.weights),
                None => true,
            };
            if better {
                self.unlink_best(m);
                self.link_best(m, g.clone());
            }
        }
    }

    /// Serialize the pool's complete state: pooled orders, live edges and
    /// the best-group map, plus the lifetime counters. Derived structures
    /// (spatial buckets, shard membership, the `contained_in` reverse
    /// index) are rebuilt by [`OrderPool::restore`] instead.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            orders: self.graph.orders().cloned().collect(),
            edges: self
                .graph
                .edges()
                .map(|(a, b, e)| EdgeSnapshot {
                    a,
                    b,
                    expires_at: e.expires_at,
                    route_cost: e.route_cost,
                })
                .collect(),
            best: self
                .best
                .iter()
                .map(|(&id, g)| BestSnapshot {
                    id,
                    members: g.order_ids().collect(),
                    route: g.route.clone(),
                    detours: g.detours.clone(),
                })
                .collect(),
            stats: self.stats,
        }
    }

    /// Replace this pool's state with `snap`'s. The pool's *configuration*
    /// (planner limits, weights, spatial pruning, shard layout, executor)
    /// is kept as built — a snapshot restores into a pool configured the
    /// same way it was taken from, which the engine-level
    /// [`restore`](crate::snapshot) path guarantees by reconstructing the
    /// dispatcher from the run's own config first.
    pub fn restore(&mut self, snap: &PoolSnapshot) -> Result<(), RestoreError> {
        let handles: BTreeMap<OrderId, Arc<Order>> = snap
            .orders
            .iter()
            .map(|o| (o.id, Arc::new(o.clone())))
            .collect();
        for e in &snap.edges {
            for id in [e.a, e.b] {
                if !handles.contains_key(&id) {
                    return Err(RestoreError::MissingOrder(id));
                }
            }
        }
        let edges: Vec<(OrderId, OrderId, PairEdge)> = snap
            .edges
            .iter()
            .map(|e| {
                (
                    e.a,
                    e.b,
                    PairEdge {
                        expires_at: e.expires_at,
                        route_cost: e.route_cost,
                    },
                )
            })
            .collect();
        self.graph
            .restore_from_parts(handles.values().cloned().collect(), &edges);
        if let Some(st) = &mut self.shards {
            for slot in &mut st.members {
                slot.clear();
            }
            for o in handles.values() {
                let home = st.map.shard_of(o.pickup);
                st.members[home].insert(o.id);
            }
        }
        self.best.clear();
        self.contained_in.clear();
        for b in &snap.best {
            if b.detours.len() != b.members.len() {
                return Err(RestoreError::MalformedGroup(b.id));
            }
            let members: Result<Vec<Arc<Order>>, RestoreError> = b
                .members
                .iter()
                .map(|m| {
                    handles
                        .get(m)
                        .cloned()
                        .ok_or(RestoreError::MissingOrder(*m))
                })
                .collect();
            let group = Group {
                orders: members?,
                route: b.route.clone(),
                detours: b.detours.clone(),
            };
            self.link_best(b.id, group);
        }
        self.stats = snap.stats;
        Ok(())
    }

    fn link_best(&mut self, id: OrderId, g: Group) {
        for m in g.order_ids() {
            self.contained_in.entry(m).or_default().insert(id);
        }
        self.best.insert(id, g);
    }

    fn unlink_best(&mut self, id: OrderId) {
        if let Some(old) = self.best.remove(&id) {
            for m in old.order_ids() {
                if let Some(s) = self.contained_in.get_mut(&m) {
                    s.remove(&id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{Dur, NodeId, TravelCost};

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {}

    fn order(id: u32, p: u32, d: u32, deadline: Ts) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release: 0,
            deadline,
            wait_limit: 300,
            direct_cost: Line.cost(NodeId(p), NodeId(d)),
        }
    }

    fn pool() -> OrderPool {
        OrderPool::new(PoolConfig {
            limits: PlanLimits { capacity: 4 },
            clique: CliqueLimits::default(),
            weights: CostWeights::default(),
        })
    }

    #[test]
    fn arrival_updates_both_members() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 10_000), 0, &Line);
        assert!(p.best_group(OrderId(0)).is_none());
        p.insert(order(1, 2, 8, 10_000), 0, &Line);
        // Both orders now share the same best pair group.
        let b0 = p.best_group(OrderId(0)).unwrap();
        let b1 = p.best_group(OrderId(1)).unwrap();
        assert_eq!(b0.len(), 2);
        assert_eq!(b1.len(), 2);
        assert!(b0.contains(OrderId(1)) && b1.contains(OrderId(0)));
    }

    #[test]
    fn departure_recomputes_holders() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 10_000), 0, &Line);
        p.insert(order(1, 2, 8, 10_000), 0, &Line);
        p.insert(order(2, 1, 9, 10_000), 0, &Line);
        // dispatch the best group of o0
        let ids: Vec<OrderId> = p.best_group(OrderId(0)).unwrap().order_ids().collect();
        p.remove_orders(&ids, 10, &Line);
        // survivors (if any) must not reference removed orders
        for o in p.orders() {
            if let Some(g) = p.best_group(o.id) {
                for m in g.order_ids() {
                    assert!(p.order(m).is_some(), "best group references removed {m}");
                }
            }
        }
    }

    #[test]
    fn better_arrival_improves_existing_best() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 10_000), 0, &Line);
        p.insert(order(2, 4, 20, 10_000), 0, &Line); // mediocre partner
        let before = p
            .best_group(OrderId(0))
            .map(|g| g.mean_extra_time(0, CostWeights::default()));
        p.insert(order(1, 0, 10, 10_000), 0, &Line); // perfect partner
        let after = p
            .best_group(OrderId(0))
            .unwrap()
            .mean_extra_time(0, CostWeights::default());
        assert!(after <= before.unwrap_or(f64::INFINITY));
        assert!(p.best_group(OrderId(0)).unwrap().contains(OrderId(1)));
    }

    #[test]
    fn maintain_flags_dead_orders() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 200), 0, &Line); // direct 100
        assert!(p.maintain(50, &Line).is_empty());
        assert_eq!(p.maintain(100, &Line), vec![OrderId(0)]);
    }

    #[test]
    fn maintain_recomputes_expired_best_groups() {
        let mut p = pool();
        // Pair whose joint feasibility expires at t=99 (see share_graph test).
        p.insert(order(0, 0, 10, 200), 0, &Line);
        p.insert(order(1, 2, 8, 500), 0, &Line);
        assert!(p.best_group(OrderId(0)).is_some());
        p.maintain(150, &Line);
        // The pair expired; o1 alone keeps no shared group.
        assert!(p.best_group(OrderId(1)).is_none());
    }

    #[test]
    fn stats_count_events() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 10_000), 0, &Line);
        p.insert(order(1, 2, 8, 10_000), 0, &Line);
        p.remove_orders(&[OrderId(0)], 5, &Line);
        let s = p.stats();
        assert_eq!(s.inserted, 2);
        assert_eq!(s.removed, 1);
        assert!(s.recomputes >= 1);
    }

    #[test]
    fn empty_pool_reports_empty() {
        let p = pool();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    /// The parallel sharded pool must be state-identical to the sequential
    /// pool after any interleaving of the four update events.
    #[test]
    fn parallel_sharded_pool_matches_sequential() {
        use crate::spatial::SpatialPrune;
        use watter_road::{citygen::CityConfig, CostMatrix, GridIndex};

        let city = CityConfig {
            width: 10,
            height: 10,
            ..Default::default()
        }
        .generate(11);
        let oracle = CostMatrix::build(&city);
        let grid = GridIndex::build(&city, 6);
        let cfg = PoolConfig {
            limits: PlanLimits { capacity: 4 },
            clique: CliqueLimits::default(),
            weights: CostWeights::default(),
        };
        let mut seq = OrderPool::with_spatial(cfg, SpatialPrune::for_graph(&city, grid.clone()));
        let mut pools: Vec<OrderPool> = [(2, 2), (4, 3), (8, 6)]
            .into_iter()
            .map(|(threads, shards)| {
                OrderPool::with_parallelism(
                    cfg,
                    Some(SpatialPrune::for_graph(&city, grid.clone())),
                    Some(ShardMap::build(grid.clone(), shards)),
                    Exec::new(threads),
                )
            })
            .collect();

        let n = city.node_count() as u32;
        let mut now = 0;
        for i in 0..50u32 {
            let p = NodeId((i * 37 + 11) % n);
            let d = NodeId((i * 53 + 29) % n);
            let direct = watter_core::TravelCost::cost(&oracle, p, d);
            if p == d || direct <= 0 {
                continue;
            }
            now += 9;
            let o = Order {
                id: OrderId(i),
                pickup: p,
                dropoff: d,
                riders: 1,
                release: now,
                deadline: now + direct * (2 + i as i64 % 3),
                wait_limit: direct,
                direct_cost: direct,
            };
            seq.insert(o.clone(), now, &oracle);
            for pp in &mut pools {
                pp.insert(o.clone(), now, &oracle);
            }
            if i % 7 == 3 {
                let dead = seq.maintain(now, &oracle);
                for pp in &mut pools {
                    assert_eq!(pp.maintain(now, &oracle), dead, "maintain diverges at {i}");
                }
            }
            if i % 11 == 5 {
                if let Some(g) = seq.best_group(OrderId(i)).cloned() {
                    let victims: Vec<OrderId> = g.order_ids().collect();
                    seq.remove_orders(&victims, now, &oracle);
                    for pp in &mut pools {
                        pp.remove_orders(&victims, now, &oracle);
                    }
                }
            }
        }
        assert!(!seq.is_empty() && seq.stats().recomputes > 0);
        for pp in &pools {
            assert_eq!(pp.len(), seq.len());
            assert_eq!(pp.proposals(), seq.proposals());
            let s = (
                seq.stats().inserted,
                seq.stats().removed,
                seq.stats().recomputes,
            );
            let p = (
                pp.stats().inserted,
                pp.stats().removed,
                pp.stats().recomputes,
            );
            assert_eq!(p, s, "stats diverge");
            for o in seq.orders() {
                let a = seq.best_group(o.id);
                let b = pp.best_group(o.id);
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        let xi: Vec<OrderId> = x.order_ids().collect();
                        let yi: Vec<OrderId> = y.order_ids().collect();
                        assert_eq!(xi, yi, "best group of {} diverges", o.id);
                        assert_eq!(x.route.cost(), y.route.cost());
                    }
                    _ => panic!("best-group presence diverges for {}", o.id),
                }
            }
        }
    }

    /// Fingerprint for state-identity checks: orders, edges, best groups
    /// (members + exact route cost + detours) and counters.
    #[allow(clippy::type_complexity)]
    fn fingerprint(
        p: &OrderPool,
    ) -> (
        Vec<OrderId>,
        Vec<(OrderId, OrderId, Ts, Dur)>,
        Vec<(OrderId, Vec<OrderId>, Dur, Vec<Dur>)>,
        Vec<(Ts, OrderId)>,
        PoolStats,
    ) {
        let mut edges: Vec<_> = p
            .graph()
            .edges()
            .map(|(a, b, e)| (a, b, e.expires_at, e.route_cost))
            .collect();
        edges.sort();
        let mut best: Vec<_> = p
            .orders()
            .filter_map(|o| {
                p.best_group(o.id).map(|g| {
                    (
                        o.id,
                        g.order_ids().collect::<Vec<_>>(),
                        g.route.cost(),
                        g.detours.clone(),
                    )
                })
            })
            .collect();
        best.sort();
        (
            p.orders().map(|o| o.id).collect(),
            edges,
            best,
            p.proposals(),
            p.stats(),
        )
    }

    /// snapshot → JSON → restore reproduces the pool state exactly,
    /// including a best group kept by the `offer_group` tie rule that a
    /// rebuild-by-reinsert would not recover.
    #[test]
    fn snapshot_json_round_trip_restores_state() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 10_000), 0, &Line);
        p.insert(order(1, 2, 8, 10_000), 0, &Line);
        p.insert(order(2, 1, 9, 10_000), 5, &Line);
        p.insert(order(3, 4, 20, 10_000), 5, &Line);
        p.remove_orders(&[OrderId(3)], 9, &Line);

        let snap = p.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: PoolSnapshot = serde_json::from_str(&json).expect("deserialize");

        let mut q = pool();
        q.restore(&back).expect("restore");
        assert_eq!(fingerprint(&q), fingerprint(&p));

        // The restored pool keeps evolving identically.
        p.insert(order(4, 3, 7, 10_000), 12, &Line);
        q.insert(order(4, 3, 7, 10_000), 12, &Line);
        p.maintain(15, &Line);
        q.maintain(15, &Line);
        assert_eq!(fingerprint(&q), fingerprint(&p));
    }

    /// Restore rejects snapshots whose groups reference unknown orders.
    #[test]
    fn restore_rejects_dangling_references() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 10_000), 0, &Line);
        p.insert(order(1, 2, 8, 10_000), 0, &Line);
        let mut snap = p.snapshot();
        snap.orders.retain(|o| o.id != OrderId(1));
        let mut q = pool();
        assert!(q.restore(&snap).is_err());
    }

    /// The canonical proposal sweep is `(release, id)` ascending no matter
    /// how the pool is sharded.
    #[test]
    fn proposals_are_release_then_id_ordered() {
        let mut p = pool();
        p.insert(order(3, 0, 10, 10_000), 0, &Line);
        p.insert(order(1, 2, 8, 10_000), 0, &Line);
        p.insert(order(2, 1, 9, 10_000), 0, &Line);
        assert_eq!(
            p.proposals(),
            vec![(0, OrderId(1)), (0, OrderId(2)), (0, OrderId(3))]
        );
    }
}
