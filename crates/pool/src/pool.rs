//! The order pool (Algorithm 1's data structures).
//!
//! [`OrderPool`] owns the temporal shareability graph and the **best-group
//! map** `Gb`: for every pooled order, the feasible shared group (clique of
//! size ≥ 2) with the smallest mean extra time. The map is maintained under
//! the four update events of Section IV-B:
//!
//! 1. **order arrival** — the arriving order's cliques are enumerated once;
//!    every member of an enumerated group whose mean extra time beats its
//!    current best adopts the new group;
//! 2. **order departure** (dispatch/rejection) — orders whose best group
//!    contained a departed member are recomputed;
//! 3. **edge expiry** — orders incident to expired edges revalidate;
//! 4. **group expiry** — a best group whose `τ_g` passed is recomputed.
//!
//! Best-group rankings are stable over time between structural events:
//! every pooled order's response time grows at 1 s/s, so each group's mean
//! extra time grows at exactly `β` s/s and comparisons are time-invariant.
//! This is what makes caching `Gb` sound.

use crate::cliques::{all_groups_for, best_group_for, CliqueLimits};
use crate::planner::PlanLimits;
use crate::share_graph::ShareGraph;
use std::collections::{BTreeMap, BTreeSet};
use watter_core::{CostWeights, Group, Order, OrderId, TravelBound, Ts};

/// Pool configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolConfig {
    /// Route-planner limits (vehicle capacity ceiling).
    pub limits: PlanLimits,
    /// Clique enumeration bounds.
    pub clique: CliqueLimits,
    /// Extra-time weights (α, β).
    pub weights: CostWeights,
}

/// Counters exposed for diagnostics and benches.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Orders inserted over the pool's lifetime.
    pub inserted: u64,
    /// Orders removed (dispatch or rejection).
    pub removed: u64,
    /// Best-group recomputations triggered by update events.
    pub recomputes: u64,
    /// Groups enumerated during insertions.
    pub groups_enumerated: u64,
}

/// The WATTER order pool.
#[derive(Clone, Debug, Default)]
pub struct OrderPool {
    cfg: PoolConfig,
    graph: ShareGraph,
    best: BTreeMap<OrderId, Group>,
    /// Reverse index: order → pooled orders whose best group contains it.
    contained_in: BTreeMap<OrderId, BTreeSet<OrderId>>,
    stats: PoolStats,
}

impl OrderPool {
    /// Create an empty pool.
    pub fn new(cfg: PoolConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    /// Empty pool whose shareability graph prunes insert scans spatially
    /// (see [`ShareGraph::with_spatial`]): inserts visit only the
    /// slack-reachable cell ring around the new order's pick-up instead of
    /// every pooled order. Pool state stays bit-identical to
    /// [`OrderPool::new`].
    pub fn with_spatial(cfg: PoolConfig, spatial: crate::spatial::SpatialPrune) -> Self {
        Self {
            cfg,
            graph: ShareGraph::with_spatial(spatial),
            ..Self::default()
        }
    }

    /// Number of pooled orders.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// The configured pool parameters.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    /// The underlying shareability graph (read-only).
    pub fn graph(&self) -> &ShareGraph {
        &self.graph
    }

    /// The pooled order with the given id.
    pub fn order(&self, id: OrderId) -> Option<&Order> {
        self.graph.order(id)
    }

    /// Iterate over pooled orders.
    pub fn orders(&self) -> impl Iterator<Item = &Order> {
        self.graph.orders()
    }

    /// The current best shared group of `id`, if any (O(1) retrieval,
    /// Algorithm 1 lines 8–9).
    pub fn best_group(&self, id: OrderId) -> Option<&Group> {
        self.best.get(&id)
    }

    /// Insert an arriving order (update event 1) and maintain `Gb`.
    pub fn insert<C: TravelBound>(&mut self, order: Order, now: Ts, oracle: &C) {
        self.stats.inserted += 1;
        let id = order.id;
        self.graph.insert(order, now, self.cfg.limits, oracle);
        let center = self
            .graph
            .order_handle(id)
            .expect("order just inserted")
            .clone();
        // Enumerate the arriving order's groups once; offer each to every
        // member (the arriving order may improve neighbours' bests too).
        let groups = all_groups_for(
            &center,
            &self.graph,
            now,
            self.cfg.limits,
            self.cfg.clique,
            oracle,
        );
        self.stats.groups_enumerated += groups.len() as u64;
        for g in groups {
            self.offer_group(g, now, oracle);
        }
    }

    /// Remove orders that were dispatched together or rejected (update
    /// event 2), recomputing bests that referenced them.
    pub fn remove_orders<C: TravelBound>(&mut self, ids: &[OrderId], now: Ts, oracle: &C) {
        let mut affected: BTreeSet<OrderId> = BTreeSet::new();
        for &id in ids {
            self.stats.removed += 1;
            self.graph.remove(id);
            self.best.remove(&id);
            if let Some(holders) = self.contained_in.remove(&id) {
                affected.extend(holders);
            }
        }
        // Drop reverse-index entries pointing *from* removed ids.
        for holders in self.contained_in.values_mut() {
            for id in ids {
                holders.remove(id);
            }
        }
        for id in affected {
            if self.graph.order(id).is_some() && !ids.contains(&id) {
                self.recompute(id, now, oracle);
            }
        }
    }

    /// Periodic maintenance (Algorithm 1 lines 5–6): expire edges and
    /// stale best groups (update events 3 and 4). Returns orders that can
    /// no longer be served even solo and must be rejected by the caller.
    pub fn maintain<C: TravelBound>(&mut self, now: Ts, oracle: &C) -> Vec<OrderId> {
        let touched = self.graph.expire_edges(now);
        for id in touched {
            if self.best_is_stale(id, now) {
                self.recompute(id, now, oracle);
            }
        }
        // Group expiry: τ_g passed even though individual edges may remain.
        let stale: Vec<OrderId> = self
            .best
            .iter()
            .filter(|(_, g)| g.expires_at(oracle) < now)
            .map(|(&id, _)| id)
            .collect();
        for id in stale {
            self.recompute(id, now, oracle);
        }
        self.graph.dead_orders(now)
    }

    /// Whether `id`'s cached best group lost a member or an edge.
    fn best_is_stale(&self, id: OrderId, now: Ts) -> bool {
        match self.best.get(&id) {
            None => false,
            Some(g) => {
                let ids: Vec<OrderId> = g.order_ids().collect();
                // all members still pooled and pairwise connected?
                for (i, &a) in ids.iter().enumerate() {
                    if self.graph.order(a).is_none() {
                        return true;
                    }
                    for &b in &ids[i + 1..] {
                        if !self.graph.connected(a, b) {
                            return true;
                        }
                    }
                }
                let _ = now;
                false
            }
        }
    }

    /// Recompute an order's best group from scratch.
    fn recompute<C: TravelBound>(&mut self, id: OrderId, now: Ts, oracle: &C) {
        self.stats.recomputes += 1;
        self.unlink_best(id);
        let Some(center) = self.graph.order_handle(id).cloned() else {
            return;
        };
        if let Some(best) = best_group_for(
            &center,
            &self.graph,
            now,
            self.cfg.limits,
            self.cfg.clique,
            self.cfg.weights,
            oracle,
        ) {
            self.link_best(id, best);
        }
    }

    /// Offer a freshly enumerated group to each of its members.
    fn offer_group<C: TravelBound>(&mut self, g: Group, now: Ts, oracle: &C) {
        let _ = oracle;
        let mean = g.mean_extra_time(now, self.cfg.weights);
        let member_ids: Vec<OrderId> = g.order_ids().collect();
        for &m in &member_ids {
            let better = match self.best.get(&m) {
                Some(cur) => mean < cur.mean_extra_time(now, self.cfg.weights),
                None => true,
            };
            if better {
                self.unlink_best(m);
                self.link_best(m, g.clone());
            }
        }
    }

    fn link_best(&mut self, id: OrderId, g: Group) {
        for m in g.order_ids() {
            self.contained_in.entry(m).or_default().insert(id);
        }
        self.best.insert(id, g);
    }

    fn unlink_best(&mut self, id: OrderId) {
        if let Some(old) = self.best.remove(&id) {
            for m in old.order_ids() {
                if let Some(s) = self.contained_in.get_mut(&m) {
                    s.remove(&id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{Dur, NodeId, TravelCost};

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {}

    fn order(id: u32, p: u32, d: u32, deadline: Ts) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release: 0,
            deadline,
            wait_limit: 300,
            direct_cost: Line.cost(NodeId(p), NodeId(d)),
        }
    }

    fn pool() -> OrderPool {
        OrderPool::new(PoolConfig {
            limits: PlanLimits { capacity: 4 },
            clique: CliqueLimits::default(),
            weights: CostWeights::default(),
        })
    }

    #[test]
    fn arrival_updates_both_members() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 10_000), 0, &Line);
        assert!(p.best_group(OrderId(0)).is_none());
        p.insert(order(1, 2, 8, 10_000), 0, &Line);
        // Both orders now share the same best pair group.
        let b0 = p.best_group(OrderId(0)).unwrap();
        let b1 = p.best_group(OrderId(1)).unwrap();
        assert_eq!(b0.len(), 2);
        assert_eq!(b1.len(), 2);
        assert!(b0.contains(OrderId(1)) && b1.contains(OrderId(0)));
    }

    #[test]
    fn departure_recomputes_holders() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 10_000), 0, &Line);
        p.insert(order(1, 2, 8, 10_000), 0, &Line);
        p.insert(order(2, 1, 9, 10_000), 0, &Line);
        // dispatch the best group of o0
        let ids: Vec<OrderId> = p.best_group(OrderId(0)).unwrap().order_ids().collect();
        p.remove_orders(&ids, 10, &Line);
        // survivors (if any) must not reference removed orders
        for o in p.orders() {
            if let Some(g) = p.best_group(o.id) {
                for m in g.order_ids() {
                    assert!(p.order(m).is_some(), "best group references removed {m}");
                }
            }
        }
    }

    #[test]
    fn better_arrival_improves_existing_best() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 10_000), 0, &Line);
        p.insert(order(2, 4, 20, 10_000), 0, &Line); // mediocre partner
        let before = p
            .best_group(OrderId(0))
            .map(|g| g.mean_extra_time(0, CostWeights::default()));
        p.insert(order(1, 0, 10, 10_000), 0, &Line); // perfect partner
        let after = p
            .best_group(OrderId(0))
            .unwrap()
            .mean_extra_time(0, CostWeights::default());
        assert!(after <= before.unwrap_or(f64::INFINITY));
        assert!(p.best_group(OrderId(0)).unwrap().contains(OrderId(1)));
    }

    #[test]
    fn maintain_flags_dead_orders() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 200), 0, &Line); // direct 100
        assert!(p.maintain(50, &Line).is_empty());
        assert_eq!(p.maintain(100, &Line), vec![OrderId(0)]);
    }

    #[test]
    fn maintain_recomputes_expired_best_groups() {
        let mut p = pool();
        // Pair whose joint feasibility expires at t=99 (see share_graph test).
        p.insert(order(0, 0, 10, 200), 0, &Line);
        p.insert(order(1, 2, 8, 500), 0, &Line);
        assert!(p.best_group(OrderId(0)).is_some());
        p.maintain(150, &Line);
        // The pair expired; o1 alone keeps no shared group.
        assert!(p.best_group(OrderId(1)).is_none());
    }

    #[test]
    fn stats_count_events() {
        let mut p = pool();
        p.insert(order(0, 0, 10, 10_000), 0, &Line);
        p.insert(order(1, 2, 8, 10_000), 0, &Line);
        p.remove_orders(&[OrderId(0)], 5, &Line);
        let s = p.stats();
        assert_eq!(s.inserted, 2);
        assert_eq!(s.removed, 1);
        assert!(s.recomputes >= 1);
    }

    #[test]
    fn empty_pool_reports_empty() {
        let p = pool();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
