//! Clique enumeration over the shareability graph.
//!
//! Theorem IV.1: a group of `k` orders can only generate a feasible route if
//! its nodes form a `k`-clique in the shareability graph. Cliques are thus
//! the *candidate* groups; each is validated by the route planner (the
//! clique property is necessary but not sufficient).
//!
//! Enumeration is centred on one order (the one whose best group is being
//! (re)computed): candidates are its live neighbours, ranked by pair route
//! cost and truncated to a configurable fan-out so that dense hot spots do
//! not blow up the search. Within that candidate set we grow id-ordered
//! cliques up to the maximum group size.

use crate::planner::{plan_min_cost, PlanLimits};
use crate::share_graph::ShareGraph;
use std::sync::Arc;
use watter_core::{CostWeights, Group, Order, OrderId, TravelBound, Ts};

/// Knobs bounding clique search.
#[derive(Clone, Copy, Debug)]
pub struct CliqueLimits {
    /// Maximum orders per group (`|g| ≤ max_group_size`); the paper's groups
    /// are bounded by the vehicle capacity `Kw`.
    pub max_group_size: usize,
    /// Consider at most this many nearest neighbours (by pair route cost)
    /// when growing cliques. Engineering guard absent from the paper; set
    /// high enough to be inactive at the paper's densities.
    pub max_neighbors: usize,
}

impl Default for CliqueLimits {
    fn default() -> Self {
        Self {
            max_group_size: 4,
            max_neighbors: 12,
        }
    }
}

/// The best (minimal mean extra time) feasible **shared** group containing
/// `center`, i.e. a validated clique of size ≥ 2, or `None` if the order has
/// no live shareable partner.
pub fn best_group_for<C: TravelBound>(
    center: &Arc<Order>,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    weights: CostWeights,
    oracle: &C,
) -> Option<Group> {
    // Rank neighbours by pair route cost, keep the closest `max_neighbors`.
    let mut neighbors: Vec<(OrderId, i64)> = graph
        .neighbors(center.id)
        .filter(|(_, e)| e.expires_at >= now)
        .map(|(j, e)| (j, e.route_cost))
        .collect();
    if neighbors.is_empty() {
        return None;
    }
    neighbors.sort_by_key(|&(j, c)| (c, j.0));
    neighbors.truncate(clique.max_neighbors);
    let candidates: Vec<&Arc<Order>> = neighbors
        .iter()
        .filter_map(|&(j, _)| graph.order_handle(j))
        .collect();

    let mut best: Option<(f64, Group)> = None;
    let mut members = Members::with_center(center, clique.max_group_size);
    grow(
        &mut members,
        &candidates,
        0,
        graph,
        now,
        limits,
        clique,
        weights,
        oracle,
        &mut best,
    );
    best.map(|(_, g)| g)
}

/// Enumerate **all** validated shared groups (size ≥ 2) containing `center`
/// — used by tests and by the GAS baseline's additive construction.
pub fn all_groups_for<C: TravelBound>(
    center: &Arc<Order>,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    oracle: &C,
) -> Vec<Group> {
    let mut neighbors: Vec<(OrderId, i64)> = graph
        .neighbors(center.id)
        .filter(|(_, e)| e.expires_at >= now)
        .map(|(j, e)| (j, e.route_cost))
        .collect();
    neighbors.sort_by_key(|&(j, c)| (c, j.0));
    neighbors.truncate(clique.max_neighbors);
    let candidates: Vec<&Arc<Order>> = neighbors
        .iter()
        .filter_map(|&(j, _)| graph.order_handle(j))
        .collect();
    let mut out = Vec::new();
    let mut members = Members::with_center(center, clique.max_group_size);
    collect(
        &mut members,
        &candidates,
        0,
        graph,
        now,
        limits,
        clique,
        oracle,
        &mut out,
    );
    out
}

/// The clique under construction: shared handles (cloned into emitted
/// groups for the price of a refcount bump) plus a parallel plain-reference
/// vector kept in sync for the planner, so the hot search loop allocates
/// nothing per candidate.
struct Members<'a> {
    handles: Vec<&'a Arc<Order>>,
    refs: Vec<&'a Order>,
}

impl<'a> Members<'a> {
    fn with_center(center: &'a Arc<Order>, capacity: usize) -> Self {
        let mut m = Self {
            handles: Vec::with_capacity(capacity),
            refs: Vec::with_capacity(capacity),
        };
        m.push(center);
        m
    }

    fn push(&mut self, o: &'a Arc<Order>) {
        self.handles.push(o);
        self.refs.push(o.as_ref());
    }

    fn pop(&mut self) {
        self.handles.pop();
        self.refs.pop();
    }

    fn len(&self) -> usize {
        self.handles.len()
    }

    fn riders(&self) -> u32 {
        self.refs.iter().map(|o| o.riders).sum()
    }

    /// Clone the member handles into a group's order list.
    fn to_orders(&self) -> Vec<Arc<Order>> {
        self.handles.iter().map(|&o| Arc::clone(o)).collect()
    }
}

#[allow(clippy::too_many_arguments)]
fn grow<'a, C: TravelBound>(
    members: &mut Members<'a>,
    candidates: &[&'a Arc<Order>],
    from: usize,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    weights: CostWeights,
    oracle: &C,
    best: &mut Option<(f64, Group)>,
) {
    for (i, cand) in candidates.iter().enumerate().skip(from) {
        if !extends_clique(&members.refs, cand, graph) {
            continue;
        }
        if members.riders() + cand.riders > limits.capacity {
            continue;
        }
        members.push(cand);
        if let Some(route) = plan_min_cost(&members.refs, now, limits, oracle) {
            let group = Group::new(members.to_orders(), route, oracle);
            let mean = group.mean_extra_time(now, weights);
            let better = match best {
                Some((b, _)) => mean < *b,
                None => true,
            };
            if better {
                *best = Some((mean, group));
            }
            // Only a *feasible* subgroup is worth extending: route
            // feasibility is monotone-ish in practice and this keeps the
            // search linear in the number of useful cliques.
            if members.len() < clique.max_group_size {
                grow(
                    members,
                    candidates,
                    i + 1,
                    graph,
                    now,
                    limits,
                    clique,
                    weights,
                    oracle,
                    best,
                );
            }
        }
        members.pop();
    }
}

#[allow(clippy::too_many_arguments)]
fn collect<'a, C: TravelBound>(
    members: &mut Members<'a>,
    candidates: &[&'a Arc<Order>],
    from: usize,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    oracle: &C,
    out: &mut Vec<Group>,
) {
    for (i, cand) in candidates.iter().enumerate().skip(from) {
        if !extends_clique(&members.refs, cand, graph) {
            continue;
        }
        if members.riders() + cand.riders > limits.capacity {
            continue;
        }
        members.push(cand);
        if let Some(route) = plan_min_cost(&members.refs, now, limits, oracle) {
            out.push(Group::new(members.to_orders(), route, oracle));
            if members.len() < clique.max_group_size {
                collect(
                    members,
                    candidates,
                    i + 1,
                    graph,
                    now,
                    limits,
                    clique,
                    oracle,
                    out,
                );
            }
        }
        members.pop();
    }
}

/// `cand` extends the current member set to a larger clique iff it is
/// adjacent to every current member.
fn extends_clique(members: &[&Order], cand: &Order, graph: &ShareGraph) -> bool {
    members.iter().all(|m| graph.connected(m.id, cand.id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{Dur, NodeId, TravelCost};

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {}

    fn order(id: u32, p: u32, d: u32, deadline: Ts) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release: 0,
            deadline,
            wait_limit: 300,
            direct_cost: Line.cost(NodeId(p), NodeId(d)),
        }
    }

    fn limits() -> PlanLimits {
        PlanLimits { capacity: 4 }
    }

    fn setup(orders: Vec<Order>) -> ShareGraph {
        let mut g = ShareGraph::new();
        for o in orders {
            g.insert(o, 0, limits(), &Line);
        }
        g
    }

    #[test]
    fn lone_order_has_no_shared_group() {
        let g = setup(vec![order(0, 0, 10, 10_000)]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        assert!(best_group_for(
            &center,
            &g,
            0,
            limits(),
            CliqueLimits::default(),
            CostWeights::default(),
            &Line
        )
        .is_none());
    }

    #[test]
    fn pair_group_found() {
        let g = setup(vec![order(0, 0, 10, 10_000), order(1, 2, 8, 10_000)]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        let best = best_group_for(
            &center,
            &g,
            0,
            limits(),
            CliqueLimits::default(),
            CostWeights::default(),
            &Line,
        )
        .unwrap();
        assert_eq!(best.len(), 2);
        assert!(best.contains(OrderId(1)));
    }

    #[test]
    fn triple_preferred_when_detours_tiny() {
        // Three nested orders along a line: sharing all three costs no
        // detour to anyone, so the best group should reach size 3 (mean
        // extra time equal, but enumeration keeps the first strictly
        // smaller mean; nested orders give all-zero detours at now=0 so
        // pair and triple tie at 0 — accept either, but the triple must be
        // *feasible*).
        let g = setup(vec![
            order(0, 0, 10, 10_000),
            order(1, 1, 9, 10_000),
            order(2, 2, 8, 10_000),
        ]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        let all = all_groups_for(&center, &g, 0, limits(), CliqueLimits::default(), &Line);
        assert!(all.iter().any(|gr| gr.len() == 3), "triple clique missing");
        // 2 pairs containing o0 + 1 triple
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn capacity_caps_group_size() {
        let g = setup(vec![
            order(0, 0, 10, 10_000),
            order(1, 1, 9, 10_000),
            order(2, 2, 8, 10_000),
        ]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        let tight = PlanLimits { capacity: 2 };
        let all = all_groups_for(&center, &g, 0, tight, CliqueLimits::default(), &Line);
        assert!(all.iter().all(|gr| gr.len() <= 2));
    }

    #[test]
    fn max_group_size_respected() {
        let g = setup(vec![
            order(0, 0, 10, 10_000),
            order(1, 1, 9, 10_000),
            order(2, 2, 8, 10_000),
            order(3, 3, 7, 10_000),
        ]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        let cl = CliqueLimits {
            max_group_size: 2,
            max_neighbors: 12,
        };
        let all = all_groups_for(&center, &g, 0, limits(), cl, &Line);
        assert!(all.iter().all(|gr| gr.len() == 2));
    }

    #[test]
    fn best_group_prefers_smaller_mean_extra_time() {
        // o1 overlaps o0 perfectly (no detour); o2 forces a detour.
        let g = setup(vec![
            order(0, 0, 10, 10_000),
            order(1, 0, 10, 10_000),
            order(2, 5, 20, 10_000),
        ]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        let best = best_group_for(
            &center,
            &g,
            0,
            limits(),
            CliqueLimits::default(),
            CostWeights::default(),
            &Line,
        )
        .unwrap();
        assert!(best.contains(OrderId(1)));
        assert_eq!(best.len(), 2);
        assert!((best.mean_extra_time(0, CostWeights::default()) - 0.0).abs() < 1e-9);
    }
}
