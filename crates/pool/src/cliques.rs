//! Clique enumeration over the shareability graph.
//!
//! Theorem IV.1: a group of `k` orders can only generate a feasible route if
//! its nodes form a `k`-clique in the shareability graph. Cliques are thus
//! the *candidate* groups; each is validated by the route planner (the
//! clique property is necessary but not sufficient).
//!
//! Enumeration is centred on one order (the one whose best group is being
//! (re)computed): candidates are its live neighbours, ranked by pair route
//! cost and truncated to a configurable fan-out so that dense hot spots do
//! not blow up the search. Within that candidate set we grow id-ordered
//! cliques up to the maximum group size.

use crate::planner::{plan_min_cost, PlanLimits};
use crate::share_graph::ShareGraph;
use std::sync::Arc;
use watter_core::{CostWeights, Exec, Group, Order, OrderId, TravelBound, Ts};

/// Knobs bounding clique search.
#[derive(Clone, Copy, Debug)]
pub struct CliqueLimits {
    /// Maximum orders per group (`|g| ≤ max_group_size`); the paper's groups
    /// are bounded by the vehicle capacity `Kw`.
    pub max_group_size: usize,
    /// Consider at most this many nearest neighbours (by pair route cost)
    /// when growing cliques. Engineering guard absent from the paper; set
    /// high enough to be inactive at the paper's densities.
    pub max_neighbors: usize,
}

impl Default for CliqueLimits {
    fn default() -> Self {
        Self {
            max_group_size: 4,
            max_neighbors: 12,
        }
    }
}

/// The best (minimal mean extra time) feasible **shared** group containing
/// `center`, i.e. a validated clique of size ≥ 2, or `None` if the order has
/// no live shareable partner.
pub fn best_group_for<C: TravelBound>(
    center: &Arc<Order>,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    weights: CostWeights,
    oracle: &C,
) -> Option<Group> {
    let candidates = ranked_candidates(center, graph, now, clique);
    if candidates.is_empty() {
        return None;
    }
    let mut best: Option<(f64, Group)> = None;
    let mut members = Members::with_center(center, clique.max_group_size);
    grow(
        &mut members,
        &candidates,
        0,
        graph,
        now,
        limits,
        clique,
        weights,
        oracle,
        &mut best,
    );
    best.map(|(_, g)| g)
}

/// [`best_group_for`] with the search tree's top-level branches chunked
/// across `exec`'s threads.
///
/// Each top-level candidate roots an independent subtree (`grow` records
/// candidates without pruning on the running best, so subtrees never
/// observe each other); per-subtree bests are merged with strict `<` in
/// ascending branch order, which reproduces the sequential search's
/// first-global-minimum tie-breaking exactly. Bit-identical to the
/// sequential function for every thread count.
#[allow(clippy::too_many_arguments)]
pub fn best_group_for_par<C: TravelBound>(
    center: &Arc<Order>,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    weights: CostWeights,
    oracle: &C,
    exec: &Exec,
) -> Option<Group> {
    if !exec.is_parallel() {
        return best_group_for(center, graph, now, limits, clique, weights, oracle);
    }
    let candidates = ranked_candidates(center, graph, now, clique);
    if candidates.is_empty() {
        return None;
    }
    let subtree_bests = exec.map_indexed(candidates.len(), |i| {
        let mut members = Members::with_center(center, clique.max_group_size);
        let mut best: Option<(f64, Group)> = None;
        grow_subtree(
            &mut members,
            &candidates,
            i,
            graph,
            now,
            limits,
            clique,
            weights,
            oracle,
            &mut best,
        );
        best
    });
    let mut best: Option<(f64, Group)> = None;
    for local in subtree_bests.into_iter().flatten() {
        let better = match &best {
            Some((b, _)) => local.0 < *b,
            None => true,
        };
        if better {
            best = Some(local);
        }
    }
    best.map(|(_, g)| g)
}

/// Enumerate **all** validated shared groups (size ≥ 2) containing `center`
/// — used by tests and by the GAS baseline's additive construction.
pub fn all_groups_for<C: TravelBound>(
    center: &Arc<Order>,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    oracle: &C,
) -> Vec<Group> {
    let candidates = ranked_candidates(center, graph, now, clique);
    let mut out = Vec::new();
    let mut members = Members::with_center(center, clique.max_group_size);
    collect(
        &mut members,
        &candidates,
        0,
        graph,
        now,
        limits,
        clique,
        oracle,
        &mut out,
    );
    out
}

/// [`all_groups_for`] with top-level branches chunked across `exec`'s
/// threads; per-subtree outputs are concatenated in branch order, which is
/// exactly the sequential DFS emission order — same groups, same order,
/// for every thread count.
pub fn all_groups_for_par<C: TravelBound>(
    center: &Arc<Order>,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    oracle: &C,
    exec: &Exec,
) -> Vec<Group> {
    if !exec.is_parallel() {
        return all_groups_for(center, graph, now, limits, clique, oracle);
    }
    let candidates = ranked_candidates(center, graph, now, clique);
    exec.map_indexed(candidates.len(), |i| {
        let mut members = Members::with_center(center, clique.max_group_size);
        let mut out = Vec::new();
        collect_subtree(
            &mut members,
            &candidates,
            i,
            graph,
            now,
            limits,
            clique,
            oracle,
            &mut out,
        );
        out
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Live neighbours of `center` ranked by `(pair route cost, id)` and
/// truncated to the clique fan-out — the shared candidate list both the
/// sequential and chunked searches enumerate over.
fn ranked_candidates<'g>(
    center: &Arc<Order>,
    graph: &'g ShareGraph,
    now: Ts,
    clique: CliqueLimits,
) -> Vec<&'g Arc<Order>> {
    let mut neighbors: Vec<(OrderId, i64)> = graph
        .neighbors(center.id)
        .filter(|(_, e)| e.expires_at >= now)
        .map(|(j, e)| (j, e.route_cost))
        .collect();
    neighbors.sort_by_key(|&(j, c)| (c, j.0));
    neighbors.truncate(clique.max_neighbors);
    neighbors
        .iter()
        .filter_map(|&(j, _)| graph.order_handle(j))
        .collect()
}

/// The clique under construction: shared handles (cloned into emitted
/// groups for the price of a refcount bump) plus a parallel plain-reference
/// vector kept in sync for the planner, so the hot search loop allocates
/// nothing per candidate.
struct Members<'a> {
    handles: Vec<&'a Arc<Order>>,
    refs: Vec<&'a Order>,
}

impl<'a> Members<'a> {
    fn with_center(center: &'a Arc<Order>, capacity: usize) -> Self {
        let mut m = Self {
            handles: Vec::with_capacity(capacity),
            refs: Vec::with_capacity(capacity),
        };
        m.push(center);
        m
    }

    fn push(&mut self, o: &'a Arc<Order>) {
        self.handles.push(o);
        self.refs.push(o.as_ref());
    }

    fn pop(&mut self) {
        self.handles.pop();
        self.refs.pop();
    }

    fn len(&self) -> usize {
        self.handles.len()
    }

    fn riders(&self) -> u32 {
        self.refs.iter().map(|o| o.riders).sum()
    }

    /// Clone the member handles into a group's order list.
    fn to_orders(&self) -> Vec<Arc<Order>> {
        self.handles.iter().map(|&o| Arc::clone(o)).collect()
    }
}

#[allow(clippy::too_many_arguments)]
fn grow<'a, C: TravelBound>(
    members: &mut Members<'a>,
    candidates: &[&'a Arc<Order>],
    from: usize,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    weights: CostWeights,
    oracle: &C,
    best: &mut Option<(f64, Group)>,
) {
    for i in from..candidates.len() {
        grow_subtree(
            members, candidates, i, graph, now, limits, clique, weights, oracle, best,
        );
    }
}

/// One branch of the best-group search: try extending the clique with
/// candidate `i`, then recurse over candidates after `i`. The unit the
/// parallel search distributes across threads (one top-level branch per
/// task); `best` records but never prunes, so branches are independent.
#[allow(clippy::too_many_arguments)]
fn grow_subtree<'a, C: TravelBound>(
    members: &mut Members<'a>,
    candidates: &[&'a Arc<Order>],
    i: usize,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    weights: CostWeights,
    oracle: &C,
    best: &mut Option<(f64, Group)>,
) {
    let cand = candidates[i];
    if !extends_clique(&members.refs, cand, graph) {
        return;
    }
    if members.riders() + cand.riders > limits.capacity {
        return;
    }
    members.push(cand);
    if let Some(route) = plan_min_cost(&members.refs, now, limits, oracle) {
        let group = Group::new(members.to_orders(), route, oracle);
        let mean = group.mean_extra_time(now, weights);
        let better = match best {
            Some((b, _)) => mean < *b,
            None => true,
        };
        if better {
            *best = Some((mean, group));
        }
        // Only a *feasible* subgroup is worth extending: route
        // feasibility is monotone-ish in practice and this keeps the
        // search linear in the number of useful cliques.
        if members.len() < clique.max_group_size {
            grow(
                members,
                candidates,
                i + 1,
                graph,
                now,
                limits,
                clique,
                weights,
                oracle,
                best,
            );
        }
    }
    members.pop();
}

#[allow(clippy::too_many_arguments)]
fn collect<'a, C: TravelBound>(
    members: &mut Members<'a>,
    candidates: &[&'a Arc<Order>],
    from: usize,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    oracle: &C,
    out: &mut Vec<Group>,
) {
    for i in from..candidates.len() {
        collect_subtree(
            members, candidates, i, graph, now, limits, clique, oracle, out,
        );
    }
}

/// One branch of the all-groups enumeration (see [`grow_subtree`]).
#[allow(clippy::too_many_arguments)]
fn collect_subtree<'a, C: TravelBound>(
    members: &mut Members<'a>,
    candidates: &[&'a Arc<Order>],
    i: usize,
    graph: &ShareGraph,
    now: Ts,
    limits: PlanLimits,
    clique: CliqueLimits,
    oracle: &C,
    out: &mut Vec<Group>,
) {
    let cand = candidates[i];
    if !extends_clique(&members.refs, cand, graph) {
        return;
    }
    if members.riders() + cand.riders > limits.capacity {
        return;
    }
    members.push(cand);
    if let Some(route) = plan_min_cost(&members.refs, now, limits, oracle) {
        out.push(Group::new(members.to_orders(), route, oracle));
        if members.len() < clique.max_group_size {
            collect(
                members,
                candidates,
                i + 1,
                graph,
                now,
                limits,
                clique,
                oracle,
                out,
            );
        }
    }
    members.pop();
}

/// `cand` extends the current member set to a larger clique iff it is
/// adjacent to every current member.
fn extends_clique(members: &[&Order], cand: &Order, graph: &ShareGraph) -> bool {
    members.iter().all(|m| graph.connected(m.id, cand.id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{Dur, NodeId, TravelCost};

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {}

    fn order(id: u32, p: u32, d: u32, deadline: Ts) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release: 0,
            deadline,
            wait_limit: 300,
            direct_cost: Line.cost(NodeId(p), NodeId(d)),
        }
    }

    fn limits() -> PlanLimits {
        PlanLimits { capacity: 4 }
    }

    fn setup(orders: Vec<Order>) -> ShareGraph {
        let mut g = ShareGraph::new();
        for o in orders {
            g.insert(o, 0, limits(), &Line);
        }
        g
    }

    #[test]
    fn lone_order_has_no_shared_group() {
        let g = setup(vec![order(0, 0, 10, 10_000)]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        assert!(best_group_for(
            &center,
            &g,
            0,
            limits(),
            CliqueLimits::default(),
            CostWeights::default(),
            &Line
        )
        .is_none());
    }

    #[test]
    fn pair_group_found() {
        let g = setup(vec![order(0, 0, 10, 10_000), order(1, 2, 8, 10_000)]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        let best = best_group_for(
            &center,
            &g,
            0,
            limits(),
            CliqueLimits::default(),
            CostWeights::default(),
            &Line,
        )
        .unwrap();
        assert_eq!(best.len(), 2);
        assert!(best.contains(OrderId(1)));
    }

    #[test]
    fn triple_preferred_when_detours_tiny() {
        // Three nested orders along a line: sharing all three costs no
        // detour to anyone, so the best group should reach size 3 (mean
        // extra time equal, but enumeration keeps the first strictly
        // smaller mean; nested orders give all-zero detours at now=0 so
        // pair and triple tie at 0 — accept either, but the triple must be
        // *feasible*).
        let g = setup(vec![
            order(0, 0, 10, 10_000),
            order(1, 1, 9, 10_000),
            order(2, 2, 8, 10_000),
        ]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        let all = all_groups_for(&center, &g, 0, limits(), CliqueLimits::default(), &Line);
        assert!(all.iter().any(|gr| gr.len() == 3), "triple clique missing");
        // 2 pairs containing o0 + 1 triple
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn capacity_caps_group_size() {
        let g = setup(vec![
            order(0, 0, 10, 10_000),
            order(1, 1, 9, 10_000),
            order(2, 2, 8, 10_000),
        ]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        let tight = PlanLimits { capacity: 2 };
        let all = all_groups_for(&center, &g, 0, tight, CliqueLimits::default(), &Line);
        assert!(all.iter().all(|gr| gr.len() <= 2));
    }

    #[test]
    fn max_group_size_respected() {
        let g = setup(vec![
            order(0, 0, 10, 10_000),
            order(1, 1, 9, 10_000),
            order(2, 2, 8, 10_000),
            order(3, 3, 7, 10_000),
        ]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        let cl = CliqueLimits {
            max_group_size: 2,
            max_neighbors: 12,
        };
        let all = all_groups_for(&center, &g, 0, limits(), cl, &Line);
        assert!(all.iter().all(|gr| gr.len() == 2));
    }

    #[test]
    fn chunked_search_matches_sequential_for_any_thread_count() {
        // A dense pool where every order pairs with every other: many
        // branches, ties in mean extra time — the tie-breaking stress case.
        let orders: Vec<Order> = (0..10).map(|i| order(i, i, i + 8, 10_000)).collect();
        let g = setup(orders);
        for threads in [1, 2, 3, 4, 8] {
            let exec = Exec::new(threads);
            for id in 0..10u32 {
                let center = g.order_handle(OrderId(id)).unwrap().clone();
                let seq_all =
                    all_groups_for(&center, &g, 0, limits(), CliqueLimits::default(), &Line);
                let par_all = all_groups_for_par(
                    &center,
                    &g,
                    0,
                    limits(),
                    CliqueLimits::default(),
                    &Line,
                    &exec,
                );
                assert_eq!(seq_all.len(), par_all.len(), "threads={threads} id={id}");
                for (a, b) in seq_all.iter().zip(&par_all) {
                    let ai: Vec<OrderId> = a.order_ids().collect();
                    let bi: Vec<OrderId> = b.order_ids().collect();
                    assert_eq!(ai, bi, "emission order diverges");
                    assert_eq!(a.route.cost(), b.route.cost());
                }
                let seq_best = best_group_for(
                    &center,
                    &g,
                    0,
                    limits(),
                    CliqueLimits::default(),
                    CostWeights::default(),
                    &Line,
                );
                let par_best = best_group_for_par(
                    &center,
                    &g,
                    0,
                    limits(),
                    CliqueLimits::default(),
                    CostWeights::default(),
                    &Line,
                    &exec,
                );
                match (seq_best, par_best) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        let ai: Vec<OrderId> = a.order_ids().collect();
                        let bi: Vec<OrderId> = b.order_ids().collect();
                        assert_eq!(ai, bi, "best tie-break diverges: threads={threads} id={id}");
                    }
                    _ => panic!("best presence diverges"),
                }
            }
        }
    }

    #[test]
    fn best_group_prefers_smaller_mean_extra_time() {
        // o1 overlaps o0 perfectly (no detour); o2 forces a detour.
        let g = setup(vec![
            order(0, 0, 10, 10_000),
            order(1, 0, 10, 10_000),
            order(2, 5, 20, 10_000),
        ]);
        let center = g.order_handle(OrderId(0)).unwrap().clone();
        let best = best_group_for(
            &center,
            &g,
            0,
            limits(),
            CliqueLimits::default(),
            CostWeights::default(),
            &Line,
        )
        .unwrap();
        assert!(best.contains(OrderId(1)));
        assert_eq!(best.len(), 2);
        assert!((best.mean_extra_time(0, CostWeights::default()) - 0.0).abs() < 1e-9);
    }
}
