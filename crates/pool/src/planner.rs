//! Minimal-cost feasible route planning.
//!
//! Given a candidate group of orders and a dispatch instant, find the
//! ordered stop sequence with the smallest total travel time `T(L)` that
//! satisfies Definition 7:
//!
//! 1. every pick-up precedes its drop-off,
//! 2. `now + T(L^(i)) < τ^(i)` for every order `i`,
//! 3. riders on board never exceed the vehicle capacity.
//!
//! Following the paper's model, `T(L)` is measured from the route's first
//! stop `l_1`; the worker's approach drive is charged separately by the
//! simulator.
//!
//! The search is branch-and-bound over stop interleavings with two prunes:
//! cost-so-far ≥ incumbent, and a lower bound on each not-yet-dropped
//! order's remaining leg versus its deadline. The remaining-leg prune asks
//! the oracle for an *optimistic* bound
//! ([`TravelBound::lower_bound`]) rather than the exact cost: on the dense
//! table the bound **is** the exact cost (identical pruning, O(1)); on the
//! ALT oracle it is the landmark bound (`O(landmarks)` instead of an A*
//! search per candidate state). Pruning strength may differ between
//! backends but the returned route never does — prunes only discard
//! provably infeasible or non-improving subtrees. Group sizes are small
//! (≤ vehicle capacity, ≤ 5 in all experiments), so the search is a few
//! hundred states at worst.

use watter_core::{Dur, Order, Route, Stop, TravelBound, Ts};

/// Hard limits for the planner.
#[derive(Clone, Copy, Debug)]
pub struct PlanLimits {
    /// Vehicle capacity (constraint 3). Groups whose concurrent riders
    /// exceed this are infeasible.
    pub capacity: u32,
}

impl Default for PlanLimits {
    fn default() -> Self {
        Self { capacity: 4 }
    }
}

/// Stop encoding used during search: order index ×2, +1 for drop-off.
#[inline]
fn is_dropoff(code: u8) -> bool {
    code & 1 == 1
}
#[inline]
fn order_of(code: u8) -> usize {
    (code >> 1) as usize
}

struct Search<'a, C: TravelBound> {
    orders: &'a [&'a Order],
    oracle: &'a C,
    now: Ts,
    capacity: u32,
    /// Fixed route origin (worker location) whose approach leg counts into
    /// both cost and deadlines; `None` for the paper's free-start model.
    start: Option<watter_core::NodeId>,
    best_cost: Dur,
    best_seq: Vec<u8>,
    seq: Vec<u8>,
}

impl<C: TravelBound> Search<'_, C> {
    fn node_of(&self, code: u8) -> watter_core::NodeId {
        let o = self.orders[order_of(code)];
        if is_dropoff(code) {
            o.dropoff
        } else {
            o.pickup
        }
    }

    /// `picked`/`dropped` are bitmasks over order indices.
    fn recurse(&mut self, picked: u32, dropped: u32, elapsed: Dur, onboard: u32) {
        let k = self.orders.len() as u32;
        if dropped.count_ones() == k {
            if elapsed < self.best_cost {
                self.best_cost = elapsed;
                self.best_seq = self.seq.clone();
            }
            return;
        }
        if elapsed >= self.best_cost {
            return;
        }
        let cur = self.seq.last().map(|&c| self.node_of(c)).or(self.start);
        // Lower-bound prune: every picked-but-not-dropped order still needs
        // at least cost(cur, dropoff) more seconds.
        if let Some(cur) = cur {
            for i in 0..self.orders.len() {
                let bit = 1u32 << i;
                if picked & bit != 0 && dropped & bit == 0 {
                    let o = self.orders[i];
                    let lb = self.oracle.lower_bound(cur, o.dropoff);
                    if self.now + elapsed + lb >= o.deadline {
                        return;
                    }
                }
            }
        }
        for i in 0..self.orders.len() {
            let bit = 1u32 << i;
            let o = self.orders[i];
            if picked & bit == 0 {
                // try picking up order i
                let new_onboard = onboard + o.riders;
                if new_onboard > self.capacity {
                    continue;
                }
                let leg = cur.map_or(0, |c| self.oracle.cost(c, o.pickup));
                // Even reaching the pick-up must leave room to meet the
                // deadline via the direct leg.
                let new_elapsed = elapsed + leg;
                if self.now + new_elapsed + o.direct_cost >= o.deadline {
                    continue;
                }
                self.seq.push((i as u8) << 1);
                self.recurse(picked | bit, dropped, new_elapsed, new_onboard);
                self.seq.pop();
            } else if dropped & bit == 0 {
                // try dropping off order i
                let leg = cur.map_or(0, |c| self.oracle.cost(c, o.dropoff));
                let new_elapsed = elapsed + leg;
                if self.now + new_elapsed >= o.deadline {
                    continue;
                }
                self.seq.push(((i as u8) << 1) | 1);
                self.recurse(picked, dropped | bit, new_elapsed, onboard - o.riders);
                self.seq.pop();
            }
        }
    }
}

/// Find the minimal-travel-cost feasible route for `orders` dispatched at
/// `now`, or `None` if no interleaving satisfies all constraints.
///
/// Routes start at one of the pick-ups (the paper's `l_1`); the cost of the
/// worker's approach drive is *not* part of `T(L)`.
pub fn plan_min_cost<C: TravelBound>(
    orders: &[&Order],
    now: Ts,
    limits: PlanLimits,
    oracle: &C,
) -> Option<Route> {
    plan_impl(None, orders, now, limits, oracle).map(|(route, _)| route)
}

/// Like [`plan_min_cost`] but the route starts from a fixed node (a
/// worker's current location), and the approach leg **is** counted both in
/// the total cost and in the deadline checks. Used by the GDP/GAS baselines
/// whose source papers model the worker position explicitly.
///
/// Returns the route (whose `cost()` still measures `T(L)` from the first
/// stop) together with the total cost including the approach drive.
pub fn plan_with_start<C: TravelBound>(
    start: watter_core::NodeId,
    orders: &[&Order],
    now: Ts,
    limits: PlanLimits,
    oracle: &C,
) -> Option<(Route, Dur)> {
    plan_impl(Some(start), orders, now, limits, oracle)
}

fn plan_impl<C: TravelBound>(
    start: Option<watter_core::NodeId>,
    orders: &[&Order],
    now: Ts,
    limits: PlanLimits,
    oracle: &C,
) -> Option<(Route, Dur)> {
    if orders.is_empty() || orders.len() > 16 {
        return None;
    }
    // Quick reject: a single order exceeding capacity can never be served.
    if orders.iter().any(|o| o.riders > limits.capacity) {
        return None;
    }
    let mut s = Search {
        orders,
        oracle,
        now,
        capacity: limits.capacity,
        start,
        best_cost: Dur::MAX / 4,
        best_seq: Vec::new(),
        seq: Vec::with_capacity(orders.len() * 2),
    };
    s.recurse(0, 0, 0, 0);
    if s.best_seq.is_empty() {
        return None;
    }
    let stops: Vec<Stop> = s
        .best_seq
        .iter()
        .map(|&code| {
            let o = orders[order_of(code)];
            if is_dropoff(code) {
                Stop::dropoff(o.dropoff, o.id)
            } else {
                Stop::pickup(o.pickup, o.id)
            }
        })
        .collect();
    let total = s.best_cost;
    // `best_cost` includes the approach leg when a start node was given;
    // `Route::cost()` must measure T(L) from the first stop only.
    let route_cost = match (start, stops.first()) {
        (Some(st), Some(first)) => total - oracle.cost(st, first.node),
        _ => total,
    };
    Some((Route::with_cost(stops, route_cost, oracle), total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{NodeId, OrderId, TravelCost};

    /// 1-D metric: |a−b| × 10 s.
    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {}

    fn order(id: u32, p: u32, d: u32, deadline: Ts) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release: 0,
            deadline,
            wait_limit: 1_000,
            direct_cost: Line.cost(NodeId(p), NodeId(d)),
        }
    }

    #[test]
    fn single_order_route_is_direct() {
        let o = order(0, 2, 7, 10_000);
        let r = plan_min_cost(&[&o], 0, PlanLimits::default(), &Line).unwrap();
        assert_eq!(r.cost(), 50);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn nested_orders_share_optimally() {
        // o0: 0→10, o1: 4→6 nested inside. Optimal: p0 p1 d1 d0 cost 100.
        let o0 = order(0, 0, 10, 100_000);
        let o1 = order(1, 4, 6, 100_000);
        let r = plan_min_cost(&[&o0, &o1], 0, PlanLimits::default(), &Line).unwrap();
        assert_eq!(r.cost(), 100);
        assert_eq!(r.detour(OrderId(0), 100, &Line), Some(0));
        // Definition 5 measures L^(i) from the route's first stop, so o1's
        // "detour" includes the 40 s ride-along before boarding at node 4.
        assert_eq!(r.detour(OrderId(1), 20, &Line), Some(40));
    }

    #[test]
    fn deadline_forces_nonoptimal_or_none() {
        // o1 must be dropped quickly; tight deadline excludes serving o0 first.
        let o0 = order(0, 0, 10, 100_000);
        let o1 = order(1, 0, 2, 25); // direct 20, slack 5 — barely feasible alone
        let r = plan_min_cost(&[&o0, &o1], 0, PlanLimits::default(), &Line).unwrap();
        // must start at the shared pickup and drop o1 first
        assert_eq!(r.stops()[1].order, OrderId(1));
    }

    #[test]
    fn infeasible_deadline_returns_none() {
        let o0 = order(0, 0, 10, 50); // direct 100 > deadline 50
        assert!(plan_min_cost(&[&o0], 0, PlanLimits::default(), &Line).is_none());
    }

    #[test]
    fn capacity_blocks_overlapping_pickups() {
        // Two 1-rider orders, capacity 1: must serve sequentially.
        let o0 = order(0, 0, 10, 100_000);
        let o1 = order(1, 1, 9, 100_000);
        let limits = PlanLimits { capacity: 1 };
        let r = plan_min_cost(&[&o0, &o1], 0, limits, &Line).unwrap();
        // sequential service: p0 d0 p1 d1 or p1 d1 p0 d0
        let seq: Vec<_> = r.stops().iter().map(|s| (s.order, s.kind)).collect();
        use watter_core::StopKind::*;
        assert!(
            seq == vec![
                (OrderId(0), Pickup),
                (OrderId(0), Dropoff),
                (OrderId(1), Pickup),
                (OrderId(1), Dropoff)
            ] || seq
                == vec![
                    (OrderId(1), Pickup),
                    (OrderId(1), Dropoff),
                    (OrderId(0), Pickup),
                    (OrderId(0), Dropoff)
                ]
        );
    }

    #[test]
    fn dispatch_time_shifts_feasibility() {
        let o = order(0, 0, 5, 100); // direct 50, deadline 100
        assert!(plan_min_cost(&[&o], 0, PlanLimits::default(), &Line).is_some());
        assert!(plan_min_cost(&[&o], 49, PlanLimits::default(), &Line).is_some());
        // now=50: 50+50 = 100 ≥ 100 → infeasible (strict)
        assert!(plan_min_cost(&[&o], 50, PlanLimits::default(), &Line).is_none());
    }

    #[test]
    fn three_orders_chain() {
        let o0 = order(0, 0, 4, 100_000);
        let o1 = order(1, 1, 5, 100_000);
        let o2 = order(2, 2, 6, 100_000);
        let r = plan_min_cost(&[&o0, &o1, &o2], 0, PlanLimits::default(), &Line).unwrap();
        // optimal chain: p0 p1 p2 d0 d1 d2 = 60
        assert_eq!(r.cost(), 60);
        assert!(r.is_sequential());
    }

    #[test]
    fn route_respects_capacity_with_multi_rider_orders() {
        let mut o0 = order(0, 0, 10, 100_000);
        o0.riders = 3;
        let mut o1 = order(1, 2, 8, 100_000);
        o1.riders = 2;
        let limits = PlanLimits { capacity: 4 };
        let r = plan_min_cost(&[&o0, &o1], 0, limits, &Line).unwrap();
        assert!(r.peak_load(|id| if id == OrderId(0) { 3 } else { 2 }) <= 4);
    }

    #[test]
    fn oversized_single_order_is_rejected() {
        let mut o = order(0, 0, 5, 100_000);
        o.riders = 9;
        assert!(plan_min_cost(&[&o], 0, PlanLimits { capacity: 4 }, &Line).is_none());
    }

    #[test]
    fn plan_with_start_counts_approach() {
        let o = order(0, 5, 8, 10_000);
        let (route, total) =
            plan_with_start(NodeId(0), &[&o], 0, PlanLimits::default(), &Line).unwrap();
        assert_eq!(route.cost(), 30);
        assert_eq!(total, 50 + 30);
    }

    #[test]
    fn plan_with_start_deadline_includes_approach() {
        // direct 30, deadline 60: feasible only if approach ≤ 29.
        let o = order(0, 5, 8, 60);
        assert!(plan_with_start(NodeId(5), &[&o], 0, PlanLimits::default(), &Line).is_some());
        assert!(plan_with_start(NodeId(0), &[&o], 0, PlanLimits::default(), &Line).is_none());
    }

    #[test]
    fn empty_group_is_none() {
        assert!(plan_min_cost(&[], 0, PlanLimits::default(), &Line).is_none());
    }
}
