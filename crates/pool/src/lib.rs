//! # watter-pool
//!
//! The paper's primary data structure: the **graph-based order pool**
//! (Section IV). Orders wait in a *temporal shareability graph* whose edges
//! record which pairs can still be served together and until when; shareable
//! groups are cliques (Theorem IV.1); each pooled order carries its current
//! **best group** — the feasible group with the smallest average extra time
//! — so the decision maker retrieves it in O(1) (Algorithm 1).
//!
//! Components:
//!
//! * [`planner`] — minimal-travel-cost feasible route search for a candidate
//!   group (branch-and-bound over pick-up/drop-off interleavings, enforcing
//!   the sequential / deadline / capacity constraints of Definition 7);
//! * [`share_graph`] — the temporal shareability graph: nodes, pair edges
//!   with expiry timestamps `τ_e`, lazy expiry;
//! * [`cliques`] — bounded enumeration of cliques containing a given order,
//!   validated by the planner (cliques are necessary, not sufficient);
//! * [`pool`] — the [`OrderPool`] facade handling the four update events of
//!   Section IV-B (order arrival, order departure, edge expiry, group
//!   expiry) while keeping the best-group map consistent.

pub mod cliques;
pub mod planner;
pub mod pool;
pub mod shard;
pub mod share_graph;
pub mod snapshot;
pub mod spatial;

pub use planner::{plan_min_cost, plan_with_start, PlanLimits};
pub use pool::{OrderPool, PoolConfig, PoolStats};
pub use shard::ShardMap;
pub use share_graph::{pair_prefilter, PairEdge, ShareGraph};
pub use snapshot::{BestSnapshot, EdgeSnapshot, PoolSnapshot, RestoreError};
pub use spatial::SpatialPrune;
