//! Spatial candidate pruning for shareability-edge construction.
//!
//! Inserting an order into the [`ShareGraph`](crate::ShareGraph) used to
//! scan *every* live pooled order. [`SpatialPrune`] turns that into an
//! O(nearby) scan: pooled orders are bucketed by the grid cell of their
//! pick-up, and an insert only visits cells within the **slack-reachable
//! ring** of the new order's pick-up.
//!
//! The ring radius is derived from the same necessary condition the pair
//! pre-filter checks: a pair `(a, b)` can only be shareable if the travel
//! time between their pick-ups is below one of the pair's slacks
//! (`deadline − now − direct`). Travel time is bounded from below
//! geometrically — every edge satisfies `travel(e) ≥ γ·‖e‖` with
//! `γ = min_e travel(e)/‖e‖`
//! ([`RoadGraph::min_cost_per_unit_distance`]), and Euclidean edge lengths
//! along any path sum to at least the straight-line distance, so
//!
//! ```text
//! cost(p_a, p_b) ≥ γ·‖p_a − p_b‖ ≥ γ·(d − 1)·min_cell_extent
//! ```
//!
//! for pick-ups whose cells are `d ≥ 1` apart (Chebyshev). Cells whose
//! bound already exceeds every relevant slack cannot contain a shareable
//! partner, so skipping them provably changes nothing: the pruned insert
//! produces **bit-identical edge sets** to the full scan (proven by the
//! equivalence property tests in `tests/accel.rs`).

use watter_core::Dur;
use watter_road::{GridIndex, RoadGraph};

/// Margin applied to the geometric bound so floating-point rounding in
/// `γ`/extent arithmetic can never push a computed bound *above* its true
/// value (which would over-prune). The true bound is conservative by whole
/// integer seconds in practice; giving up 0.1% of it costs nothing.
const SAFETY: f64 = 1.0 - 1e-3;

/// Grid-based spatial pruning parameters for `ShareGraph::insert`.
///
/// Cheap to clone (shares nothing mutable); the embedded [`GridIndex`] is
/// typically the same one the dispatcher already uses for demand/supply
/// snapshots.
#[derive(Clone, Debug)]
pub struct SpatialPrune {
    grid: GridIndex,
    /// Admissible travel-cost bound contributed by each ring of cell
    /// distance beyond the first: `γ × min_cell_extent × SAFETY`.
    cost_per_ring: f64,
}

impl SpatialPrune {
    /// Build from a grid index and a precomputed `γ`
    /// (see [`RoadGraph::min_cost_per_unit_distance`]).
    ///
    /// `γ ≤ 0` (or NaN) disables pruning — every insert degenerates to the
    /// full scan, which is always sound.
    pub fn new(grid: GridIndex, min_cost_per_dist: f64) -> Self {
        let gamma = if min_cost_per_dist.is_nan() {
            0.0
        } else {
            min_cost_per_dist.max(0.0)
        };
        let cost_per_ring = gamma * grid.min_cell_extent() * SAFETY;
        Self {
            grid,
            cost_per_ring,
        }
    }

    /// Build from the road graph the orders live on, deriving `γ` from its
    /// edges. The grid must be built over the same graph.
    pub fn for_graph(graph: &RoadGraph, grid: GridIndex) -> Self {
        Self::new(grid, graph.min_cost_per_unit_distance())
    }

    /// The grid index used for bucketing.
    #[inline]
    pub fn grid(&self) -> &GridIndex {
        &self.grid
    }

    /// Admissible lower bound on the travel cost between two nodes whose
    /// pick-up cells are `d` apart (Chebyshev). Zero for adjacent or
    /// same-cell pairs.
    #[inline]
    pub fn ring_cost_bound(&self, d: usize) -> f64 {
        if d <= 1 {
            0.0
        } else {
            (d - 1) as f64 * self.cost_per_ring
        }
    }

    /// Whether a candidate whose pick-up cell is `d` away can be skipped
    /// outright given the pair's largest slack: if even the geometric bound
    /// reaches the slack, the pair pre-filter is guaranteed to fail.
    #[inline]
    pub fn skip(&self, d: usize, max_slack: Dur) -> bool {
        self.ring_cost_bound(d) >= max_slack as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_road::citygen::CityConfig;

    #[test]
    fn ring_bound_grows_linearly_after_first_ring() {
        let g = CityConfig {
            width: 8,
            height: 8,
            ..Default::default()
        }
        .generate(3);
        let sp = SpatialPrune::for_graph(&g, GridIndex::build(&g, 4));
        assert_eq!(sp.ring_cost_bound(0), 0.0);
        assert_eq!(sp.ring_cost_bound(1), 0.0);
        let b2 = sp.ring_cost_bound(2);
        assert!(b2 > 0.0, "city edges must yield a positive γ");
        assert!((sp.ring_cost_bound(4) - 3.0 * b2).abs() < 1e-9);
    }

    #[test]
    fn bound_never_exceeds_true_cost() {
        use watter_core::TravelCost;
        let g = CityConfig {
            width: 7,
            height: 6,
            ..Default::default()
        }
        .generate(11);
        let sp = SpatialPrune::for_graph(&g, GridIndex::build(&g, 5));
        let m = watter_road::CostMatrix::build(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                if !m.reachable(a, b) {
                    continue;
                }
                let d = sp.grid().cell_distance(a, b);
                assert!(
                    sp.ring_cost_bound(d) <= m.cost(a, b) as f64,
                    "bound({a},{b}) at cell distance {d} exceeds exact cost"
                );
            }
        }
    }

    #[test]
    fn degenerate_gamma_disables_pruning() {
        let sp = SpatialPrune::new(
            GridIndex::build(
                &watter_road::RoadGraph::from_edges(vec![(0.0, 0.0), (9.0, 9.0)], vec![]),
                3,
            ),
            f64::NAN,
        );
        assert!(!sp.skip(100, 1));
    }

    #[test]
    fn infinite_gamma_skips_distant_rings_only() {
        // No positive-length edges: distinct-coordinate nodes are
        // unreachable, so distant cells are safely skippable; near rings
        // are always visited.
        let g = watter_road::RoadGraph::from_edges(vec![(0.0, 0.0), (9.0, 9.0)], vec![]);
        let sp = SpatialPrune::for_graph(&g, GridIndex::build(&g, 3));
        assert!(!sp.skip(0, 1_000));
        assert!(!sp.skip(1, 1_000));
        assert!(sp.skip(2, 1_000));
    }
}
