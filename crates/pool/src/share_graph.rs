//! The temporal shareability graph (Definition 8).
//!
//! `G = (O, E)`: each pooled order is a node; an edge `(o_i, o_j, τ_e)`
//! records that the two orders can be served together by some feasible route
//! until timestamp `τ_e` (the pair group's expiry, Equation 3). Edges are
//! created when an order is inserted (by running the pair planner against
//! every live node that passes a cheap slack pre-filter) and removed lazily
//! once expired.

use crate::planner::{plan_min_cost, PlanLimits};
use std::collections::BTreeMap;
use std::sync::Arc;
use watter_core::{Dur, Group, Order, OrderId, TravelCost, Ts};

/// A shareability edge between two pooled orders.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairEdge {
    /// Latest dispatch instant at which the pair is still jointly feasible
    /// (`τ_e` of Definition 8; inclusive).
    pub expires_at: Ts,
    /// Travel cost `T(L)` of the pair's minimal-cost route, used to rank
    /// neighbours when bounding clique enumeration.
    pub route_cost: Dur,
}

/// Adjacency-list temporal shareability graph.
///
/// Ordered maps keep every iteration (neighbor scans, clique enumeration,
/// expiry sweeps) deterministic run-to-run, so simulations are reproducible
/// from the scenario seed alone.
///
/// Orders are stored behind [`Arc`] so that clique enumeration and group
/// construction share handles instead of deep-copying each `Order` into
/// every candidate group.
#[derive(Clone, Debug, Default)]
pub struct ShareGraph {
    orders: BTreeMap<OrderId, Arc<Order>>,
    adj: BTreeMap<OrderId, BTreeMap<OrderId, PairEdge>>,
}

impl ShareGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled orders.
    pub fn len(&self) -> usize {
        self.orders.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.orders.is_empty()
    }

    /// Number of live edges (each undirected edge counted once).
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(|m| m.len()).sum::<usize>() / 2
    }

    /// The pooled order with the given id.
    pub fn order(&self, id: OrderId) -> Option<&Order> {
        self.orders.get(&id).map(Arc::as_ref)
    }

    /// The pooled order as a shared handle (cheap to clone into groups).
    pub fn order_handle(&self, id: OrderId) -> Option<&Arc<Order>> {
        self.orders.get(&id)
    }

    /// Iterate over pooled orders.
    pub fn orders(&self) -> impl Iterator<Item = &Order> {
        self.orders.values().map(Arc::as_ref)
    }

    /// Ids of pooled orders.
    pub fn order_ids(&self) -> impl Iterator<Item = OrderId> + '_ {
        self.orders.keys().copied()
    }

    /// Neighbours of `id` with their edges.
    pub fn neighbors(&self, id: OrderId) -> impl Iterator<Item = (OrderId, PairEdge)> + '_ {
        self.adj
            .get(&id)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&j, &e)| (j, e)))
    }

    /// Whether a live edge connects `a` and `b`.
    pub fn connected(&self, a: OrderId, b: OrderId) -> bool {
        self.adj.get(&a).is_some_and(|m| m.contains_key(&b))
    }

    /// Insert a new order at time `now`, creating shareability edges to
    /// every live order whose pair route is feasible (Section IV-A).
    ///
    /// Returns the ids of the new neighbours.
    pub fn insert<C: TravelCost>(
        &mut self,
        order: Order,
        now: Ts,
        limits: PlanLimits,
        oracle: &C,
    ) -> Vec<OrderId> {
        let id = order.id;
        debug_assert!(
            !self.orders.contains_key(&id),
            "order {id} inserted twice into the pool"
        );
        let order = Arc::new(order);
        let mut new_neighbors = Vec::new();
        for other in self.orders.values() {
            if !pair_prefilter(&order, other, now, oracle) {
                continue;
            }
            if let Some(route) =
                plan_min_cost(&[order.as_ref(), other.as_ref()], now, limits, oracle)
            {
                let group = Group::new(vec![Arc::clone(&order), Arc::clone(other)], route, oracle);
                let edge = PairEdge {
                    expires_at: group.expires_at(oracle),
                    route_cost: group.route.cost(),
                };
                if edge.expires_at >= now {
                    new_neighbors.push((other.id, edge));
                }
            }
        }
        for &(j, e) in &new_neighbors {
            self.adj.entry(id).or_default().insert(j, e);
            self.adj.entry(j).or_default().insert(id, e);
        }
        self.orders.insert(id, order);
        new_neighbors.into_iter().map(|(j, _)| j).collect()
    }

    /// Remove an order (dispatched or rejected), dropping its edges.
    /// Returns its former neighbours (whose best groups may need refresh).
    pub fn remove(&mut self, id: OrderId) -> Vec<OrderId> {
        let neighbors: Vec<OrderId> = self
            .adj
            .remove(&id)
            .map(|m| m.into_keys().collect())
            .unwrap_or_default();
        for j in &neighbors {
            if let Some(m) = self.adj.get_mut(j) {
                m.remove(&id);
            }
        }
        self.orders.remove(&id);
        neighbors
    }

    /// Drop every edge whose `τ_e` has passed. Returns the endpoints of
    /// removed edges (candidates for best-group refresh — update event (3)
    /// of Section IV-B).
    pub fn expire_edges(&mut self, now: Ts) -> Vec<OrderId> {
        let mut touched = Vec::new();
        for (&i, m) in self.adj.iter_mut() {
            let before = m.len();
            m.retain(|_, e| e.expires_at >= now);
            if m.len() != before {
                touched.push(i);
            }
        }
        touched
    }

    /// Orders whose own solo feasibility has lapsed (cannot be served even
    /// alone: `now + direct ≥ deadline`). These must be rejected.
    pub fn dead_orders(&self, now: Ts) -> Vec<OrderId> {
        self.orders
            .values()
            .filter(|o| now + o.direct_cost >= o.deadline)
            .map(|o| o.id)
            .collect()
    }
}

/// Cheap necessary condition for a pair to be shareable, used to avoid
/// running the pair planner against every pooled order.
///
/// Any joint route serving both orders travels at least
/// `min(cost(p_i→p_j), cost(p_j→p_i))` between the two pick-ups, and the
/// order picked up second then still needs its direct leg as a lower bound;
/// if that already busts the second order's deadline in both pick-up orders,
/// the pair is infeasible.
fn pair_prefilter<C: TravelCost>(a: &Order, b: &Order, now: Ts, oracle: &C) -> bool {
    let ij = oracle.cost(a.pickup, b.pickup);
    let ji = oracle.cost(b.pickup, a.pickup);
    // Route starting at a's pickup: b picked up after ≥ ij seconds.
    let a_first_ok = now + ij + b.direct_cost < b.deadline && now + a.direct_cost < a.deadline;
    // Route starting at b's pickup: a picked up after ≥ ji seconds.
    let b_first_ok = now + ji + a.direct_cost < a.deadline && now + b.direct_cost < b.deadline;
    a_first_ok || b_first_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::NodeId;

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }

    fn order(id: u32, p: u32, d: u32, release: Ts, deadline: Ts) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline,
            wait_limit: 300,
            direct_cost: Line.cost(NodeId(p), NodeId(d)),
        }
    }

    fn limits() -> PlanLimits {
        PlanLimits { capacity: 4 }
    }

    #[test]
    fn overlapping_orders_get_an_edge() {
        let mut g = ShareGraph::new();
        g.insert(order(0, 0, 10, 0, 10_000), 0, limits(), &Line);
        let n = g.insert(order(1, 2, 8, 0, 10_000), 0, limits(), &Line);
        assert_eq!(n, vec![OrderId(0)]);
        assert!(g.connected(OrderId(0), OrderId(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn tight_deadlines_prevent_edges() {
        let mut g = ShareGraph::new();
        // Opposite directions with zero slack: can only be served solo.
        g.insert(order(0, 0, 10, 0, 101), 0, limits(), &Line);
        let n = g.insert(order(1, 10, 0, 0, 101), 0, limits(), &Line);
        assert!(n.is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn removal_disconnects() {
        let mut g = ShareGraph::new();
        g.insert(order(0, 0, 10, 0, 10_000), 0, limits(), &Line);
        g.insert(order(1, 2, 8, 0, 10_000), 0, limits(), &Line);
        let touched = g.remove(OrderId(0));
        assert_eq!(touched, vec![OrderId(1)]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.connected(OrderId(0), OrderId(1)));
    }

    #[test]
    fn edges_expire() {
        let mut g = ShareGraph::new();
        // Pair jointly feasible only for a bounded window.
        g.insert(order(0, 0, 10, 0, 200), 0, limits(), &Line);
        g.insert(order(1, 2, 8, 0, 200), 0, limits(), &Line);
        assert_eq!(g.edge_count(), 1);
        let touched = g.expire_edges(150);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(touched.len(), 2);
    }

    #[test]
    fn dead_orders_flagged_when_solo_infeasible() {
        let mut g = ShareGraph::new();
        g.insert(order(0, 0, 10, 0, 200), 0, limits(), &Line); // direct 100
        assert!(g.dead_orders(50).is_empty());
        assert_eq!(g.dead_orders(100), vec![OrderId(0)]);
    }

    #[test]
    fn edge_expiry_matches_group_slack() {
        let mut g = ShareGraph::new();
        g.insert(order(0, 0, 10, 0, 200), 0, limits(), &Line);
        g.insert(order(1, 2, 8, 0, 500), 0, limits(), &Line);
        let (_, e) = g.neighbors(OrderId(0)).next().unwrap();
        // Optimal pair route p0 p1 d1 d0 costs 100; o0 subroute = 100 →
        // expiry = 200 − 100 − 1 = 99 (o0 is the binding member).
        assert_eq!(e.expires_at, 99);
        assert_eq!(e.route_cost, 100);
    }
}
