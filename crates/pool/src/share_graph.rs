//! The temporal shareability graph (Definition 8).
//!
//! `G = (O, E)`: each pooled order is a node; an edge `(o_i, o_j, τ_e)`
//! records that the two orders can be served together by some feasible route
//! until timestamp `τ_e` (the pair group's expiry, Equation 3). Edges are
//! created when an order is inserted (by running the pair planner against
//! every live node that passes a cheap slack pre-filter) and removed lazily
//! once expired.

use crate::planner::{plan_min_cost, PlanLimits};
use crate::spatial::SpatialPrune;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use watter_core::{Dur, Group, Order, OrderId, TravelBound, Ts};

/// A shareability edge between two pooled orders.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairEdge {
    /// Latest dispatch instant at which the pair is still jointly feasible
    /// (`τ_e` of Definition 8; inclusive).
    pub expires_at: Ts,
    /// Travel cost `T(L)` of the pair's minimal-cost route, used to rank
    /// neighbours when bounding clique enumeration.
    pub route_cost: Dur,
}

/// Adjacency-list temporal shareability graph.
///
/// Ordered maps keep every iteration (neighbor scans, clique enumeration,
/// expiry sweeps) deterministic run-to-run, so simulations are reproducible
/// from the scenario seed alone.
///
/// Orders are stored behind [`Arc`] so that clique enumeration and group
/// construction share handles instead of deep-copying each `Order` into
/// every candidate group.
#[derive(Clone, Debug, Default)]
pub struct ShareGraph {
    orders: BTreeMap<OrderId, Arc<Order>>,
    adj: BTreeMap<OrderId, BTreeMap<OrderId, PairEdge>>,
    spatial: Option<SpatialState>,
}

/// Grid bucketing of pooled orders by pick-up cell, used to restrict the
/// insert scan to the slack-reachable ring. Produces bit-identical edge
/// sets to the full scan (the pruning bound is a necessary condition for
/// the pair pre-filter to pass).
#[derive(Clone, Debug)]
struct SpatialState {
    prune: SpatialPrune,
    /// Pooled order ids per pick-up cell; `BTreeSet` keeps within-cell
    /// iteration id-ordered and run-to-run deterministic.
    cells: BTreeMap<usize, BTreeSet<OrderId>>,
    /// Histogram of `deadline − direct_cost` ("latest feasible solo start")
    /// over pooled orders. Its maximum bounds every pooled order's slack at
    /// any `now`, which caps the ring radius an insert must visit.
    latest_start: BTreeMap<Ts, usize>,
}

impl SpatialState {
    fn track(&mut self, o: &Order) {
        let cell = self.prune.grid().cell_of(o.pickup);
        self.cells.entry(cell).or_default().insert(o.id);
        *self
            .latest_start
            .entry(o.deadline - o.direct_cost)
            .or_insert(0) += 1;
    }

    fn forget(&mut self, o: &Order) {
        let cell = self.prune.grid().cell_of(o.pickup);
        if let Some(bucket) = self.cells.get_mut(&cell) {
            bucket.remove(&o.id);
            if bucket.is_empty() {
                self.cells.remove(&cell);
            }
        }
        if let Some(count) = self.latest_start.get_mut(&(o.deadline - o.direct_cost)) {
            *count -= 1;
            if *count == 0 {
                self.latest_start.remove(&(o.deadline - o.direct_cost));
            }
        }
    }

    fn max_latest_start(&self) -> Option<Ts> {
        self.latest_start.keys().next_back().copied()
    }
}

impl ShareGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty graph with spatial candidate pruning: inserts bucket orders by
    /// pick-up cell and scan only the slack-reachable ring instead of the
    /// whole pool. Edge sets are bit-identical to [`ShareGraph::new`].
    pub fn with_spatial(spatial: SpatialPrune) -> Self {
        Self {
            spatial: Some(SpatialState {
                prune: spatial,
                cells: BTreeMap::new(),
                latest_start: BTreeMap::new(),
            }),
            ..Self::default()
        }
    }

    /// Number of pooled orders.
    pub fn len(&self) -> usize {
        self.orders.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.orders.is_empty()
    }

    /// Number of live edges (each undirected edge counted once).
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(|m| m.len()).sum::<usize>() / 2
    }

    /// The pooled order with the given id.
    pub fn order(&self, id: OrderId) -> Option<&Order> {
        self.orders.get(&id).map(Arc::as_ref)
    }

    /// The pooled order as a shared handle (cheap to clone into groups).
    pub fn order_handle(&self, id: OrderId) -> Option<&Arc<Order>> {
        self.orders.get(&id)
    }

    /// Iterate over pooled orders.
    pub fn orders(&self) -> impl Iterator<Item = &Order> {
        self.orders.values().map(Arc::as_ref)
    }

    /// Ids of pooled orders.
    pub fn order_ids(&self) -> impl Iterator<Item = OrderId> + '_ {
        self.orders.keys().copied()
    }

    /// Neighbours of `id` with their edges.
    pub fn neighbors(&self, id: OrderId) -> impl Iterator<Item = (OrderId, PairEdge)> + '_ {
        self.adj
            .get(&id)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&j, &e)| (j, e)))
    }

    /// Whether a live edge connects `a` and `b`.
    pub fn connected(&self, a: OrderId, b: OrderId) -> bool {
        self.adj.get(&a).is_some_and(|m| m.contains_key(&b))
    }

    /// Insert a new order at time `now`, creating shareability edges to
    /// every live order whose pair route is feasible (Section IV-A).
    ///
    /// Candidate scan: the full pool, or only the slack-reachable cell ring
    /// when the graph was built [`with_spatial`](ShareGraph::with_spatial)
    /// — same edges either way.
    ///
    /// Returns the ids of the new neighbours, ascending.
    ///
    /// Composed from the three stages the parallel pool also uses:
    /// [`candidate_partners`](Self::candidate_partners) (read-only scan) →
    /// [`eval_edge`](Self::eval_edge) per candidate (pure) →
    /// [`commit`](Self::commit) (the only mutation). `OrderPool` runs the
    /// middle stage across threads; edges are identical either way because
    /// evaluation never touches graph state.
    pub fn insert<C: TravelBound>(
        &mut self,
        order: Order,
        now: Ts,
        limits: PlanLimits,
        oracle: &C,
    ) -> Vec<OrderId> {
        let order = Arc::new(order);
        let edges: Vec<(OrderId, PairEdge)> = self
            .candidate_partners(&order, now)
            .into_iter()
            .filter_map(|j| {
                self.eval_edge(&order, j, now, limits, oracle)
                    .map(|e| (j, e))
            })
            .collect();
        self.commit(order, edges)
    }

    /// Candidate partner ids for an arriving order, ascending: the whole
    /// pool, or — with spatial pruning — only orders in the slack-reachable
    /// cell ring that also pass the per-pair ring refinement. Read-only;
    /// candidate selection depends only on graph state and the order.
    pub fn candidate_partners(&self, order: &Order, now: Ts) -> Vec<OrderId> {
        match &self.spatial {
            None => self.orders.keys().copied().collect(),
            Some(st) => {
                // Both pre-filter arms require the *new* order to have solo
                // slack left; without it no pair is admissible and the scan
                // can be skipped outright.
                let slack_new = order.deadline - order.direct_cost - now;
                let Some(pool_slack) = st.max_latest_start().map(|dd| dd - now) else {
                    return Vec::new();
                };
                if slack_new <= 0 {
                    return Vec::new();
                }
                // No pooled order's slack exceeds this, so once the ring
                // bound reaches it the remaining rings cannot hold an
                // admissible partner.
                let ring_limit = slack_new.max(pool_slack);
                let grid = st.prune.grid();
                let (cx, cy) = grid.cell_xy(grid.cell_of(order.pickup));
                let mut candidates: Vec<OrderId> = Vec::new();
                grid.ring_search(order.pickup, |cell| {
                    let (x, y) = grid.cell_xy(cell);
                    let d = cx.abs_diff(x).max(cy.abs_diff(y));
                    if st.prune.skip(d, ring_limit) {
                        return true; // this ring and beyond: hopeless
                    }
                    if let Some(bucket) = st.cells.get(&cell) {
                        candidates.extend(bucket.iter().copied());
                    }
                    false
                });
                candidates.sort_unstable();
                candidates.retain(|cand| {
                    let other = &self.orders[cand];
                    // Per-pair refinement of the ring bound: the pre-filter
                    // can only pass if the pick-up leg is below one of the
                    // pair's slacks.
                    let d = grid.cell_distance(order.pickup, other.pickup);
                    let pair_slack = slack_new.max(other.deadline - other.direct_cost - now);
                    !st.prune.skip(d, pair_slack)
                });
                candidates
            }
        }
    }

    /// Validate the candidate pair `(order, cand)`: pre-filter, pair
    /// planner, edge-expiry computation. Pure with respect to graph state —
    /// safe to evaluate from multiple threads concurrently and the reason
    /// parallel inserts are bit-identical to sequential ones.
    pub fn eval_edge<C: TravelBound>(
        &self,
        order: &Arc<Order>,
        cand: OrderId,
        now: Ts,
        limits: PlanLimits,
        oracle: &C,
    ) -> Option<PairEdge> {
        pair_edge(order, self.orders.get(&cand)?, now, limits, oracle)
    }

    /// Commit an arriving order and its validated edges (`(id, edge)`
    /// ascending by id) into the graph. The sole mutation stage of an
    /// insert. Returns the neighbour ids, ascending.
    pub fn commit(&mut self, order: Arc<Order>, edges: Vec<(OrderId, PairEdge)>) -> Vec<OrderId> {
        let id = order.id;
        debug_assert!(
            !self.orders.contains_key(&id),
            "order {id} inserted twice into the pool"
        );
        // Ascending by construction: the full scan iterates the ordered
        // order map, the spatial path sorts candidates up front, and the
        // parallel path merges per-shard chunks in canonical order.
        debug_assert!(edges.windows(2).all(|w| w[0].0 < w[1].0));
        for &(j, e) in &edges {
            self.adj.entry(id).or_default().insert(j, e);
            self.adj.entry(j).or_default().insert(id, e);
        }
        if let Some(st) = &mut self.spatial {
            st.track(&order);
        }
        self.orders.insert(id, order);
        edges.into_iter().map(|(j, _)| j).collect()
    }

    /// Remove an order (dispatched or rejected), dropping its edges.
    /// Returns its former neighbours (whose best groups may need refresh).
    pub fn remove(&mut self, id: OrderId) -> Vec<OrderId> {
        let neighbors: Vec<OrderId> = self
            .adj
            .remove(&id)
            .map(|m| m.into_keys().collect())
            .unwrap_or_default();
        for j in &neighbors {
            if let Some(m) = self.adj.get_mut(j) {
                m.remove(&id);
            }
        }
        if let Some(order) = self.orders.remove(&id) {
            if let Some(st) = &mut self.spatial {
                st.forget(&order);
            }
        }
        neighbors
    }

    /// Drop every edge whose `τ_e` has passed. Returns the endpoints of
    /// removed edges (candidates for best-group refresh — update event (3)
    /// of Section IV-B).
    pub fn expire_edges(&mut self, now: Ts) -> Vec<OrderId> {
        let mut touched = Vec::new();
        for (&i, m) in self.adj.iter_mut() {
            let before = m.len();
            m.retain(|_, e| e.expires_at >= now);
            if m.len() != before {
                touched.push(i);
            }
        }
        touched
    }

    /// Iterate over live edges, each undirected edge once as `(a, b, edge)`
    /// with `a < b`, ascending — the canonical form snapshots store.
    pub fn edges(&self) -> impl Iterator<Item = (OrderId, OrderId, PairEdge)> + '_ {
        self.adj.iter().flat_map(|(&i, m)| {
            m.iter()
                .filter(move |(&j, _)| i < j)
                .map(move |(&j, &e)| (i, j, e))
        })
    }

    /// Rebuild the graph from snapshot parts: replaces the order set and
    /// adjacency wholesale and re-derives the spatial insert-prune buckets
    /// (when configured) from the restored orders. The pruning *setup*
    /// (grid, cost bound) is configuration, not state — it is kept as
    /// built.
    ///
    /// `edges` must reference orders present in `orders`; the caller
    /// ([`crate::OrderPool::restore`]) validates this.
    pub fn restore_from_parts(
        &mut self,
        orders: Vec<Arc<Order>>,
        edges: &[(OrderId, OrderId, PairEdge)],
    ) {
        self.orders.clear();
        self.adj.clear();
        if let Some(st) = &mut self.spatial {
            st.cells.clear();
            st.latest_start.clear();
        }
        for o in orders {
            if let Some(st) = &mut self.spatial {
                st.track(&o);
            }
            self.orders.insert(o.id, o);
        }
        for &(a, b, e) in edges {
            debug_assert!(
                self.orders.contains_key(&a) && self.orders.contains_key(&b),
                "edge ({a}, {b}) references an unpooled order"
            );
            self.adj.entry(a).or_default().insert(b, e);
            self.adj.entry(b).or_default().insert(a, e);
        }
    }

    /// Orders whose own solo feasibility has lapsed (cannot be served even
    /// alone: `now + direct ≥ deadline`). These must be rejected.
    pub fn dead_orders(&self, now: Ts) -> Vec<OrderId> {
        self.orders
            .values()
            .filter(|o| now + o.direct_cost >= o.deadline)
            .map(|o| o.id)
            .collect()
    }
}

/// Validate one candidate pair: pre-filter, then the pair planner; returns
/// the shareability edge if a live joint route exists.
fn pair_edge<C: TravelBound>(
    a: &Arc<Order>,
    b: &Arc<Order>,
    now: Ts,
    limits: PlanLimits,
    oracle: &C,
) -> Option<PairEdge> {
    if !pair_prefilter(a, b, now, oracle) {
        return None;
    }
    let route = plan_min_cost(&[a.as_ref(), b.as_ref()], now, limits, oracle)?;
    let group = Group::new(vec![Arc::clone(a), Arc::clone(b)], route, oracle);
    let edge = PairEdge {
        expires_at: group.expires_at(oracle),
        route_cost: group.route.cost(),
    };
    (edge.expires_at >= now).then_some(edge)
}

/// Cheap necessary condition for a pair to be shareable, used to avoid
/// running the pair planner against every pooled order.
///
/// Any joint route serving both orders travels at least
/// `min(cost(p_i→p_j), cost(p_j→p_i))` between the two pick-ups, and the
/// order picked up second then still needs its direct leg as a lower bound;
/// if that already busts the second order's deadline in both pick-up orders,
/// the pair is infeasible.
///
/// The check is bound-guided: each arm is first tested against the
/// oracle's [`lower_bound`](TravelBound::lower_bound) (free when ALT
/// landmarks are active, exact on the dense table) and only arms the
/// optimistic bound cannot rule out pay for an exact query. Because the
/// bound is admissible, admission is **identical** to an exact-only filter
/// (`tests/accel.rs` proves it property-wise).
pub fn pair_prefilter<C: TravelBound>(a: &Order, b: &Order, now: Ts, oracle: &C) -> bool {
    let a_solo = now + a.direct_cost < a.deadline;
    let b_solo = now + b.direct_cost < b.deadline;
    // Bound phase: optimistic pick-up legs.
    let a_first_maybe =
        a_solo && now + oracle.lower_bound(a.pickup, b.pickup) + b.direct_cost < b.deadline;
    let b_first_maybe =
        b_solo && now + oracle.lower_bound(b.pickup, a.pickup) + a.direct_cost < a.deadline;
    if !a_first_maybe && !b_first_maybe {
        return false;
    }
    // Exact phase, only for arms the bound could not rule out. Route
    // starting at a's pickup: b picked up after ≥ cost(p_a, p_b) seconds.
    if a_first_maybe && now + oracle.cost(a.pickup, b.pickup) + b.direct_cost < b.deadline {
        return true;
    }
    b_first_maybe && now + oracle.cost(b.pickup, a.pickup) + a.direct_cost < a.deadline
}

#[cfg(test)]
mod tests {
    use super::*;
    use watter_core::{NodeId, TravelCost};

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {}

    fn order(id: u32, p: u32, d: u32, release: Ts, deadline: Ts) -> Order {
        Order {
            id: OrderId(id),
            pickup: NodeId(p),
            dropoff: NodeId(d),
            riders: 1,
            release,
            deadline,
            wait_limit: 300,
            direct_cost: Line.cost(NodeId(p), NodeId(d)),
        }
    }

    fn limits() -> PlanLimits {
        PlanLimits { capacity: 4 }
    }

    #[test]
    fn overlapping_orders_get_an_edge() {
        let mut g = ShareGraph::new();
        g.insert(order(0, 0, 10, 0, 10_000), 0, limits(), &Line);
        let n = g.insert(order(1, 2, 8, 0, 10_000), 0, limits(), &Line);
        assert_eq!(n, vec![OrderId(0)]);
        assert!(g.connected(OrderId(0), OrderId(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn tight_deadlines_prevent_edges() {
        let mut g = ShareGraph::new();
        // Opposite directions with zero slack: can only be served solo.
        g.insert(order(0, 0, 10, 0, 101), 0, limits(), &Line);
        let n = g.insert(order(1, 10, 0, 0, 101), 0, limits(), &Line);
        assert!(n.is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn removal_disconnects() {
        let mut g = ShareGraph::new();
        g.insert(order(0, 0, 10, 0, 10_000), 0, limits(), &Line);
        g.insert(order(1, 2, 8, 0, 10_000), 0, limits(), &Line);
        let touched = g.remove(OrderId(0));
        assert_eq!(touched, vec![OrderId(1)]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.connected(OrderId(0), OrderId(1)));
    }

    #[test]
    fn edges_expire() {
        let mut g = ShareGraph::new();
        // Pair jointly feasible only for a bounded window.
        g.insert(order(0, 0, 10, 0, 200), 0, limits(), &Line);
        g.insert(order(1, 2, 8, 0, 200), 0, limits(), &Line);
        assert_eq!(g.edge_count(), 1);
        let touched = g.expire_edges(150);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(touched.len(), 2);
    }

    #[test]
    fn dead_orders_flagged_when_solo_infeasible() {
        let mut g = ShareGraph::new();
        g.insert(order(0, 0, 10, 0, 200), 0, limits(), &Line); // direct 100
        assert!(g.dead_orders(50).is_empty());
        assert_eq!(g.dead_orders(100), vec![OrderId(0)]);
    }

    #[test]
    fn spatial_insert_matches_full_scan() {
        use watter_core::TravelCost as _;
        use watter_road::{citygen::CityConfig, CostMatrix, GridIndex};
        let g = CityConfig {
            width: 10,
            height: 10,
            ..Default::default()
        }
        .generate(5);
        let oracle = CostMatrix::build(&g);
        let spatial = SpatialPrune::for_graph(&g, GridIndex::build(&g, 6));
        let mut full = ShareGraph::new();
        let mut pruned = ShareGraph::with_spatial(spatial);
        let n = g.node_count() as u32;
        let limits = limits();
        // Deterministic pseudo-random order stream with mixed slacks, so
        // some pairs are admitted, some are prefilter-rejected and some
        // sit in skippable rings.
        let mut now = 0;
        for i in 0..60u32 {
            let p = NodeId((i * 37 + 11) % n);
            let d = NodeId((i * 53 + 29) % n);
            let direct = oracle.cost(p, d);
            if p == d || direct <= 0 {
                continue;
            }
            now += 7;
            let o = Order {
                id: OrderId(i),
                pickup: p,
                dropoff: d,
                riders: 1,
                release: now,
                deadline: now + direct * (1 + i as i64 % 3) + i as i64 % 11,
                wait_limit: direct,
                direct_cost: direct,
            };
            let a = full.insert(o.clone(), now, limits, &oracle);
            let b = pruned.insert(o, now, limits, &oracle);
            assert_eq!(a, b, "insert {i}: neighbour sets diverge");
            if i % 13 == 0 {
                let victim = OrderId(i / 2);
                assert_eq!(full.remove(victim), pruned.remove(victim));
            }
        }
        assert!(full.edge_count() > 0, "test must exercise real edges");
        assert_eq!(full.edge_count(), pruned.edge_count());
        for id in full.order_ids() {
            let fe: Vec<_> = full.neighbors(id).collect();
            let pe: Vec<_> = pruned.neighbors(id).collect();
            assert_eq!(fe, pe, "adjacency of {id} diverges");
        }
    }

    #[test]
    fn edge_expiry_matches_group_slack() {
        let mut g = ShareGraph::new();
        g.insert(order(0, 0, 10, 0, 200), 0, limits(), &Line);
        g.insert(order(1, 2, 8, 0, 500), 0, limits(), &Line);
        let (_, e) = g.neighbors(OrderId(0)).next().unwrap();
        // Optimal pair route p0 p1 d1 d0 costs 100; o0 subroute = 100 →
        // expiry = 200 − 100 − 1 = 99 (o0 is the binding member).
        assert_eq!(e.expires_at, 99);
        assert_eq!(e.route_cost, 100);
    }
}
