//! Contraction-hierarchy (CH) point-query oracle.
//!
//! The ALT oracle made 10⁵-node cities *possible*; its cold queries are
//! still A* searches that settle thousands of nodes, and PR 3 showed those
//! misses dominating the cached large-city hot path. A contraction
//! hierarchy moves that work into preprocessing: nodes are contracted in
//! importance order, shortcut edges preserve shortest-path costs across
//! contracted nodes, and a query becomes a *bidirectional upward* Dijkstra
//! that settles a few hundred nodes regardless of graph size — exact,
//! microsecond-scale answers at 10⁵–10⁶ nodes.
//!
//! # Preprocessing
//!
//! 1. **Node ordering** — a lazy priority queue over the classic
//!    `edge_difference + deleted_neighbors + hierarchy_depth` heuristic:
//!    nodes whose contraction adds few shortcuts (relative to the edges
//!    removed), whose neighborhood is still intact, and who sit low in
//!    the forming hierarchy go first. The depth term
//!    (`1 + max(depth of contracted neighbors)`) is what keeps grid-like
//!    networks tractable — it forces contraction into balanced layers
//!    where pure edge difference, seeing every grid node alike, would
//!    build deep chains with snowballing shortcut fan-out. Priorities are
//!    recomputed lazily on pop (re-inserted when stale), with node id as
//!    the deterministic tie-break.
//! 2. **Shortcut insertion** — contracting `v` adds `u → x` with weight
//!    `w(u,v) + w(v,x)` for every in/out neighbor pair unless a bounded
//!    **witness search** (Dijkstra from `u` avoiding `v`, capped at
//!    [`WITNESS_SETTLE_LIMIT`] settled nodes) already proves a path at most
//!    that long. The search exits as soon as every shortcut target is
//!    settled, and a truncated search errs toward *adding* the shortcut —
//!    never toward dropping one — so limits trade preprocessing time for
//!    a few redundant edges, not correctness.
//! 3. **Upward/downward CSR split** — the final edge set (originals +
//!    shortcuts, deduplicated to minimum weight per arc, then pruned of
//!    strictly dominated arcs by a second witness pass) is split into an
//!    upward graph (arcs into higher-ranked nodes, searched forward from
//!    the source) and a downward graph (arcs into lower-ranked nodes,
//!    stored reversed and searched backward from the target).
//! 4. **Core distance table** — on grid-like networks the bidirectional
//!    upward search space grows like √n (unlike the near-constant top of
//!    motorway hierarchies), so the top [`CORE_SIZE`] ranks become a
//!    *core*: their exact pairwise distances go into a flat table (one
//!    Dijkstra per core node over the core subgraph, which contains the
//!    full remainder graph at that point of the contraction and is
//!    therefore distance-exact). Searches below treat the core as a wall.
//! 5. **Access-node sets** — for every node and direction, a build-time
//!    upward search below the core collects the node's core entry points
//!    `(core index, distance)`. Entries dominated through the table
//!    (`d(a) + T[a→f] ≤ d(f)` for an already-kept `a`) are dropped;
//!    tens of thousands of potential entries shrink to ~20 per node.
//!
//! Initial priorities, core-table rows and access-node sets are
//! embarrassingly parallel and run through the workspace's deterministic
//! fork-join ([`watter_core::Exec`]); the contraction loop itself is
//! sequential, so the hierarchy is bit-identical for every thread count
//! (`tests/oracle.rs` proves it).
//!
//! # Queries
//!
//! `cost(a, b)` on a thread-local, allocation-free workspace
//! (touched-entry reset, same discipline as
//! [`DijkstraWorkspace`](crate::DijkstraWorkspace)):
//!
//! 1. **Access join** — every path whose highest-ranked node lies *in*
//!    the core costs `d(s→f) + T[f→b] + d(b→t)` for some access pair;
//!    both access lists are distance-sorted, so the scan early-exits on
//!    the table's lower bound.
//! 2. **Local phases** — paths whose peak stays *below* the core are
//!    rank-increasing then rank-decreasing and never touch it, so a
//!    bidirectional upward meet over the below-core arc prefix finds
//!    them. Each side runs as goal-directed A* (the admissible geometric
//!    potential `γ · euclid` from [`RoadGraph::min_cost_per_unit_distance`])
//!    with stall-on-demand, pruned by the join bound — for cross-city
//!    pairs the join answer kills the local cones almost immediately.
//!
//! Distances saturate at [`UNREACHABLE`] exactly like every other
//! backend, so adversarial weights cannot wrap and disconnected pairs
//! answer `UNREACHABLE`. Directed (asymmetric) graphs are handled
//! natively — no symmetry fallback is needed.

use crate::dijkstra::UNREACHABLE;
use crate::graph::RoadGraph;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use watter_core::{Dur, Exec, NodeId, TravelBound, TravelCost};

/// Witness searches stop after settling this many nodes. Larger limits
/// find more witnesses (fewer redundant shortcuts, slower preprocessing);
/// smaller limits do the opposite. Correctness never depends on it. The
/// search also stops as soon as every shortcut target is settled, so this
/// backstop only binds on pathologically dense neighborhoods — a limit
/// that is too small poisons the hierarchy (every timeout adds a
/// redundant shortcut, inflating degrees and causing more timeouts).
const WITNESS_SETTLE_LIMIT: usize = 1_500;

/// Weight of the `deleted_neighbors` term in the contraction priority.
/// Keeping contraction spread across the graph (instead of eating one
/// region hole-first) bounds shortcut fan-out on grid-like networks.
const DELETED_NEIGHBOR_WEIGHT: i64 = 1;

/// Weight of the hierarchy-depth term in the contraction priority.
/// `depth[v] = 1 + max(depth of contracted neighbors)` approximates the
/// node's level in the hierarchy; penalizing it contracts the graph in
/// balanced layers instead of deep chains — the decisive quality term on
/// grid-like networks, where pure edge difference sees every node alike.
const DEPTH_WEIGHT: i64 = 4;

/// Upper bound on the distance-table core. The top of the hierarchy is
/// where bidirectional upward searches spend most of their settles on
/// grid-like networks (search space grows like √n with the grid, unlike
/// the near-constant top on motorway networks), so the top `CORE_SIZE`
/// ranks keep their exact pairwise distances in a table and the searches
/// stop at the core boundary instead of climbing through it.
const CORE_SIZE: usize = 2_048;

/// A directed arc of the remaining (uncontracted) graph during
/// preprocessing.
#[derive(Clone, Copy, Debug)]
struct Arc_ {
    other: u32,
    weight: Dur,
}

/// Exact contraction-hierarchy travel-cost oracle.
///
/// Build once per graph ([`ChOracle::build`]); queries are `&self` and run
/// on a thread-local workspace, so one instance serves the parallel
/// dispatch engine without locking.
#[derive(Debug)]
pub struct ChOracle {
    graph: Arc<RoadGraph>,
    /// Contraction rank per node (0 = contracted first / least important).
    rank: Vec<u32>,
    /// Upward graph in *rank space*: CSR over ranks of arcs `u → v` with
    /// `rank[v] > rank[u]`. Rank indexing is a locality optimization:
    /// both search directions spend most of their settles near the top of
    /// the hierarchy, so the hot end of the distance arrays and CSRs is a
    /// contiguous (cache-resident) region instead of nodes scattered
    /// across the id space.
    up: SplitCsr,
    /// Downward graph in rank space, reversed: for each rank `v`, arcs
    /// `u → v` with `rank[u] > rank[v]`, stored as `(u, w)` so the
    /// backward search relaxes them from `v`.
    down: SplitCsr,
    /// First rank inside the distance-table core; ranks `>= core_start`
    /// never relax arcs at query time — the searches record them as entry
    /// points and the table answers the traversal between them.
    core_start: u32,
    /// Row-major `(n - core_start)²` exact pairwise distances between core
    /// nodes (rank space, saturated at [`UNREACHABLE`]).
    core_table: Vec<Dur>,
    /// Forward access nodes per rank: the distance-sorted, domination-pruned
    /// core entry points of the below-core upward cone (`targets` hold core
    /// indices, `weights` exact distances). Precomputing these turns the
    /// core traversal of a query into `|A(s)| · |A(t)|` table lookups.
    fwd_access: SplitCsr,
    /// Backward mirror: access nodes of the reversed-downward cone.
    bwd_access: SplitCsr,
    /// Node coordinates in rank order, for the geometric A* potential of
    /// the local query phases.
    coords: Vec<(f64, f64)>,
    /// [`RoadGraph::min_cost_per_unit_distance`], cached at build.
    gamma: f64,
    /// Shortcut arcs added by preprocessing (diagnostic).
    shortcuts: usize,
}

/// Minimal CSR used for the upward/downward halves. Each node's arc list
/// keeps below-core targets first (`local_end` marks the boundary), so the
/// query's local phases iterate exactly the arcs they may relax.
#[derive(Debug, Default, PartialEq)]
struct SplitCsr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<Dur>,
    local_end: Vec<u32>,
}

impl SplitCsr {
    /// `cs` is the first core rank: targets `>= cs` sort to the back of
    /// each node's list and `local_end` points at the split.
    fn from_arcs(n: usize, mut arcs: Vec<(u32, u32, Dur)>, cs: u32) -> Self {
        arcs.sort_unstable_by_key(|&(from, to, w)| (from, to >= cs, to, w));
        let mut offsets = vec![0u32; n + 1];
        for &(from, _, _) in &arcs {
            offsets[from as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut local_end: Vec<u32> = offsets[..n].to_vec();
        for (i, &(from, to, _)) in arcs.iter().enumerate() {
            if to < cs {
                local_end[from as usize] = i as u32 + 1;
            }
        }
        Self {
            offsets,
            targets: arcs.iter().map(|a| a.1).collect(),
            weights: arcs.iter().map(|a| a.2).collect(),
            local_end,
        }
    }

    #[inline]
    fn arcs(&self, u: u32) -> (&[u32], &[Dur]) {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// The below-core prefix of `arcs(u)`.
    #[inline]
    fn local_arcs(&self, u: u32) -> (&[u32], &[Dur]) {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.local_end[u as usize] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Concatenate per-node entry lists *preserving their order* (unlike
    /// [`SplitCsr::from_arcs`], which sorts by target) — access sets are
    /// distance-sorted and the query's early exit depends on that.
    fn from_sets(sets: Vec<Vec<(u32, Dur)>>) -> Self {
        let mut offsets = vec![0u32; sets.len() + 1];
        for (i, s) in sets.iter().enumerate() {
            offsets[i + 1] = offsets[i] + s.len() as u32;
        }
        Self {
            local_end: offsets[1..].to_vec(),
            targets: sets.iter().flatten().map(|e| e.0).collect(),
            weights: sets.iter().flatten().map(|e| e.1).collect(),
            offsets,
        }
    }
}

/// Reusable scratch for one witness search (bounded Dijkstra).
#[derive(Default)]
struct WitnessWorkspace {
    dist: Vec<Dur>,
    touched: Vec<u32>,
    heap: BinaryHeap<Reverse<(Dur, u32)>>,
    /// Shortcut targets not yet settled; the search stops when empty.
    pending: Vec<u32>,
}

impl WitnessWorkspace {
    fn begin(&mut self, n: usize) {
        for &t in &self.touched {
            self.dist[t as usize] = UNREACHABLE;
        }
        self.touched.clear();
        self.heap.clear();
        if self.dist.len() < n {
            self.dist.resize(n, UNREACHABLE);
        }
    }

    /// Bounded multi-target Dijkstra from `src` over `fwd`, skipping the
    /// node being contracted (`banned`) and stopping once every node in
    /// `targets` is settled, `limit` nodes are settled, or the frontier
    /// exceeds `cap`. Afterwards `self.dist` holds (possibly truncated)
    /// witness distances. The target-settled exit is what keeps large
    /// `limit`s affordable: in a healthy hierarchy the handful of shortcut
    /// endpoints settle after a small local exploration.
    fn search(
        &mut self,
        fwd: &[Vec<Arc_>],
        src: u32,
        banned: u32,
        cap: Dur,
        limit: usize,
        targets: &[u32],
    ) {
        self.begin(fwd.len());
        self.pending.clear();
        self.pending.extend(targets.iter().filter(|&&t| t != src));
        self.dist[src as usize] = 0;
        self.touched.push(src);
        self.heap.push(Reverse((0, src)));
        let mut settled = 0;
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue;
            }
            if let Some(i) = self.pending.iter().position(|&t| t == u) {
                self.pending.swap_remove(i);
                if self.pending.is_empty() {
                    break;
                }
            }
            settled += 1;
            if settled > limit || d > cap {
                break;
            }
            for a in &fwd[u as usize] {
                if a.other == banned {
                    continue;
                }
                let nd = d.saturating_add(a.weight).min(UNREACHABLE);
                if nd < self.dist[a.other as usize] {
                    if self.dist[a.other as usize] >= UNREACHABLE {
                        self.touched.push(a.other);
                    }
                    self.dist[a.other as usize] = nd;
                    self.heap.push(Reverse((nd, a.other)));
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread witness scratch (preprocessing) — initial priorities run
    /// under the fork-join executor, so each thread needs its own.
    static WITNESS: RefCell<WitnessWorkspace> = RefCell::new(WitnessWorkspace::default());
    /// Per-thread query scratch: repeated queries allocate nothing.
    static QUERY: RefCell<ChWorkspace> = RefCell::new(ChWorkspace::default());
}

/// Settle cap for the arc-reduction searches (see [`reduce_arcs`]).
const REDUCTION_SETTLE_LIMIT: usize = 1_000;

/// Remove every arc `u → v` that a *multi-hop* path in the same graph
/// strictly beats. Witness searches only see the remaining graph at
/// contraction time, so shortcuts added late routinely dominate arcs kept
/// early; queries then relax the dominated arcs for nothing. Dropping an
/// arc only when a strictly shorter path exists keeps all distances exact
/// (the witness path survives any removal order), so the pass is safe to
/// run on either search half independently. Returns the arcs removed.
fn reduce_arcs(adj: &mut [Vec<Arc_>], n: usize) -> usize {
    let mut removed = 0;
    for u in 0..n as u32 {
        if adj[u as usize].len() < 2 {
            continue; // a dominating path must start with a different arc
        }
        let targets: Vec<u32> = adj[u as usize].iter().map(|a| a.other).collect();
        let cap = adj[u as usize]
            .iter()
            .map(|a| a.weight)
            .max()
            .unwrap_or(0)
            .min(UNREACHABLE);
        WITNESS.with(|ws| {
            let mut ws = ws.borrow_mut();
            // No banned node: the search may use every arc, including the
            // one under test — `dist[v] < w` then certifies a multi-hop
            // path strictly shorter than the direct arc.
            ws.search(adj, u, u32::MAX, cap, REDUCTION_SETTLE_LIMIT, &targets);
            let before = adj[u as usize].len();
            let dist = &ws.dist;
            adj[u as usize].retain(|a| dist[a.other as usize] >= a.weight);
            removed += before - adj[u as usize].len();
        });
    }
    removed
}

/// The shortcuts contracting `v` would add (`None`) or does add
/// (`Some(sink)`), given the remaining graph. Pure function of
/// `(fwd, bwd, v)` — this is what runs under the fork-join executor.
fn contraction_shortcuts(
    fwd: &[Vec<Arc_>],
    bwd: &[Vec<Arc_>],
    v: u32,
    mut emit: impl FnMut(u32, u32, Dur),
) -> i64 {
    let mut added = 0i64;
    let targets: Vec<u32> = fwd[v as usize].iter().map(|out| out.other).collect();
    for inc in &bwd[v as usize] {
        let u = inc.other;
        // Cap the witness search at the worst chain through v.
        let cap = fwd[v as usize]
            .iter()
            .map(|out| inc.weight.saturating_add(out.weight))
            .max()
            .unwrap_or(0)
            .min(UNREACHABLE);
        WITNESS.with(|ws| {
            let mut ws = ws.borrow_mut();
            ws.search(fwd, u, v, cap, WITNESS_SETTLE_LIMIT, &targets);
            for out in &fwd[v as usize] {
                let x = out.other;
                if x == u {
                    continue;
                }
                let via = inc.weight.saturating_add(out.weight).min(UNREACHABLE);
                if via >= UNREACHABLE {
                    continue; // indistinguishable from no path
                }
                if ws.dist[x as usize] <= via {
                    continue; // witness found: shortcut redundant
                }
                added += 1;
                emit(u, x, via);
            }
        });
    }
    added
}

/// Contraction priority of `v`: shortcuts added minus arcs removed, plus
/// the deleted-neighbors term that spreads contraction uniformly and the
/// depth term that keeps the hierarchy in balanced layers.
fn priority(fwd: &[Vec<Arc_>], bwd: &[Vec<Arc_>], v: u32, deleted: i64, depth: i64) -> i64 {
    let removed = (fwd[v as usize].len() + bwd[v as usize].len()) as i64;
    let added = contraction_shortcuts(fwd, bwd, v, |_, _, _| {});
    added - removed + DELETED_NEIGHBOR_WEIGHT * deleted + DEPTH_WEIGHT * depth
}

impl ChOracle {
    /// Preprocess `graph` into a contraction hierarchy, sequentially.
    pub fn build(graph: Arc<RoadGraph>) -> Self {
        Self::build_with_exec(graph, &Exec::sequential())
    }

    /// Preprocess with initial priorities computed on `exec`'s fork-join
    /// threads. The hierarchy is bit-identical for every thread count: the
    /// parallel stage is a pure order-preserving map, and the contraction
    /// loop is sequential with deterministic tie-breaks.
    pub fn build_with_exec(graph: Arc<RoadGraph>, exec: &Exec) -> Self {
        let n = graph.node_count();

        // Working adjacency of the *remaining* graph, deduplicated to the
        // minimum weight per arc (parallel arcs never matter for shortest
        // paths). Contracted nodes are disconnected as we go.
        let mut fwd: Vec<Vec<Arc_>> = vec![Vec::new(); n];
        let mut bwd: Vec<Vec<Arc_>> = vec![Vec::new(); n];
        for u in graph.nodes() {
            let (targets, weights) = graph.out_edges(u);
            let mut last: Option<u32> = None;
            for (&v, &w) in targets.iter().zip(weights) {
                if v == u.0 {
                    continue; // self loops are never on a shortest path
                }
                // out_edges is sorted by target, so duplicates are runs;
                // the first of a run has the minimum weight only if sorted
                // by weight too — compare explicitly instead.
                if last == Some(v) {
                    if let Some(a) = fwd[u.0 as usize].last_mut() {
                        if w < a.weight {
                            a.weight = w;
                            if let Some(b) = bwd[v as usize].last_mut() {
                                b.weight = w;
                            }
                        }
                    }
                    continue;
                }
                last = Some(v);
                fwd[u.0 as usize].push(Arc_ {
                    other: v,
                    weight: w,
                });
                bwd[v as usize].push(Arc_ {
                    other: u.0,
                    weight: w,
                });
            }
        }

        // Original (deduplicated) arcs, later merged with shortcuts.
        let mut all_arcs: Vec<(u32, u32, Dur)> = Vec::new();
        for u in 0..n as u32 {
            for a in &fwd[u as usize] {
                all_arcs.push((u, a.other, a.weight));
            }
        }

        // Initial priorities: pure per-node work, fanned out deterministically.
        let init: Vec<i64> = exec.map_indexed(n, |v| priority(&fwd, &bwd, v as u32, 0, 0));
        let mut heap: BinaryHeap<Reverse<(i64, u32)>> = (0..n as u32)
            .map(|v| Reverse((init[v as usize], v)))
            .collect();

        let mut rank = vec![0u32; n];
        let mut deleted = vec![0i64; n];
        let mut depth = vec![0i64; n];
        let mut contracted = vec![false; n];
        let mut shortcuts: Vec<(u32, u32, Dur)> = Vec::new();
        let mut next_rank = 0u32;

        while let Some(Reverse((p, v))) = heap.pop() {
            if contracted[v as usize] {
                continue;
            }
            // Lazy update: recompute; if the node no longer wins, requeue.
            let fresh = priority(&fwd, &bwd, v, deleted[v as usize], depth[v as usize]);
            if fresh > p {
                if let Some(&Reverse((top, _))) = heap.peek() {
                    if fresh > top {
                        heap.push(Reverse((fresh, v)));
                        continue;
                    }
                }
            }

            // Contract v: materialize its shortcuts into the remaining
            // graph and the final arc set, then disconnect it.
            let mut new_arcs: Vec<(u32, u32, Dur)> = Vec::new();
            contraction_shortcuts(&fwd, &bwd, v, |u, x, w| new_arcs.push((u, x, w)));
            for &(u, x, w) in &new_arcs {
                // Keep the remaining graph deduplicated: tighten an
                // existing arc in place, insert otherwise.
                match fwd[u as usize].iter_mut().find(|a| a.other == x) {
                    Some(a) if a.weight <= w => {}
                    Some(a) => {
                        a.weight = w;
                        if let Some(b) = bwd[x as usize].iter_mut().find(|a| a.other == u) {
                            b.weight = w;
                        }
                    }
                    None => {
                        fwd[u as usize].push(Arc_ {
                            other: x,
                            weight: w,
                        });
                        bwd[x as usize].push(Arc_ {
                            other: u,
                            weight: w,
                        });
                    }
                }
                shortcuts.push((u, x, w));
            }

            // Disconnect v; bump the deleted-neighbors and depth terms of
            // its (still uncontracted) neighborhood.
            let out = std::mem::take(&mut fwd[v as usize]);
            for a in &out {
                bwd[a.other as usize].retain(|b| b.other != v);
                deleted[a.other as usize] += 1;
                depth[a.other as usize] = depth[a.other as usize].max(depth[v as usize] + 1);
            }
            let inc = std::mem::take(&mut bwd[v as usize]);
            for a in &inc {
                fwd[a.other as usize].retain(|b| b.other != v);
                deleted[a.other as usize] += 1;
                depth[a.other as usize] = depth[a.other as usize].max(depth[v as usize] + 1);
            }

            contracted[v as usize] = true;
            rank[v as usize] = next_rank;
            next_rank += 1;
        }

        // Final arc set: originals + shortcuts, minimum weight per arc.
        let shortcut_count = shortcuts.len();
        all_arcs.extend(shortcuts);
        all_arcs.sort_unstable_by_key(|&(u, v, w)| (u, v, w));
        all_arcs.dedup_by_key(|&mut (u, v, _)| (u, v));

        let core_len = CORE_SIZE.min(n / 4);
        let core_start = (n - core_len) as u32;
        let mut up_adj: Vec<Vec<Arc_>> = vec![Vec::new(); n];
        let mut down_adj: Vec<Vec<Arc_>> = vec![Vec::new(); n];
        for &(u, v, w) in &all_arcs {
            let (ru, rv) = (rank[u as usize], rank[v as usize]);
            if rv > ru {
                up_adj[ru as usize].push(Arc_ {
                    other: rv,
                    weight: w,
                });
            } else {
                // Reversed: the backward search relaxes (v ← u) from v.
                down_adj[rv as usize].push(Arc_ {
                    other: ru,
                    weight: w,
                });
            }
        }

        // Arc reduction: late shortcuts dominate early arcs; prune them so
        // queries never relax an arc a shorter multi-hop path beats.
        reduce_arcs(&mut up_adj, n);
        reduce_arcs(&mut down_adj, n);

        // Distance-table core. The arcs among the top `core_len` ranks are
        // a superset of the remaining graph at the moment every lower node
        // had been contracted, so shortest paths inside that subgraph equal
        // full-graph distances between core nodes (the contraction
        // invariant); one full Dijkstra per core node — fanned out on the
        // executor, order-preserving, so still deterministic — fills the
        // table. `n / 4` keeps small graphs honest: even unit tests cross
        // the core code path instead of leaving it to metropolis runs.
        let mut core_adj: Vec<Vec<Arc_>> = vec![Vec::new(); core_len];
        for u in core_start..n as u32 {
            for a in &up_adj[u as usize] {
                core_adj[(u - core_start) as usize].push(Arc_ {
                    other: a.other - core_start,
                    weight: a.weight,
                });
            }
            // `down_adj[u]` stores the real arc `a.other → u` reversed.
            for a in &down_adj[u as usize] {
                core_adj[(a.other - core_start) as usize].push(Arc_ {
                    other: u - core_start,
                    weight: a.weight,
                });
            }
        }
        let core_table: Vec<Dur> = exec
            .map_indexed(core_len, |i| {
                WITNESS.with(|ws| {
                    let mut ws = ws.borrow_mut();
                    ws.search(&core_adj, i as u32, u32::MAX, UNREACHABLE, usize::MAX, &[]);
                    ws.dist[..core_len].to_vec()
                })
            })
            .into_iter()
            .flatten()
            .collect();

        let collect = |adj: &[Vec<Arc_>]| -> Vec<(u32, u32, Dur)> {
            adj.iter()
                .enumerate()
                .flat_map(|(u, arcs)| arcs.iter().map(move |a| (u as u32, a.other, a.weight)))
                .collect()
        };
        let up = SplitCsr::from_arcs(n, collect(&up_adj), core_start);
        let down = SplitCsr::from_arcs(n, collect(&down_adj), core_start);

        // Access-node sets: one exhaustive below-core cone per rank and
        // direction, reduced to the entries no other entry dominates
        // through the table. Another order-preserving fan-out, so the
        // whole structure stays bit-identical across thread counts.
        let access = |forward: bool| -> SplitCsr {
            let (climb, stall) = if forward { (&up, &down) } else { (&down, &up) };
            SplitCsr::from_sets(exec.map_indexed(n, |r| {
                QUERY.with(|ws| {
                    ws.borrow_mut().collect_access(
                        climb,
                        stall,
                        n,
                        core_start,
                        core_len,
                        &core_table,
                        r as u32,
                        forward,
                    )
                })
            }))
        };
        let fwd_access = access(true);
        let bwd_access = access(false);

        let mut coords = vec![(0.0, 0.0); n];
        for (v, &c) in graph.coords().iter().enumerate() {
            coords[rank[v] as usize] = c;
        }
        let gamma = graph.min_cost_per_unit_distance();

        Self {
            rank,
            up,
            down,
            core_start,
            core_table,
            fwd_access,
            bwd_access,
            coords,
            gamma,
            shortcuts: shortcut_count,
            graph,
        }
    }

    /// The underlying road graph.
    pub fn graph(&self) -> &Arc<RoadGraph> {
        &self.graph
    }

    /// Shortcut arcs added by preprocessing.
    pub fn shortcut_count(&self) -> usize {
        self.shortcuts
    }

    /// Contraction rank of a node (0 = contracted first).
    pub fn rank(&self, n: NodeId) -> u32 {
        self.rank[n.index()]
    }

    /// Resident bytes of the search structure (both CSR halves + ranks).
    pub fn resident_bytes(&self) -> usize {
        let csr = |c: &SplitCsr| {
            c.offsets.len() * 4 + c.targets.len() * 4 + c.weights.len() * std::mem::size_of::<Dur>()
        };
        csr(&self.up)
            + csr(&self.down)
            + csr(&self.fwd_access)
            + csr(&self.bwd_access)
            + self.rank.len() * 4
            + self.core_table.len() * std::mem::size_of::<Dur>()
            + self.coords.len() * std::mem::size_of::<(f64, f64)>()
    }

    /// Admissible geometric lower bound on the travel cost between two
    /// ranks: `γ · euclid`, shaved by a relative and absolute margin so
    /// float rounding can never push it above the true cost (see
    /// [`RoadGraph::min_cost_per_unit_distance`] for why the bound holds).
    #[inline]
    fn geo_bound(&self, u: u32, to: (f64, f64)) -> Dur {
        let (x, y) = self.coords[u as usize];
        let (dx, dy) = (x - to.0, y - to.1);
        let b = (dx * dx + dy * dy).sqrt() * self.gamma;
        if b.is_finite() && b < UNREACHABLE as f64 {
            (((b * (1.0 - 1e-9)).floor() as Dur) - 1).max(0)
        } else {
            UNREACHABLE
        }
    }

    /// Whether `b` is reachable from `a`.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        self.cost(a, b) < UNREACHABLE
    }

    /// Query + search-space diagnostics `(cost, settled, relaxed, stalled)`.
    #[doc(hidden)]
    pub fn cost_with_stats(&self, a: NodeId, b: NodeId) -> (Dur, [usize; 5]) {
        QUERY.with(|ws| {
            let mut ws = ws.borrow_mut();
            ws.settled = 0;
            ws.relaxed = 0;
            ws.stalled = 0;
            ws.scanned = 0;
            ws.entries = 0;
            let c = ws.search(self, a, b);
            (
                c,
                [ws.settled, ws.relaxed, ws.stalled, ws.scanned, ws.entries],
            )
        })
    }

    /// Structural fingerprint for determinism tests: every query-relevant
    /// component, so two bit-identical hierarchies compare equal.
    pub fn same_hierarchy(&self, other: &ChOracle) -> bool {
        self.rank == other.rank
            && self.up == other.up
            && self.down == other.down
            && self.core_start == other.core_start
            && self.core_table == other.core_table
            && self.fwd_access == other.fwd_access
            && self.bwd_access == other.bwd_access
            && self.coords == other.coords
            && self.gamma == other.gamma
            && self.shortcuts == other.shortcuts
    }
}

/// Reusable bidirectional upward-search state.
#[derive(Default)]
struct ChWorkspace {
    dist_f: Vec<Dur>,
    dist_b: Vec<Dur>,
    touched_f: Vec<u32>,
    touched_b: Vec<u32>,
    heap_f: BinaryHeap<Reverse<(Dur, Dur, u32)>>,
    heap_b: BinaryHeap<Reverse<(Dur, Dur, u32)>>,
    settled: usize,
    relaxed: usize,
    stalled: usize,
    scanned: usize,
    entries: usize,
}

impl ChWorkspace {
    fn begin(&mut self, n: usize) {
        for &t in &self.touched_f {
            self.dist_f[t as usize] = UNREACHABLE;
        }
        for &t in &self.touched_b {
            self.dist_b[t as usize] = UNREACHABLE;
        }
        self.touched_f.clear();
        self.touched_b.clear();
        self.heap_f.clear();
        self.heap_b.clear();
        if self.dist_f.len() < n {
            self.dist_f.resize(n, UNREACHABLE);
            self.dist_b.resize(n, UNREACHABLE);
        }
    }

    /// The below-core upward cone from `start` (in rank space): an
    /// exhaustive stalled Dijkstra over `climb` that treats the core as a
    /// wall, collected into the distance-sorted core entry list and pruned
    /// to the access nodes — entries no kept entry reaches more cheaply
    /// through the table (domination is transitive, so checking against
    /// the kept prefix suffices).
    #[allow(clippy::too_many_arguments)]
    fn collect_access(
        &mut self,
        climb: &SplitCsr,
        stall: &SplitCsr,
        n: usize,
        cs: u32,
        k: usize,
        table: &[Dur],
        start: u32,
        forward: bool,
    ) -> Vec<(u32, Dur)> {
        self.begin(n);
        self.dist_f[start as usize] = 0;
        self.touched_f.push(start);
        self.heap_f.push(Reverse((0, 0, start)));
        let mut entries: Vec<(u32, Dur)> = Vec::new();
        while let Some(Reverse((_, d, u))) = self.heap_f.pop() {
            if d > self.dist_f[u as usize] {
                continue;
            }
            if u >= cs {
                entries.push((u - cs, d));
                continue;
            }
            let (stall_n, stall_w) = stall.arcs(u);
            if stall_n
                .iter()
                .zip(stall_w)
                .any(|(&w_node, &w)| self.dist_f[w_node as usize].saturating_add(w) < d)
            {
                continue;
            }
            let (targets, weights) = climb.arcs(u);
            for (&v, &w) in targets.iter().zip(weights) {
                let nd = d.saturating_add(w).min(UNREACHABLE);
                if nd < self.dist_f[v as usize] {
                    if self.dist_f[v as usize] >= UNREACHABLE {
                        self.touched_f.push(v);
                    }
                    self.dist_f[v as usize] = nd;
                    self.heap_f.push(Reverse((nd, nd, v)));
                }
            }
        }
        entries.sort_unstable_by_key(|&(i, d)| (d, i));
        let mut kept: Vec<(u32, Dur)> = Vec::new();
        'entry: for &(f, df) in &entries {
            for &(a, da) in &kept {
                // Forward: s → a, then core path a → f. Backward entries
                // carry tail distances, so the core path runs f-ward:
                // f → a, then a → t.
                let t = if forward {
                    table[a as usize * k + f as usize]
                } else {
                    table[f as usize * k + a as usize]
                };
                if da.saturating_add(t) <= df {
                    continue 'entry;
                }
            }
            kept.push((f, df));
        }
        kept
    }

    fn search(&mut self, ch: &ChOracle, src: NodeId, dst: NodeId) -> Dur {
        let n = ch.rank.len();
        self.begin(n);
        // The whole search runs in rank space (see `ChOracle::up`).
        let cs = ch.core_start;
        let k = n - cs as usize;
        let (rs, rd) = (ch.rank[src.index()], ch.rank[dst.index()]);
        let mut best = if src == dst { 0 } else { UNREACHABLE };

        // Access join first: every path through the core is the cheapest
        // `s → f (access), f → b (table), b → t (access)` combination.
        // Both sets are distance-sorted, so the running best bounds both
        // loops (the table term is non-negative).
        let (af_n, af_d) = ch.fwd_access.arcs(rs);
        let (ab_n, ab_d) = ch.bwd_access.arcs(rd);
        self.entries += af_n.len() + ab_n.len();
        if let Some(&db_min) = ab_d.first() {
            for (&f, &df) in af_n.iter().zip(af_d) {
                if df.saturating_add(db_min) >= best {
                    break;
                }
                let row = &ch.core_table[f as usize * k..(f as usize + 1) * k];
                for (&b, &db) in ab_n.iter().zip(ab_d) {
                    if df.saturating_add(db) >= best {
                        break;
                    }
                    self.scanned += 1;
                    let cand = df
                        .saturating_add(row[b as usize])
                        .saturating_add(db)
                        .min(UNREACHABLE);
                    best = best.min(cand);
                }
            }
        }

        // Local phases cover paths whose peak lies below the core — an
        // up-path is rank-increasing, so such paths never touch it and the
        // classic bidirectional meet finds them. The core is a wall here
        // (never relaxed into); `best` from the join is a valid upper
        // bound, so both directions prune on it. Each phase runs as an A*
        // toward the far endpoint: the geometric potential is consistent,
        // so labels are final when settled, and a frontier whose `f`
        // reaches `best` cannot complete any cheaper below-core path —
        // for cross-city pairs the join bound kills the cone almost
        // immediately. Backward first: its distances must be final before
        // the forward meet checks.
        let to_src = ch.coords[rs as usize];
        let to_dst = ch.coords[rd as usize];
        self.dist_b[rd as usize] = 0;
        self.touched_b.push(rd);
        self.heap_b.push(Reverse((ch.geo_bound(rd, to_src), 0, rd)));
        while let Some(Reverse((f, d, u))) = self.heap_b.pop() {
            if f >= best {
                break;
            }
            if d > self.dist_b[u as usize] || u >= cs {
                continue;
            }
            self.settled += 1;
            // Stall-on-demand: a cheaper u → t tail through an *upward*
            // arc u → w dominates this label; relaxing it only floods the
            // hierarchy. (u still counts as a meet point; that is valid.)
            // Core neighbours never carry finite local distances (relaxation
            // stays below the wall), so the below-core prefix suffices.
            let (stall_tgts, stall_ws) = ch.up.local_arcs(u);
            let stalled = stall_tgts
                .iter()
                .zip(stall_ws)
                .any(|(&w_node, &w)| self.dist_b[w_node as usize].saturating_add(w) < d);
            if stalled {
                self.stalled += 1;
                continue;
            }
            let (targets, weights) = ch.down.local_arcs(u);
            for (&v, &w) in targets.iter().zip(weights) {
                self.relaxed += 1;
                let nd = d.saturating_add(w).min(UNREACHABLE);
                if nd < self.dist_b[v as usize] {
                    if self.dist_b[v as usize] >= UNREACHABLE {
                        self.touched_b.push(v);
                    }
                    self.dist_b[v as usize] = nd;
                    let nf = nd.saturating_add(ch.geo_bound(v, to_src));
                    if nf < best {
                        self.heap_b.push(Reverse((nf, nd, v)));
                    }
                }
            }
        }

        // Forward phase, with meet checks against the final backward
        // distances. Any candidate through a popped label costs at least
        // that label, so `d >= best` ends the search.
        self.dist_f[rs as usize] = 0;
        self.touched_f.push(rs);
        self.heap_f.push(Reverse((ch.geo_bound(rs, to_dst), 0, rs)));
        while let Some(Reverse((f, d, u))) = self.heap_f.pop() {
            if f >= best {
                break;
            }
            if d > self.dist_f[u as usize] || u >= cs {
                continue;
            }
            self.settled += 1;
            let meet = d.saturating_add(self.dist_b[u as usize]).min(UNREACHABLE);
            best = best.min(meet);
            // Mirror image of the backward stall: a higher-ranked w that
            // reaches u more cheaply through a *downward* arc w → u
            // (again only below-core w can hold a finite distance).
            let (stall_srcs, stall_ws) = ch.down.local_arcs(u);
            let stalled = stall_srcs
                .iter()
                .zip(stall_ws)
                .any(|(&w_node, &w)| self.dist_f[w_node as usize].saturating_add(w) < d);
            if stalled {
                self.stalled += 1;
                continue;
            }
            let (targets, weights) = ch.up.local_arcs(u);
            for (&v, &w) in targets.iter().zip(weights) {
                self.relaxed += 1;
                let nd = d.saturating_add(w).min(UNREACHABLE);
                if nd < self.dist_f[v as usize] {
                    if self.dist_f[v as usize] >= UNREACHABLE {
                        self.touched_f.push(v);
                    }
                    self.dist_f[v as usize] = nd;
                    let nf = nd.saturating_add(ch.geo_bound(v, to_dst));
                    if nf < best {
                        self.heap_f.push(Reverse((nf, nd, v)));
                    }
                }
            }
        }
        best.min(UNREACHABLE)
    }
}

impl TravelCost for ChOracle {
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        if a == b {
            return 0;
        }
        QUERY.with(|ws| ws.borrow_mut().search(self, a, b))
    }
}

impl TravelBound for ChOracle {
    /// CH queries are exact and microsecond-scale, so — like the dense
    /// table — the tightest admissible bound *is* the cost itself.
    #[inline]
    fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        self.cost(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::CityConfig;
    use crate::dijkstra::DijkstraOracle;
    use crate::graph::Edge;
    use crate::matrix::CostMatrix;

    fn city(w: usize, h: usize, seed: u64) -> Arc<RoadGraph> {
        Arc::new(
            CityConfig {
                width: w,
                height: h,
                ..Default::default()
            }
            .generate(seed),
        )
    }

    #[test]
    fn matches_dense_table_on_all_pairs() {
        let g = city(8, 7, 3);
        let dense = CostMatrix::build(&g);
        let ch = ChOracle::build(g.clone());
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(ch.cost(a, b), dense.cost(a, b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_disconnected_graph() {
        let coords = (0..6).map(|i| (i as f64, 0.0)).collect();
        let e = |a: u32, b: u32, t: i64| Edge {
            from: NodeId(a),
            to: NodeId(b),
            travel: t,
        };
        let g = Arc::new(RoadGraph::from_undirected_edges(
            coords,
            vec![e(0, 1, 5), e(1, 2, 7), e(3, 4, 11), e(4, 5, 2)],
        ));
        let ch = ChOracle::build(g.clone());
        let dij = DijkstraOracle::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(ch.cost(a, b), dij.cost(a, b), "{a} -> {b}");
            }
        }
        assert!(!ch.reachable(NodeId(0), NodeId(3)));
        assert!(ch.reachable(NodeId(3), NodeId(5)));
    }

    #[test]
    fn handles_directed_one_way_streets() {
        // 0 → 1 → 2 cheap chain, slow direct 0 → 2, nothing back.
        let g = Arc::new(RoadGraph::from_edges(
            vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)],
            vec![
                Edge {
                    from: NodeId(0),
                    to: NodeId(1),
                    travel: 3,
                },
                Edge {
                    from: NodeId(1),
                    to: NodeId(2),
                    travel: 4,
                },
                Edge {
                    from: NodeId(0),
                    to: NodeId(2),
                    travel: 20,
                },
            ],
        ));
        let ch = ChOracle::build(g.clone());
        let dij = DijkstraOracle::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(ch.cost(a, b), dij.cost(a, b), "{a} -> {b}");
            }
        }
        assert_eq!(ch.cost(NodeId(0), NodeId(2)), 7);
        assert!(!ch.reachable(NodeId(2), NodeId(0)));
    }

    #[test]
    fn parallel_and_duplicate_edges_keep_minimum() {
        let e = |a: u32, b: u32, t: i64| Edge {
            from: NodeId(a),
            to: NodeId(b),
            travel: t,
        };
        // Duplicate arcs with different weights plus a self loop.
        let g = Arc::new(RoadGraph::from_edges(
            vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)],
            vec![
                e(0, 1, 9),
                e(0, 1, 4),
                e(1, 1, 1),
                e(1, 2, 6),
                e(1, 2, 8),
                e(2, 0, 5),
            ],
        ));
        let ch = ChOracle::build(g.clone());
        let dij = DijkstraOracle::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(ch.cost(a, b), dij.cost(a, b), "{a} -> {b}");
            }
        }
        assert_eq!(ch.cost(NodeId(0), NodeId(2)), 10);
    }

    #[test]
    fn adversarial_weights_saturate() {
        let coords = (0..3).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..2)
            .map(|i| Edge {
                from: NodeId(i),
                to: NodeId(i + 1),
                travel: Dur::MAX / 3,
            })
            .collect();
        let g = Arc::new(RoadGraph::from_undirected_edges(coords, edges));
        let ch = ChOracle::build(g.clone());
        for a in g.nodes() {
            for b in g.nodes() {
                let d = ch.cost(a, b);
                assert!((0..=UNREACHABLE).contains(&d), "{a} -> {b} = {d}");
            }
        }
        assert_eq!(ch.cost(NodeId(0), NodeId(2)), UNREACHABLE);
    }

    #[test]
    fn preprocessing_is_deterministic_across_thread_counts() {
        let g = city(9, 8, 11);
        let base = ChOracle::build_with_exec(g.clone(), &Exec::new(1));
        for threads in [2, 3, 8] {
            let other = ChOracle::build_with_exec(g.clone(), &Exec::new(threads));
            assert!(
                base.same_hierarchy(&other),
                "hierarchy differs at {threads} threads"
            );
        }
    }

    #[test]
    fn ranks_are_a_permutation() {
        let g = city(6, 6, 2);
        let ch = ChOracle::build(g.clone());
        let mut seen = vec![false; g.node_count()];
        for v in g.nodes() {
            let r = ch.rank(v) as usize;
            assert!(!seen[r], "duplicate rank {r}");
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(ch.resident_bytes() > 0);
    }

    #[test]
    fn exact_lower_bound_like_dense() {
        let g = city(5, 5, 4);
        let ch = ChOracle::build(g.clone());
        for a in g.nodes().take(6) {
            for b in g.nodes().take(6) {
                assert_eq!(ch.lower_bound(a, b), ch.cost(a, b));
            }
        }
    }

    #[test]
    fn single_node_graph() {
        let g = Arc::new(RoadGraph::from_edges(vec![(0.0, 0.0)], vec![]));
        let ch = ChOracle::build(g);
        assert_eq!(ch.cost(NodeId(0), NodeId(0)), 0);
        assert!(ch.reachable(NodeId(0), NodeId(0)));
        assert_eq!(ch.shortcut_count(), 0);
    }
}
