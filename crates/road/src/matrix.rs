//! All-pairs shortest-path cost table.
//!
//! The WATTER pipeline issues millions of `cost(a, b)` queries (route
//! planning alone does several per candidate permutation), so for the
//! city-scale graphs used here (10³–10⁴ nodes) an exact table built by `n`
//! Dijkstra sweeps is both the fastest and the simplest oracle. Memory is
//! `n² × 4` bytes thanks to a `u32` compression of the second dimension;
//! beyond [`watter_core::DENSE_NODE_LIMIT`] nodes use
//! [`crate::AltOracle`] instead.
//!
//! Construction parallelizes across source nodes: each worker thread owns a
//! [`DijkstraWorkspace`] and fills a disjoint contiguous block of rows, so
//! the result is bit-identical for any thread count.

use crate::dijkstra::UNREACHABLE;
use crate::graph::RoadGraph;
use crate::workspace::DijkstraWorkspace;
use watter_core::{Dur, NodeId, TravelBound, TravelCost};

/// Dense all-pairs travel-time table implementing [`TravelCost`] in O(1).
#[derive(Clone, Debug)]
pub struct CostMatrix {
    n: usize,
    /// Row-major distances, `u32::MAX` marking unreachable pairs.
    data: Vec<u32>,
}

impl CostMatrix {
    /// Build the table with `n` Dijkstra sweeps, parallelized across all
    /// available cores.
    ///
    /// # Panics
    /// Panics if any finite distance exceeds `u32::MAX − 1` seconds (no
    /// realistic city does).
    pub fn build(graph: &RoadGraph) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
        Self::build_with_threads(graph, threads)
    }

    /// Single-threaded build — the baseline the parallel build is benched
    /// against, and the cheapest option for tiny graphs.
    pub fn build_serial(graph: &RoadGraph) -> Self {
        let n = graph.node_count();
        let mut data = vec![u32::MAX; n * n];
        let mut ws = DijkstraWorkspace::new(n);
        fill_rows(graph, 0, &mut data, &mut ws);
        Self { n, data }
    }

    /// Build with an explicit worker-thread count. Rows are split into
    /// `threads` contiguous blocks, one scoped thread each; every thread
    /// reuses one [`DijkstraWorkspace`] across its sweeps. Results are
    /// bit-identical for any `threads`.
    pub fn build_with_threads(graph: &RoadGraph, threads: usize) -> Self {
        let n = graph.node_count();
        let threads = threads.clamp(1, n.max(1));
        if threads <= 1 || n == 0 {
            return Self::build_serial(graph);
        }
        let mut data = vec![u32::MAX; n * n];
        let rows_per = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk, first_row) in data.chunks_mut(rows_per * n).zip((0..n).step_by(rows_per)) {
                scope.spawn(move || {
                    let mut ws = DijkstraWorkspace::new(n);
                    fill_rows(graph, first_row, chunk, &mut ws);
                });
            }
        });
        Self { n, data }
    }

    /// Number of nodes covered.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Whether `b` is reachable from `a`.
    #[inline]
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        self.data[a.index() * self.n + b.index()] != u32::MAX
    }

    /// The largest finite pairwise distance (the graph "diameter" in
    /// travel-time terms). Useful for calibrating deadlines in workloads.
    pub fn max_finite(&self) -> Dur {
        self.data
            .iter()
            .filter(|&&d| d != u32::MAX)
            .map(|&d| d as Dur)
            .max()
            .unwrap_or(0)
    }

    /// Mean finite pairwise distance, excluding the zero diagonal.
    pub fn mean_finite(&self) -> f64 {
        let mut sum = 0f64;
        let mut count = 0u64;
        for (i, &d) in self.data.iter().enumerate() {
            if d != u32::MAX && i / self.n != i % self.n {
                sum += d as f64;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

/// Fill `rows` (a whole-row-aligned block starting at `first_row`) with
/// compressed distances from consecutive source nodes.
fn fill_rows(graph: &RoadGraph, first_row: usize, rows: &mut [u32], ws: &mut DijkstraWorkspace) {
    let n = graph.node_count();
    if n == 0 {
        return;
    }
    for (r, row) in rows.chunks_mut(n).enumerate() {
        let src = NodeId((first_row + r) as u32);
        let dist = ws.single_source(graph, src);
        for (cell, &d) in row.iter_mut().zip(dist) {
            *cell = if d >= UNREACHABLE {
                u32::MAX
            } else {
                u32::try_from(d).expect("distance exceeds u32 seconds")
            };
        }
    }
}

impl TravelCost for CostMatrix {
    #[inline]
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        let d = self.data[a.index() * self.n + b.index()];
        if d == u32::MAX {
            UNREACHABLE
        } else {
            d as Dur
        }
    }
}

impl TravelBound for CostMatrix {
    /// The tightest possible bound: the exact cost, still O(1). Bound-first
    /// filters therefore behave exactly like their exact predecessors on
    /// the dense backend.
    #[inline]
    fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        self.cost(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::DijkstraOracle;
    use crate::graph::Edge;

    fn ring(n: u32) -> RoadGraph {
        let coords = (0..n).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..n)
            .map(|i| Edge {
                from: NodeId(i),
                to: NodeId((i + 1) % n),
                travel: 3,
            })
            .collect();
        RoadGraph::from_undirected_edges(coords, edges)
    }

    #[test]
    fn matrix_matches_dijkstra() {
        let g = ring(8);
        let m = CostMatrix::build(&g);
        let d = DijkstraOracle::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(m.cost(a, b), d.cost(a, b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial_bit_for_bit() {
        let city = crate::citygen::CityConfig {
            width: 9,
            height: 7,
            ..Default::default()
        }
        .generate(11);
        let serial = CostMatrix::build_serial(&city);
        // Uneven row splits, more threads than rows, and the auto path.
        for threads in [2, 3, 5, 64] {
            let par = CostMatrix::build_with_threads(&city, threads);
            for a in city.nodes() {
                for b in city.nodes() {
                    assert_eq!(
                        par.cost(a, b),
                        serial.cost(a, b),
                        "{threads} threads {a}->{b}"
                    );
                }
            }
        }
        let auto = CostMatrix::build(&city);
        assert_eq!(auto.max_finite(), serial.max_finite());
        assert!((auto.mean_finite() - serial.mean_finite()).abs() < 1e-12);
    }

    #[test]
    fn ring_wraps_around() {
        let g = ring(8);
        let m = CostMatrix::build(&g);
        // 0 -> 5 is shorter going backwards: 3 hops × 3 s.
        assert_eq!(m.cost(NodeId(0), NodeId(5)), 9);
        assert_eq!(m.max_finite(), 12); // 4 hops max
    }

    #[test]
    fn unreachable_pairs_flagged() {
        let g = RoadGraph::from_edges(vec![(0.0, 0.0), (1.0, 1.0)], vec![]);
        let m = CostMatrix::build(&g);
        assert!(!m.reachable(NodeId(0), NodeId(1)));
        assert!(m.reachable(NodeId(0), NodeId(0)));
        assert_eq!(m.cost(NodeId(0), NodeId(1)), UNREACHABLE);
    }

    #[test]
    fn disconnected_components_stay_isolated() {
        // Two components: a 3-node path {0,1,2} and a 2-node path {3,4}.
        let coords = vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (10.0, 0.0), (11.0, 0.0)];
        let e = |a: u32, b: u32, travel: Dur| Edge {
            from: NodeId(a),
            to: NodeId(b),
            travel,
        };
        let g = RoadGraph::from_undirected_edges(coords, vec![e(0, 1, 5), e(1, 2, 7), e(3, 4, 11)]);
        let m = CostMatrix::build(&g);

        // Within-component distances are exact.
        assert_eq!(m.cost(NodeId(0), NodeId(2)), 12);
        assert_eq!(m.cost(NodeId(2), NodeId(0)), 12);
        assert_eq!(m.cost(NodeId(3), NodeId(4)), 11);

        // Every cross-component pair is unreachable, in both directions.
        for a in [0u32, 1, 2] {
            for b in [3u32, 4] {
                assert!(!m.reachable(NodeId(a), NodeId(b)), "{a} -> {b}");
                assert!(!m.reachable(NodeId(b), NodeId(a)), "{b} -> {a}");
                assert_eq!(m.cost(NodeId(a), NodeId(b)), UNREACHABLE);
                assert_eq!(m.cost(NodeId(b), NodeId(a)), UNREACHABLE);
            }
        }
        // Nodes always reach themselves at zero cost.
        for v in 0..5u32 {
            assert!(m.reachable(NodeId(v), NodeId(v)));
            assert_eq!(m.cost(NodeId(v), NodeId(v)), 0);
        }

        // Aggregates ignore the unreachable pairs entirely: finite
        // distances are {5,7,12} and {11}, each counted in both directions.
        assert_eq!(m.max_finite(), 12);
        let expected_mean = (2.0 * (5.0 + 7.0 + 12.0) + 2.0 * 11.0) / 8.0;
        assert!((m.mean_finite() - expected_mean).abs() < 1e-9);
    }

    #[test]
    fn fully_disconnected_graph_has_zero_aggregates() {
        let g = RoadGraph::from_edges(vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)], vec![]);
        let m = CostMatrix::build(&g);
        assert_eq!(m.max_finite(), 0);
        assert_eq!(m.mean_finite(), 0.0);
        assert_eq!(m.node_count(), 3);
    }

    #[test]
    fn mean_excludes_diagonal() {
        let g = ring(4);
        let m = CostMatrix::build(&g);
        // distances between distinct nodes: 3,6,3 pattern. Mean of {3,6,3} per row = 4.
        assert!((m.mean_finite() - 4.0).abs() < 1e-9);
    }
}
