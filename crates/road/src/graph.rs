//! Compact CSR road graph.
//!
//! Nodes carry planar coordinates (used by the grid index and by workload
//! generators); edges carry travel times in seconds. The graph is directed;
//! road segments are inserted in both directions by the builder helpers when
//! modelling two-way streets.

use serde::{Deserialize, Serialize};
use watter_core::{Dur, NodeId};

/// Builder-friendly edge list entry.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Travel time in seconds (must be ≥ 1 to keep Dijkstra well-behaved).
    pub travel: Dur,
}

/// A directed road network in compressed-sparse-row form.
///
/// `PartialEq` compares the full CSR plus coordinates — two graphs are equal
/// exactly when every query (topology, weights, coordinates) answers the
/// same, which is what the import/export round-trip tests assert.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoadGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    travels: Vec<Dur>,
    coords: Vec<(f64, f64)>,
}

impl RoadGraph {
    /// Build from node coordinates and a directed edge list.
    ///
    /// # Panics
    /// Panics if an edge references a node out of range or has a
    /// non-positive travel time.
    pub fn from_edges(coords: Vec<(f64, f64)>, mut edges: Vec<Edge>) -> Self {
        let n = coords.len();
        for e in &edges {
            assert!(e.from.index() < n, "edge source {} out of range", e.from);
            assert!(e.to.index() < n, "edge target {} out of range", e.to);
            assert!(e.travel > 0, "edge travel time must be positive");
        }
        edges.sort_by_key(|e| (e.from.0, e.to.0));
        let mut offsets = vec![0u32; n + 1];
        for e in &edges {
            offsets[e.from.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = edges.iter().map(|e| e.to.0).collect();
        let travels = edges.iter().map(|e| e.travel).collect();
        Self {
            offsets,
            targets,
            travels,
            coords,
        }
    }

    /// Insert every edge in both directions (two-way streets).
    pub fn from_undirected_edges(coords: Vec<(f64, f64)>, edges: Vec<Edge>) -> Self {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for e in edges {
            all.push(e);
            all.push(Edge {
                from: e.to,
                to: e.from,
                travel: e.travel,
            });
        }
        Self::from_edges(coords, all)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.coords.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Planar coordinates of a node.
    #[inline]
    pub fn coord(&self, n: NodeId) -> (f64, f64) {
        self.coords[n.index()]
    }

    /// All node coordinates.
    #[inline]
    pub fn coords(&self) -> &[(f64, f64)] {
        &self.coords
    }

    /// Outgoing neighbours of `n` with travel times.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, Dur)> + '_ {
        let lo = self.offsets[n.index()] as usize;
        let hi = self.offsets[n.index() + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.travels[lo..hi])
            .map(|(&t, &w)| (NodeId(t), w))
    }

    /// Raw CSR slices of `n`'s outgoing edges: `(targets, travel_times)`,
    /// index-aligned and sorted by target id. This is the relaxation-loop
    /// form: one bounds check per slice instead of one per edge, and no
    /// iterator state.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> (&[u32], &[Dur]) {
        let lo = self.offsets[n.index()] as usize;
        let hi = self.offsets[n.index() + 1] as usize;
        (&self.targets[lo..hi], &self.travels[lo..hi])
    }

    /// Out-degree of `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        (self.offsets[n.index() + 1] - self.offsets[n.index()]) as usize
    }

    /// Whether every directed edge `(u, v, w)` has a mirror `(v, u, w)`.
    ///
    /// Symmetry is what makes the [`crate::Landmarks`] triangle-inequality
    /// bound admissible in *both* query directions, so the ALT oracle
    /// checks it once at construction. Runs in `O(E log deg)`.
    pub fn is_symmetric(&self) -> bool {
        for u in self.nodes() {
            let (targets, travels) = self.out_edges(u);
            for (&v, &w) in targets.iter().zip(travels) {
                let (back_t, back_w) = self.out_edges(NodeId(v));
                // Targets are sorted; find the (possibly duplicated) run of
                // edges back to `u` and require one with matching weight.
                let Ok(hit) = back_t.binary_search(&u.0) else {
                    return false;
                };
                let lo = back_t[..hit]
                    .iter()
                    .rposition(|&t| t != u.0)
                    .map_or(0, |p| p + 1);
                let hi = hit
                    + back_t[hit..]
                        .iter()
                        .position(|&t| t != u.0)
                        .unwrap_or(back_t.len() - hit);
                if !back_w[lo..hi].contains(&w) {
                    return false;
                }
            }
        }
        true
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Euclidean distance between node coordinates (a lower-bound heuristic
    /// only when edge travel times dominate coordinate distance; used by the
    /// grid index for proximity, never for exact costs).
    pub fn euclid(&self, a: NodeId, b: NodeId) -> f64 {
        let (ax, ay) = self.coord(a);
        let (bx, by) = self.coord(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// The graph-wide minimum travel cost per unit of Euclidean coordinate
    /// distance, `γ = min_e travel(e) / ‖e‖` over edges of positive length.
    ///
    /// Because every edge satisfies `travel(e) ≥ γ·‖e‖` and Euclidean edge
    /// lengths along any path sum to at least the straight-line distance,
    /// `cost(a, b) ≥ γ·‖a − b‖` for **every** node pair — an admissible
    /// geometric lower bound that needs no per-pair work at all. Returns
    /// `f64::INFINITY` when no positive-length edge exists (then any two
    /// nodes at distinct coordinates are disconnected, so an infinite bound
    /// is still admissible); zero-length edges never weaken the bound.
    pub fn min_cost_per_unit_distance(&self) -> f64 {
        let mut gamma = f64::INFINITY;
        for u in self.nodes() {
            let (targets, travels) = self.out_edges(u);
            for (&v, &w) in targets.iter().zip(travels) {
                let len = self.euclid(u, NodeId(v));
                if len > 0.0 {
                    gamma = gamma.min(w as f64 / len);
                }
            }
        }
        gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> RoadGraph {
        RoadGraph::from_undirected_edges(
            vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)],
            vec![
                Edge {
                    from: NodeId(0),
                    to: NodeId(1),
                    travel: 10,
                },
                Edge {
                    from: NodeId(1),
                    to: NodeId(2),
                    travel: 20,
                },
                Edge {
                    from: NodeId(0),
                    to: NodeId(2),
                    travel: 50,
                },
            ],
        )
    }

    #[test]
    fn csr_layout_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(NodeId(0)), 2);
    }

    #[test]
    fn neighbors_sorted_by_target() {
        let g = triangle();
        let n: Vec<_> = g.neighbors(NodeId(0)).collect();
        assert_eq!(n, vec![(NodeId(1), 10), (NodeId(2), 50)]);
    }

    #[test]
    fn euclid_distance() {
        let g = triangle();
        assert!((g.euclid(NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edge() {
        RoadGraph::from_edges(
            vec![(0.0, 0.0)],
            vec![Edge {
                from: NodeId(0),
                to: NodeId(5),
                travel: 1,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weight() {
        RoadGraph::from_edges(
            vec![(0.0, 0.0), (1.0, 1.0)],
            vec![Edge {
                from: NodeId(0),
                to: NodeId(1),
                travel: 0,
            }],
        );
    }
}
