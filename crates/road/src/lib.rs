//! # watter-road
//!
//! Road-network substrate for the WATTER reproduction.
//!
//! The paper evaluates on the OSM road networks of New York City, Chengdu and
//! Xi'an; those graphs (and the authors' preprocessed travel times) are not
//! redistributable, so this crate provides the closest synthetic equivalent:
//!
//! * [`RoadGraph`] — a compact CSR directed graph with per-edge travel times
//!   and per-node planar coordinates,
//! * [`dijkstra`] — exact single-source and point-to-point shortest paths,
//! * [`CostMatrix`] — an all-pairs shortest-path table implementing
//!   [`watter_core::TravelCost`] with O(1) queries, built by parallel
//!   Dijkstra sweeps (the right oracle up to ~10⁴ nodes),
//! * [`Landmarks`] — ALT lower bounds (farthest-point-sampled landmark
//!   distance vectors) used for shareability pre-filtering and as the
//!   [`AltOracle`] heuristic,
//! * [`AltOracle`] — exact landmark-guided A* point queries for 10⁵-node
//!   cities where the dense table cannot exist,
//! * [`ChOracle`] — contraction-hierarchy preprocessing + bidirectional
//!   upward queries: exact microsecond point queries at 10⁵–10⁶ nodes,
//! * [`import`] — plain-text edge-list + coordinates graph format
//!   (importer with typed errors, exact round-trip exporter),
//! * [`CityOracle`] — the [`watter_core::OracleKind`]-selected oracle the
//!   workloads, simulator and CLI plug in,
//! * [`CachedOracle`] — a sharded, fixed-capacity, deterministic
//!   memoization layer over any point-query oracle (hits are
//!   allocation-free; cached runs are bit-identical to uncached ones),
//! * [`DijkstraWorkspace`] — reusable search state making repeated
//!   point queries allocation-free,
//! * [`GridIndex`] — the `g × g` spatial index the paper uses both to speed
//!   up nearest-worker search and to quantize locations for the MDP state,
//! * [`citygen`] — synthetic city generation (perturbed grid with optional
//!   diagonal arterials).

pub mod astar;
pub mod cached;
pub mod ch;
pub mod citygen;
pub mod dijkstra;
pub mod graph;
pub mod grid;
pub mod import;
pub mod landmarks;
pub mod matrix;
pub mod observed;
pub mod oracle;
pub mod workspace;

pub use astar::AltOracle;
pub use cached::CachedOracle;
pub use ch::ChOracle;
pub use citygen::{CityConfig, CityTopology};
pub use dijkstra::{shortest_path_cost, single_source};
pub use graph::RoadGraph;
pub use grid::GridIndex;
pub use import::{export_graph, import_graph, parse_graph, ImportError};
pub use landmarks::Landmarks;
pub use matrix::CostMatrix;
pub use observed::{stage_for_backend, ObservedOracle};
pub use oracle::CityOracle;
pub use workspace::DijkstraWorkspace;
