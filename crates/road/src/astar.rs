//! Landmark-guided A* (ALT) point-query oracle.
//!
//! For cities beyond [`watter_core::DENSE_NODE_LIMIT`] nodes the dense
//! all-pairs table stops fitting in memory (`n² × 4` bytes is 40 GB at
//! 10⁵ nodes). [`AltOracle`] instead answers each `cost(a, b)` query with
//! an A* search whose heuristic is the [`Landmarks`] triangle-inequality
//! lower bound `max_ℓ |d(ℓ, v) − d(ℓ, b)|` — the classic ALT technique.
//! The bound is **consistent**, so the search is *exact*: it returns
//! bit-identical costs to Dijkstra and to the dense table, it just settles
//! far fewer nodes on the way.
//!
//! The symmetric-graph form of the bound is only admissible on graphs
//! where every edge has a same-weight mirror (all the synthetic cities in
//! this workspace). On an asymmetric graph the oracle silently degrades to
//! a zero heuristic — plain Dijkstra with early exit — which is slower but
//! still exact.

use crate::dijkstra::UNREACHABLE;
use crate::graph::RoadGraph;
use crate::landmarks::Landmarks;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex};
use watter_core::{Dur, NodeId, TravelBound, TravelCost};

/// Exact point-query travel-cost oracle for graphs too large for a dense
/// table. `O(landmarks × n)` memory, millisecond-scale queries.
///
/// Queries require `&self` (the [`TravelCost`] contract), so the reusable
/// search workspace sits behind a mutex; queries are short and the
/// simulator is single-threaded, making contention a non-issue.
#[derive(Debug)]
pub struct AltOracle {
    graph: Arc<RoadGraph>,
    landmarks: Landmarks,
    /// Whether the landmark bound may be used (see module docs).
    symmetric: bool,
    ws: Mutex<AstarWorkspace>,
}

/// Reusable A* state: g-scores with a touched list, the open heap, and the
/// per-query cache of landmark distances to the target.
#[derive(Debug, Default)]
struct AstarWorkspace {
    dist: Vec<Dur>,
    touched: Vec<u32>,
    /// `Reverse((f, g, node))`: ordered by f = g + h, ties broken by
    /// smaller g then smaller node id for determinism.
    heap: BinaryHeap<Reverse<(Dur, Dur, u32)>>,
    /// `d(ℓ, target)` per landmark, filled once per query.
    target_bounds: Vec<Dur>,
}

impl AltOracle {
    /// Build the oracle: select `k` landmarks over `graph` and precompute
    /// their distance vectors (`k` Dijkstra sweeps).
    pub fn build(graph: Arc<RoadGraph>, k: usize) -> Self {
        let landmarks = Landmarks::build(&graph, k);
        Self::with_landmarks(graph, landmarks)
    }

    /// Wrap an existing landmark set (e.g. shared with shareability
    /// pre-filtering).
    pub fn with_landmarks(graph: Arc<RoadGraph>, landmarks: Landmarks) -> Self {
        let symmetric = graph.is_symmetric();
        let n = graph.node_count();
        Self {
            graph,
            landmarks,
            symmetric,
            ws: Mutex::new(AstarWorkspace {
                dist: vec![UNREACHABLE; n],
                ..AstarWorkspace::default()
            }),
        }
    }

    /// The underlying road graph.
    pub fn graph(&self) -> &Arc<RoadGraph> {
        &self.graph
    }

    /// The landmark set driving the heuristic.
    pub fn landmarks(&self) -> &Landmarks {
        &self.landmarks
    }

    /// Whether `b` is reachable from `a`.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        self.cost(a, b) < UNREACHABLE
    }

    /// Resident memory of the precomputed landmark vectors, in bytes.
    pub fn landmark_bytes(&self) -> usize {
        self.landmarks.len() * self.graph.node_count() * std::mem::size_of::<Dur>()
    }
}

impl AstarWorkspace {
    fn begin(&mut self, n: usize) {
        for &t in &self.touched {
            self.dist[t as usize] = UNREACHABLE;
        }
        self.touched.clear();
        self.heap.clear();
        if self.dist.len() < n {
            self.dist.resize(n, UNREACHABLE);
        }
    }

    /// Heuristic `h(v)`: the tightest landmark lower bound on the
    /// remaining distance `v → target`, 0 when no landmark covers both.
    #[inline]
    fn h(&self, landmarks: &Landmarks, v: usize) -> Dur {
        let mut best = 0;
        for (l, &db) in self.target_bounds.iter().enumerate() {
            let da = landmarks.row(l)[v];
            if da < UNREACHABLE && db < UNREACHABLE {
                best = best.max((da - db).abs());
            }
        }
        best
    }

    fn search(
        &mut self,
        graph: &RoadGraph,
        landmarks: &Landmarks,
        symmetric: bool,
        src: NodeId,
        dst: NodeId,
    ) -> Dur {
        self.begin(graph.node_count());
        self.target_bounds.clear();
        if symmetric {
            self.target_bounds
                .extend((0..landmarks.len()).map(|l| landmarks.row(l)[dst.index()]));
        }
        self.dist[src.index()] = 0;
        self.touched.push(src.0);
        let h0 = self.h(landmarks, src.index());
        self.heap.push(Reverse((h0, 0, src.0)));
        while let Some(Reverse((_, g, u))) = self.heap.pop() {
            if u == dst.0 {
                return g;
            }
            if g > self.dist[u as usize] {
                continue;
            }
            let (targets, travels) = graph.out_edges(NodeId(u));
            for (&v, &w) in targets.iter().zip(travels) {
                let ng = g.saturating_add(w).min(UNREACHABLE);
                if ng < self.dist[v as usize] {
                    if self.dist[v as usize] >= UNREACHABLE {
                        self.touched.push(v);
                    }
                    self.dist[v as usize] = ng;
                    let f = ng.saturating_add(self.h(landmarks, v as usize));
                    self.heap.push(Reverse((f, ng, v)));
                }
            }
        }
        UNREACHABLE
    }
}

impl TravelCost for AltOracle {
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        if a == b {
            return 0;
        }
        let mut ws = self.ws.lock().unwrap_or_else(|e| e.into_inner());
        ws.search(&self.graph, &self.landmarks, self.symmetric, a, b)
    }
}

impl TravelBound for AltOracle {
    /// The landmark triangle-inequality bound the A* heuristic already
    /// uses: `O(landmarks)` integer ops, no search, no locking. On
    /// asymmetric graphs — where the symmetric-form bound is inadmissible —
    /// this degrades to `0` (always admissible, never prunes), mirroring
    /// the zero-heuristic fallback of the search itself.
    #[inline]
    fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        if self.symmetric {
            self.landmarks.lower_bound(a, b)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::CityConfig;
    use crate::dijkstra::DijkstraOracle;
    use crate::graph::Edge;
    use crate::matrix::CostMatrix;

    fn city(w: usize, h: usize, seed: u64) -> Arc<RoadGraph> {
        Arc::new(
            CityConfig {
                width: w,
                height: h,
                ..Default::default()
            }
            .generate(seed),
        )
    }

    #[test]
    fn matches_dense_table_on_all_pairs() {
        let g = city(8, 7, 3);
        let dense = CostMatrix::build(&g);
        let alt = AltOracle::build(g.clone(), 4);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(alt.cost(a, b), dense.cost(a, b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_disconnected_graph() {
        let coords = (0..6).map(|i| (i as f64, 0.0)).collect();
        let e = |a: u32, b: u32, t: i64| Edge {
            from: NodeId(a),
            to: NodeId(b),
            travel: t,
        };
        let g = Arc::new(RoadGraph::from_undirected_edges(
            coords,
            vec![e(0, 1, 5), e(1, 2, 7), e(3, 4, 11), e(4, 5, 2)],
        ));
        let alt = AltOracle::build(g.clone(), 3);
        let dij = DijkstraOracle::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(alt.cost(a, b), dij.cost(a, b), "{a} -> {b}");
            }
        }
        assert!(!alt.reachable(NodeId(0), NodeId(3)));
        assert!(alt.reachable(NodeId(3), NodeId(5)));
    }

    #[test]
    fn asymmetric_graph_degrades_to_exact_dijkstra() {
        // One-way streets: 0 → 1 → 2 plus a slow direct 0 → 2.
        let g = Arc::new(RoadGraph::from_edges(
            vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)],
            vec![
                Edge {
                    from: NodeId(0),
                    to: NodeId(1),
                    travel: 3,
                },
                Edge {
                    from: NodeId(1),
                    to: NodeId(2),
                    travel: 4,
                },
                Edge {
                    from: NodeId(0),
                    to: NodeId(2),
                    travel: 20,
                },
            ],
        ));
        assert!(!g.is_symmetric());
        let alt = AltOracle::build(g.clone(), 2);
        let dij = DijkstraOracle::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(alt.cost(a, b), dij.cost(a, b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn zero_landmarks_is_plain_dijkstra() {
        let g = city(5, 5, 9);
        let alt = AltOracle::build(g.clone(), 0);
        let dense = CostMatrix::build(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(alt.cost(a, b), dense.cost(a, b));
            }
        }
        assert_eq!(alt.landmark_bytes(), 0);
    }
}
