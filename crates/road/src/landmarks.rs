//! ALT landmark lower bounds.
//!
//! For graphs too large for an all-pairs table, WATTER's shareability
//! filtering only needs *lower bounds* to discard hopeless pairs cheaply:
//! if even an optimistic bound on `cost(p_i, p_j)` already violates both
//! orders' slack, no exact query is needed. We precompute distances from a
//! handful of far-apart landmark nodes and use the triangle inequality
//! `|d(ℓ, a) − d(ℓ, b)| ≤ d(a, b)`.

use crate::dijkstra::UNREACHABLE;
use crate::graph::RoadGraph;
use crate::workspace::DijkstraWorkspace;
use watter_core::{Dur, NodeId};

/// Precomputed landmark distance vectors.
#[derive(Clone, Debug)]
pub struct Landmarks {
    /// The selected landmark nodes, aligned with `dist`.
    nodes: Vec<NodeId>,
    /// `dist[l][v]` = shortest travel time from landmark `l` to node `v`.
    dist: Vec<Vec<Dur>>,
}

impl Landmarks {
    /// Select up to `k` landmarks by farthest-point sampling (the classic
    /// ALT heuristic) and precompute their distance vectors.
    ///
    /// Selection never repeats a landmark, and a node unreachable from
    /// every selected landmark (an uncovered component) is preferred over
    /// any covered node — so on a disconnected graph each component gets a
    /// landmark before any component gets its second. Fewer than `k`
    /// landmarks are returned when the graph runs out of nodes.
    pub fn build(graph: &RoadGraph, k: usize) -> Self {
        let n = graph.node_count();
        if n == 0 || k == 0 {
            return Self {
                nodes: Vec::new(),
                dist: Vec::new(),
            };
        }
        let mut ws = DijkstraWorkspace::new(n);
        let mut nodes: Vec<NodeId> = Vec::with_capacity(k);
        let mut dist: Vec<Vec<Dur>> = Vec::with_capacity(k);
        let mut current = NodeId(0);
        while dist.len() < k.min(n) {
            nodes.push(current);
            dist.push(ws.single_source(graph, current).to_vec());
            // Next landmark: the first node no selected landmark reaches
            // (uncovered component), else the covered node farthest from
            // its nearest landmark; never a node already selected.
            let mut uncovered: Option<NodeId> = None;
            let mut farthest: (Dur, Option<NodeId>) = (0, None);
            for v in 0..n {
                let node = NodeId(v as u32);
                if nodes.contains(&node) {
                    continue;
                }
                let nearest = dist
                    .iter()
                    .map(|row| row[v])
                    .min()
                    .expect("at least one landmark selected");
                if nearest >= UNREACHABLE {
                    if uncovered.is_none() {
                        uncovered = Some(node);
                    }
                } else if nearest > farthest.0 {
                    farthest = (nearest, Some(node));
                }
            }
            match uncovered.or(farthest.1) {
                Some(next) => current = next,
                None => break, // every node is already a landmark
            }
        }
        Self { nodes, dist }
    }

    /// The selected landmark nodes, in selection order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Distance vector of landmark `l` (`dist[v]` = travel time `l → v`).
    pub(crate) fn row(&self, l: usize) -> &[Dur] {
        &self.dist[l]
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Whether no landmarks were built.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Triangle-inequality lower bound on `cost(a, b)`.
    ///
    /// Symmetric-graph form: `max_ℓ |d(ℓ,a) − d(ℓ,b)|`. Always ≤ the true
    /// distance on undirected graphs; 0 when no landmark reaches both.
    pub fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        let mut lb = 0;
        for row in &self.dist {
            let da = row[a.index()];
            let db = row[b.index()];
            if da < UNREACHABLE && db < UNREACHABLE {
                lb = lb.max((da - db).abs());
            }
        }
        lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;
    use crate::matrix::CostMatrix;
    use watter_core::TravelCost;

    fn grid3() -> RoadGraph {
        // 3×3 grid, unit weights 10.
        let mut coords = Vec::new();
        let mut edges = Vec::new();
        for y in 0..3u32 {
            for x in 0..3u32 {
                coords.push((x as f64, y as f64));
                let id = y * 3 + x;
                if x + 1 < 3 {
                    edges.push(Edge {
                        from: NodeId(id),
                        to: NodeId(id + 1),
                        travel: 10,
                    });
                }
                if y + 1 < 3 {
                    edges.push(Edge {
                        from: NodeId(id),
                        to: NodeId(id + 3),
                        travel: 10,
                    });
                }
            }
        }
        RoadGraph::from_undirected_edges(coords, edges)
    }

    #[test]
    fn bounds_never_exceed_true_distance() {
        let g = grid3();
        let lm = Landmarks::build(&g, 4);
        let exact = CostMatrix::build(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert!(
                    lm.lower_bound(a, b) <= exact.cost(a, b),
                    "lb({a},{b}) exceeds exact"
                );
            }
        }
    }

    #[test]
    fn bound_is_tight_on_a_line() {
        // On a path graph with a landmark at one end, bounds are exact.
        let coords = (0..5).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..4)
            .map(|i| Edge {
                from: NodeId(i),
                to: NodeId(i + 1),
                travel: 5,
            })
            .collect();
        let g = RoadGraph::from_undirected_edges(coords, edges);
        let lm = Landmarks::build(&g, 1);
        assert_eq!(lm.lower_bound(NodeId(1), NodeId(4)), 15);
    }

    #[test]
    fn empty_graph_ok() {
        let g = RoadGraph::from_edges(vec![], vec![]);
        let lm = Landmarks::build(&g, 3);
        assert!(lm.is_empty());
        assert!(lm.nodes().is_empty());
    }

    /// Regression: farthest-point sampling used to treat nodes unreachable
    /// from every landmark as distance 0, so isolated components never got
    /// a landmark and the same node could be selected repeatedly.
    #[test]
    fn disconnected_components_each_get_a_landmark() {
        // Component A: path {0,1,2}; component B: path {3,4,5}.
        let coords = (0..6).map(|i| (i as f64, 0.0)).collect();
        let e = |a: u32, b: u32| Edge {
            from: NodeId(a),
            to: NodeId(b),
            travel: 10,
        };
        let g = RoadGraph::from_undirected_edges(coords, vec![e(0, 1), e(1, 2), e(3, 4), e(4, 5)]);
        let lm = Landmarks::build(&g, 2);
        assert_eq!(lm.len(), 2);
        // No duplicate selections…
        assert_ne!(lm.nodes()[0], lm.nodes()[1]);
        // …and the second landmark lands in the uncovered component B.
        assert!(lm.nodes().iter().any(|n| n.0 >= 3), "{:?}", lm.nodes());
        // With B covered, within-B bounds become useful (a landmark inside
        // a path component gives exact bounds along it).
        assert!(lm.lower_bound(NodeId(3), NodeId(5)) > 0);
        // Bounds stay admissible everywhere, including across components.
        let exact = CostMatrix::build(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert!(
                    lm.lower_bound(a, b) <= exact.cost(a, b).max(0),
                    "lb({a},{b})"
                );
            }
        }
    }

    #[test]
    fn selection_stops_when_nodes_run_out() {
        // Three isolated nodes, k = 5: exactly the three nodes are picked,
        // each exactly once.
        let g = RoadGraph::from_edges(vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)], vec![]);
        let lm = Landmarks::build(&g, 5);
        assert_eq!(lm.len(), 3);
        let mut picked: Vec<u32> = lm.nodes().iter().map(|n| n.0).collect();
        picked.sort_unstable();
        assert_eq!(picked, vec![0, 1, 2]);
    }
}
