//! ALT landmark lower bounds.
//!
//! For graphs too large for an all-pairs table, WATTER's shareability
//! filtering only needs *lower bounds* to discard hopeless pairs cheaply:
//! if even an optimistic bound on `cost(p_i, p_j)` already violates both
//! orders' slack, no exact query is needed. We precompute distances from a
//! handful of far-apart landmark nodes and use the triangle inequality
//! `|d(ℓ, a) − d(ℓ, b)| ≤ d(a, b)`.

use crate::dijkstra::{single_source, UNREACHABLE};
use crate::graph::RoadGraph;
use watter_core::{Dur, NodeId};

/// Precomputed landmark distance vectors.
#[derive(Clone, Debug)]
pub struct Landmarks {
    /// `dist[l][v]` = shortest travel time from landmark `l` to node `v`.
    dist: Vec<Vec<Dur>>,
}

impl Landmarks {
    /// Select `k` landmarks by farthest-point sampling (the classic ALT
    /// heuristic) and precompute their distance vectors.
    pub fn build(graph: &RoadGraph, k: usize) -> Self {
        let n = graph.node_count();
        if n == 0 || k == 0 {
            return Self { dist: Vec::new() };
        }
        let mut dist: Vec<Vec<Dur>> = Vec::with_capacity(k);
        // First landmark: node 0; subsequent ones maximize distance to the
        // already-selected set.
        let mut current = NodeId(0);
        for _ in 0..k.min(n) {
            let d = single_source(graph, current);
            dist.push(d);
            // farthest reachable node from all selected landmarks
            let mut best = (0i64, NodeId(0));
            for v in 0..n {
                let m = dist
                    .iter()
                    .map(|row| row[v])
                    .filter(|&x| x < UNREACHABLE)
                    .min()
                    .unwrap_or(0);
                if m > best.0 {
                    best = (m, NodeId(v as u32));
                }
            }
            current = best.1;
        }
        Self { dist }
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Whether no landmarks were built.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Triangle-inequality lower bound on `cost(a, b)`.
    ///
    /// Symmetric-graph form: `max_ℓ |d(ℓ,a) − d(ℓ,b)|`. Always ≤ the true
    /// distance on undirected graphs; 0 when no landmark reaches both.
    pub fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        let mut lb = 0;
        for row in &self.dist {
            let da = row[a.index()];
            let db = row[b.index()];
            if da < UNREACHABLE && db < UNREACHABLE {
                lb = lb.max((da - db).abs());
            }
        }
        lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;
    use crate::matrix::CostMatrix;
    use watter_core::TravelCost;

    fn grid3() -> RoadGraph {
        // 3×3 grid, unit weights 10.
        let mut coords = Vec::new();
        let mut edges = Vec::new();
        for y in 0..3u32 {
            for x in 0..3u32 {
                coords.push((x as f64, y as f64));
                let id = y * 3 + x;
                if x + 1 < 3 {
                    edges.push(Edge {
                        from: NodeId(id),
                        to: NodeId(id + 1),
                        travel: 10,
                    });
                }
                if y + 1 < 3 {
                    edges.push(Edge {
                        from: NodeId(id),
                        to: NodeId(id + 3),
                        travel: 10,
                    });
                }
            }
        }
        RoadGraph::from_undirected_edges(coords, edges)
    }

    #[test]
    fn bounds_never_exceed_true_distance() {
        let g = grid3();
        let lm = Landmarks::build(&g, 4);
        let exact = CostMatrix::build(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert!(
                    lm.lower_bound(a, b) <= exact.cost(a, b),
                    "lb({a},{b}) exceeds exact"
                );
            }
        }
    }

    #[test]
    fn bound_is_tight_on_a_line() {
        // On a path graph with a landmark at one end, bounds are exact.
        let coords = (0..5).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..4)
            .map(|i| Edge {
                from: NodeId(i),
                to: NodeId(i + 1),
                travel: 5,
            })
            .collect();
        let g = RoadGraph::from_undirected_edges(coords, edges);
        let lm = Landmarks::build(&g, 1);
        assert_eq!(lm.lower_bound(NodeId(1), NodeId(4)), 15);
    }

    #[test]
    fn empty_graph_ok() {
        let g = RoadGraph::from_edges(vec![], vec![]);
        let lm = Landmarks::build(&g, 3);
        assert!(lm.is_empty());
    }
}
