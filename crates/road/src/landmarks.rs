//! ALT landmark lower bounds.
//!
//! For graphs too large for an all-pairs table, WATTER's shareability
//! filtering only needs *lower bounds* to discard hopeless pairs cheaply:
//! if even an optimistic bound on `cost(p_i, p_j)` already violates both
//! orders' slack, no exact query is needed. We precompute distances from a
//! handful of far-apart landmark nodes and use the triangle inequality
//! `|d(ℓ, a) − d(ℓ, b)| ≤ d(a, b)`.

use crate::dijkstra::UNREACHABLE;
use crate::graph::RoadGraph;
use crate::workspace::DijkstraWorkspace;
use watter_core::{Dur, NodeId};

/// Precomputed landmark distance vectors.
#[derive(Clone, Debug)]
pub struct Landmarks {
    /// The selected landmark nodes, aligned with `dist`.
    nodes: Vec<NodeId>,
    /// `dist[l][v]` = shortest travel time from landmark `l` to node `v`.
    dist: Vec<Vec<Dur>>,
}

impl Landmarks {
    /// Select up to `k` landmarks and precompute their distance vectors,
    /// parallelizing the Dijkstra sweeps across all available cores.
    ///
    /// Selection is farthest-point sampling in coordinate space with a
    /// component-coverage preference (see [`select_landmarks`]): it needs no
    /// shortest-path sweeps itself, so the `k` expensive single-source
    /// sweeps become independent and run one scoped thread chunk each —
    /// the same pattern as [`crate::CostMatrix::build`]. Results are
    /// bit-identical for any thread count.
    pub fn build(graph: &RoadGraph, k: usize) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
        Self::build_with_threads(graph, k, threads)
    }

    /// Single-threaded build — the baseline the parallel build is benched
    /// against. Same landmarks, same distance vectors.
    pub fn build_serial(graph: &RoadGraph, k: usize) -> Self {
        Self::build_with_threads(graph, k, 1)
    }

    /// Build with an explicit worker-thread count. The selected landmark
    /// set is computed up front (cheap, thread-independent); the distance
    /// sweeps are split into contiguous chunks, one scoped thread each,
    /// every thread reusing one [`DijkstraWorkspace`]. Bit-identical output
    /// for any `threads`.
    pub fn build_with_threads(graph: &RoadGraph, k: usize, threads: usize) -> Self {
        let n = graph.node_count();
        if n == 0 || k == 0 {
            return Self {
                nodes: Vec::new(),
                dist: Vec::new(),
            };
        }
        let nodes = select_landmarks(graph, k);
        let mut dist: Vec<Vec<Dur>> = vec![Vec::new(); nodes.len()];
        let threads = threads.clamp(1, nodes.len());
        if threads <= 1 {
            let mut ws = DijkstraWorkspace::new(n);
            for (node, row) in nodes.iter().zip(dist.iter_mut()) {
                *row = ws.single_source(graph, *node).to_vec();
            }
        } else {
            let per = nodes.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (node_chunk, row_chunk) in nodes.chunks(per).zip(dist.chunks_mut(per)) {
                    scope.spawn(move || {
                        let mut ws = DijkstraWorkspace::new(n);
                        for (node, row) in node_chunk.iter().zip(row_chunk.iter_mut()) {
                            *row = ws.single_source(graph, *node).to_vec();
                        }
                    });
                }
            });
        }
        Self { nodes, dist }
    }

    /// The selected landmark nodes, in selection order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Distance vector of landmark `l` (`dist[v]` = travel time `l → v`).
    pub(crate) fn row(&self, l: usize) -> &[Dur] {
        &self.dist[l]
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Whether no landmarks were built.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Triangle-inequality lower bound on `cost(a, b)`.
    ///
    /// Symmetric-graph form: `max_ℓ |d(ℓ,a) − d(ℓ,b)|`. Always ≤ the true
    /// distance on undirected graphs; 0 when no landmark reaches both.
    pub fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        let mut lb = 0;
        for row in &self.dist {
            let da = row[a.index()];
            let db = row[b.index()];
            if da < UNREACHABLE && db < UNREACHABLE {
                lb = lb.max((da - db).abs());
            }
        }
        lb
    }
}

/// Deterministically pick up to `k` landmark nodes without any
/// shortest-path sweeps, so the sweeps themselves can run in parallel:
///
/// * farthest-point sampling in **coordinate space** (squared Euclidean
///   distance to the nearest selected landmark), seeded at node 0 — the
///   classic spread-the-landmarks heuristic, metric-free;
/// * a node in a connected component that holds no landmark yet is
///   preferred over any covered node (components computed by union-find
///   over the edge list, ignoring direction), so on a disconnected graph
///   each component gets a landmark before any gets its second;
/// * no node is selected twice; fewer than `k` landmarks are returned when
///   the graph runs out of useful nodes (remaining nodes co-located with a
///   landmark are never picked — their bound contribution would be nil).
fn select_landmarks(graph: &RoadGraph, k: usize) -> Vec<NodeId> {
    let n = graph.node_count();
    // Union-find over the undirected view of the edge list.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize]; // path halving
            v = parent[v as usize];
        }
        v
    }
    for u in graph.nodes() {
        let (targets, _) = graph.out_edges(u);
        for &v in targets {
            let (ru, rv) = (find(&mut parent, u.0), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
    }

    let mut selected = vec![false; n];
    let mut covered = vec![false; n]; // indexed by component root
    let mut nearest_d2 = vec![f64::INFINITY; n];
    let mut nodes: Vec<NodeId> = Vec::with_capacity(k.min(n));
    let mut current = NodeId(0);
    while nodes.len() < k.min(n) {
        nodes.push(current);
        selected[current.index()] = true;
        covered[find(&mut parent, current.0) as usize] = true;
        let (cx, cy) = graph.coord(current);
        for (v, &(x, y)) in graph.coords().iter().enumerate() {
            let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
            if d2 < nearest_d2[v] {
                nearest_d2[v] = d2;
            }
        }
        // Next: the first node of an uncovered component, else the covered
        // node farthest (in coordinate space) from its nearest landmark.
        let mut uncovered: Option<NodeId> = None;
        let mut farthest: (f64, Option<NodeId>) = (0.0, None);
        for v in 0..n {
            if selected[v] {
                continue;
            }
            if !covered[find(&mut parent, v as u32) as usize] {
                if uncovered.is_none() {
                    uncovered = Some(NodeId(v as u32));
                }
            } else if nearest_d2[v] > farthest.0 {
                farthest = (nearest_d2[v], Some(NodeId(v as u32)));
            }
        }
        match uncovered.or(farthest.1) {
            Some(next) => current = next,
            None => break, // nothing useful left to select
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;
    use crate::matrix::CostMatrix;
    use watter_core::TravelCost;

    fn grid3() -> RoadGraph {
        // 3×3 grid, unit weights 10.
        let mut coords = Vec::new();
        let mut edges = Vec::new();
        for y in 0..3u32 {
            for x in 0..3u32 {
                coords.push((x as f64, y as f64));
                let id = y * 3 + x;
                if x + 1 < 3 {
                    edges.push(Edge {
                        from: NodeId(id),
                        to: NodeId(id + 1),
                        travel: 10,
                    });
                }
                if y + 1 < 3 {
                    edges.push(Edge {
                        from: NodeId(id),
                        to: NodeId(id + 3),
                        travel: 10,
                    });
                }
            }
        }
        RoadGraph::from_undirected_edges(coords, edges)
    }

    #[test]
    fn bounds_never_exceed_true_distance() {
        let g = grid3();
        let lm = Landmarks::build(&g, 4);
        let exact = CostMatrix::build(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert!(
                    lm.lower_bound(a, b) <= exact.cost(a, b),
                    "lb({a},{b}) exceeds exact"
                );
            }
        }
    }

    #[test]
    fn bound_is_tight_on_a_line() {
        // On a path graph with a landmark at one end, bounds are exact.
        let coords = (0..5).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..4)
            .map(|i| Edge {
                from: NodeId(i),
                to: NodeId(i + 1),
                travel: 5,
            })
            .collect();
        let g = RoadGraph::from_undirected_edges(coords, edges);
        let lm = Landmarks::build(&g, 1);
        assert_eq!(lm.lower_bound(NodeId(1), NodeId(4)), 15);
    }

    #[test]
    fn empty_graph_ok() {
        let g = RoadGraph::from_edges(vec![], vec![]);
        let lm = Landmarks::build(&g, 3);
        assert!(lm.is_empty());
        assert!(lm.nodes().is_empty());
    }

    /// Regression: farthest-point sampling used to treat nodes unreachable
    /// from every landmark as distance 0, so isolated components never got
    /// a landmark and the same node could be selected repeatedly.
    #[test]
    fn disconnected_components_each_get_a_landmark() {
        // Component A: path {0,1,2}; component B: path {3,4,5}.
        let coords = (0..6).map(|i| (i as f64, 0.0)).collect();
        let e = |a: u32, b: u32| Edge {
            from: NodeId(a),
            to: NodeId(b),
            travel: 10,
        };
        let g = RoadGraph::from_undirected_edges(coords, vec![e(0, 1), e(1, 2), e(3, 4), e(4, 5)]);
        let lm = Landmarks::build(&g, 2);
        assert_eq!(lm.len(), 2);
        // No duplicate selections…
        assert_ne!(lm.nodes()[0], lm.nodes()[1]);
        // …and the second landmark lands in the uncovered component B.
        assert!(lm.nodes().iter().any(|n| n.0 >= 3), "{:?}", lm.nodes());
        // With B covered, within-B bounds become useful (a landmark inside
        // a path component gives exact bounds along it).
        assert!(lm.lower_bound(NodeId(3), NodeId(5)) > 0);
        // Bounds stay admissible everywhere, including across components.
        let exact = CostMatrix::build(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert!(
                    lm.lower_bound(a, b) <= exact.cost(a, b).max(0),
                    "lb({a},{b})"
                );
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial_bit_for_bit() {
        let city = crate::citygen::CityConfig {
            width: 9,
            height: 7,
            ..Default::default()
        }
        .generate(23);
        let serial = Landmarks::build_serial(&city, 6);
        // Uneven chunk splits, more threads than landmarks, and the auto path.
        for threads in [2, 3, 5, 64] {
            let par = Landmarks::build_with_threads(&city, 6, threads);
            assert_eq!(par.nodes(), serial.nodes(), "{threads} threads");
            for a in city.nodes() {
                for b in city.nodes() {
                    assert_eq!(
                        par.lower_bound(a, b),
                        serial.lower_bound(a, b),
                        "{threads} threads {a}->{b}"
                    );
                }
            }
        }
        let auto = Landmarks::build(&city, 6);
        assert_eq!(auto.nodes(), serial.nodes());
    }

    #[test]
    fn selection_spreads_landmarks() {
        // On a long line seeded at node 0, the second landmark must land at
        // the far end (farthest-point property).
        let coords = (0..30).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..29)
            .map(|i| Edge {
                from: NodeId(i),
                to: NodeId(i + 1),
                travel: 5,
            })
            .collect();
        let g = RoadGraph::from_undirected_edges(coords, edges);
        let lm = Landmarks::build(&g, 2);
        assert_eq!(lm.nodes(), &[NodeId(0), NodeId(29)]);
    }

    #[test]
    fn selection_stops_when_nodes_run_out() {
        // Three isolated nodes, k = 5: exactly the three nodes are picked,
        // each exactly once.
        let g = RoadGraph::from_edges(vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)], vec![]);
        let lm = Landmarks::build(&g, 5);
        assert_eq!(lm.len(), 3);
        let mut picked: Vec<u32> = lm.nodes().iter().map(|n| n.0).collect();
        picked.sort_unstable();
        assert_eq!(picked, vec![0, 1, 2]);
    }
}
