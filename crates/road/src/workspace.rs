//! Reusable shortest-path search state.
//!
//! Every Dijkstra/A* query needs an O(n) distance array and a binary heap.
//! Allocating them per query dominates point-query cost on large graphs, so
//! [`DijkstraWorkspace`] owns both and resets *only the entries touched by
//! the previous search* (a touched-node list), making repeated queries
//! allocation-free and O(search frontier) to reset rather than O(n).

use crate::dijkstra::UNREACHABLE;
use crate::graph::RoadGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use watter_core::{Dur, NodeId};

/// Scratch state for repeated single-source / point-to-point searches.
///
/// The workspace grows to the largest graph it has seen and is safe to reuse
/// across different graphs.
#[derive(Clone, Debug, Default)]
pub struct DijkstraWorkspace {
    dist: Vec<Dur>,
    touched: Vec<u32>,
    heap: BinaryHeap<Reverse<(Dur, u32)>>,
}

impl DijkstraWorkspace {
    /// Workspace pre-sized for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![UNREACHABLE; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Reset the entries dirtied by the previous search and make sure the
    /// distance array covers `n` nodes.
    fn begin(&mut self, n: usize) {
        for &t in &self.touched {
            self.dist[t as usize] = UNREACHABLE;
        }
        self.touched.clear();
        self.heap.clear();
        if self.dist.len() < n {
            self.dist.resize(n, UNREACHABLE);
        }
    }

    #[inline]
    fn settle(&mut self, v: u32, d: Dur) {
        if self.dist[v as usize] >= UNREACHABLE {
            self.touched.push(v);
        }
        self.dist[v as usize] = d;
        self.heap.push(Reverse((d, v)));
    }

    /// Full single-source shortest-path distances from `src`, as a slice
    /// valid until the next search on this workspace. Unreachable nodes
    /// hold [`UNREACHABLE`].
    pub fn single_source<'a>(&'a mut self, graph: &RoadGraph, src: NodeId) -> &'a [Dur] {
        let n = graph.node_count();
        self.begin(n);
        self.settle(src.0, 0);
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue;
            }
            let (targets, travels) = graph.out_edges(NodeId(u));
            for (&v, &w) in targets.iter().zip(travels) {
                // Saturate so adversarial edge weights cannot wrap past
                // UNREACHABLE: a path that long is indistinguishable from
                // no path at all.
                let nd = d.saturating_add(w).min(UNREACHABLE);
                if nd < self.dist[v as usize] {
                    self.settle(v, nd);
                }
            }
        }
        &self.dist[..n]
    }

    /// Point-to-point shortest path cost with early exit at the target;
    /// [`UNREACHABLE`] when no path exists. Allocation-free after warm-up.
    pub fn point_to_point(&mut self, graph: &RoadGraph, src: NodeId, dst: NodeId) -> Dur {
        if src == dst {
            return 0;
        }
        self.begin(graph.node_count());
        self.settle(src.0, 0);
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if u == dst.0 {
                return d;
            }
            if d > self.dist[u as usize] {
                continue;
            }
            let (targets, travels) = graph.out_edges(NodeId(u));
            for (&v, &w) in targets.iter().zip(travels) {
                let nd = d.saturating_add(w).min(UNREACHABLE);
                if nd < self.dist[v as usize] {
                    self.settle(v, nd);
                }
            }
        }
        UNREACHABLE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;

    fn path_graph(n: u32, travel: Dur) -> RoadGraph {
        let coords = (0..n).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..n - 1)
            .map(|i| Edge {
                from: NodeId(i),
                to: NodeId(i + 1),
                travel,
            })
            .collect();
        RoadGraph::from_undirected_edges(coords, edges)
    }

    #[test]
    fn reuse_across_queries_gives_fresh_results() {
        let g = path_graph(6, 7);
        let mut ws = DijkstraWorkspace::new(g.node_count());
        assert_eq!(ws.point_to_point(&g, NodeId(0), NodeId(5)), 35);
        assert_eq!(ws.point_to_point(&g, NodeId(5), NodeId(0)), 35);
        assert_eq!(ws.point_to_point(&g, NodeId(2), NodeId(2)), 0);
        let d = ws.single_source(&g, NodeId(1));
        assert_eq!(d, &[7, 0, 7, 14, 21, 28]);
        // And back to a point query after a full sweep.
        assert_eq!(ws.point_to_point(&g, NodeId(0), NodeId(1)), 7);
    }

    #[test]
    fn reuse_across_graphs_of_different_sizes() {
        let small = path_graph(3, 5);
        let big = path_graph(10, 5);
        let mut ws = DijkstraWorkspace::new(small.node_count());
        assert_eq!(ws.point_to_point(&small, NodeId(0), NodeId(2)), 10);
        assert_eq!(ws.point_to_point(&big, NodeId(0), NodeId(9)), 45);
        assert_eq!(ws.point_to_point(&small, NodeId(2), NodeId(0)), 10);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        // Two hops of Dur::MAX/3 would wrap i64; the workspace must report
        // the pair as unreachable instead.
        let g = path_graph(3, Dur::MAX / 3);
        let mut ws = DijkstraWorkspace::new(g.node_count());
        assert_eq!(ws.point_to_point(&g, NodeId(0), NodeId(2)), UNREACHABLE);
        let d = ws.single_source(&g, NodeId(0));
        assert!(d.iter().all(|&x| (0..=UNREACHABLE).contains(&x)));
    }

    #[test]
    fn unreachable_target_exhausts_cleanly() {
        let g = RoadGraph::from_edges(vec![(0.0, 0.0), (1.0, 1.0)], vec![]);
        let mut ws = DijkstraWorkspace::new(g.node_count());
        assert_eq!(ws.point_to_point(&g, NodeId(0), NodeId(1)), UNREACHABLE);
        assert_eq!(ws.point_to_point(&g, NodeId(0), NodeId(1)), UNREACHABLE);
    }
}
