//! `g × g` grid spatial index (Section VII-A, *Implementation*).
//!
//! The paper partitions the examined city area into grid cells and uses the
//! index both (a) to speed up nearest-worker / nearby-order search and (b)
//! to quantize locations for the MDP state (Section VI-A). [`GridIndex`]
//! maps road nodes to cells and supports expanding-ring queries.

use crate::graph::RoadGraph;
use serde::{Deserialize, Serialize};
use watter_core::NodeId;

/// Uniform grid over the bounding box of the graph's node coordinates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridIndex {
    dim: usize,
    min: (f64, f64),
    cell_size: (f64, f64),
    /// Node ids bucketed per cell (row-major).
    buckets: Vec<Vec<NodeId>>,
    /// Cell of each node.
    cell_of: Vec<u32>,
}

impl GridIndex {
    /// Build a `dim × dim` index over the graph's nodes.
    ///
    /// # Panics
    /// Panics if `dim == 0` or the graph has no nodes.
    pub fn build(graph: &RoadGraph, dim: usize) -> Self {
        assert!(dim > 0, "grid dimension must be positive");
        assert!(graph.node_count() > 0, "grid over empty graph");
        let xs = graph.coords().iter().map(|c| c.0);
        let ys = graph.coords().iter().map(|c| c.1);
        let min_x = xs.clone().fold(f64::INFINITY, f64::min);
        let max_x = xs.fold(f64::NEG_INFINITY, f64::max);
        let min_y = ys.clone().fold(f64::INFINITY, f64::min);
        let max_y = ys.fold(f64::NEG_INFINITY, f64::max);
        // Avoid zero-width boxes for degenerate (collinear) inputs.
        let w = (max_x - min_x).max(f64::EPSILON);
        let h = (max_y - min_y).max(f64::EPSILON);
        let cell_size = (w / dim as f64, h / dim as f64);
        let mut buckets = vec![Vec::new(); dim * dim];
        let mut cell_of = Vec::with_capacity(graph.node_count());
        for n in graph.nodes() {
            let (x, y) = graph.coord(n);
            let cx = (((x - min_x) / cell_size.0) as usize).min(dim - 1);
            let cy = (((y - min_y) / cell_size.1) as usize).min(dim - 1);
            let cell = cy * dim + cx;
            buckets[cell].push(n);
            cell_of.push(cell as u32);
        }
        Self {
            dim,
            min: (min_x, min_y),
            cell_size,
            buckets,
            cell_of,
        }
    }

    /// Grid dimension `g`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of cells `g²`.
    #[inline]
    pub fn cells(&self) -> usize {
        self.dim * self.dim
    }

    /// Cell index (row-major) of a node.
    #[inline]
    pub fn cell_of(&self, n: NodeId) -> usize {
        self.cell_of[n.index()] as usize
    }

    /// `(col, row)` coordinates of a cell index.
    #[inline]
    pub fn cell_xy(&self, cell: usize) -> (usize, usize) {
        (cell % self.dim, cell / self.dim)
    }

    /// Nodes bucketed in a cell.
    #[inline]
    pub fn nodes_in_cell(&self, cell: usize) -> &[NodeId] {
        &self.buckets[cell]
    }

    /// Visit cells in expanding square rings around the cell of `center`,
    /// invoking `f(cell)` until it returns `true` ("found enough") or the
    /// whole grid is exhausted. Ring `r` contains cells with Chebyshev
    /// distance exactly `r` from the center; the callback sees every cell of
    /// a ring before the next ring starts, enabling nearest-candidate search
    /// with early exit.
    pub fn ring_search(&self, center: NodeId, mut f: impl FnMut(usize) -> bool) {
        let c = self.cell_of(center);
        let (cx, cy) = self.cell_xy(c);
        let dim = self.dim as i64;
        for r in 0..self.dim as i64 {
            let mut hit_any_cell = false;
            let mut done = false;
            for dy in -r..=r {
                for dx in -r..=r {
                    if dx.abs().max(dy.abs()) != r {
                        continue; // interior already visited in earlier ring
                    }
                    let x = cx as i64 + dx;
                    let y = cy as i64 + dy;
                    if x < 0 || y < 0 || x >= dim || y >= dim {
                        continue;
                    }
                    hit_any_cell = true;
                    if f((y * dim + x) as usize) {
                        done = true;
                    }
                }
            }
            if done || (!hit_any_cell && r > 0 && r >= dim) {
                return;
            }
        }
    }

    /// Chebyshev cell distance between two nodes' cells — a cheap proximity
    /// proxy for shareability pre-filtering.
    pub fn cell_distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.cell_xy(self.cell_of(a));
        let (bx, by) = self.cell_xy(self.cell_of(b));
        ax.abs_diff(bx).max(ay.abs_diff(by))
    }

    /// The smaller of the two cell side lengths, in coordinate units.
    ///
    /// Two nodes whose cells are `d ≥ 1` apart (Chebyshev) are at least
    /// `(d − 1) × min_cell_extent()` apart in Euclidean distance — the
    /// geometric leg of the spatial candidate-pruning bound.
    #[inline]
    pub fn min_cell_extent(&self) -> f64 {
        self.cell_size.0.min(self.cell_size.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::{CityConfig, CityTopology};

    fn city() -> RoadGraph {
        CityConfig {
            width: 8,
            height: 8,
            topology: CityTopology::Uniform,
            ..CityConfig::default()
        }
        .generate(42)
    }

    #[test]
    fn every_node_bucketed_once() {
        let g = city();
        let idx = GridIndex::build(&g, 4);
        let total: usize = (0..idx.cells()).map(|c| idx.nodes_in_cell(c).len()).sum();
        assert_eq!(total, g.node_count());
        for n in g.nodes() {
            let cell = idx.cell_of(n);
            assert!(idx.nodes_in_cell(cell).contains(&n));
        }
    }

    #[test]
    fn ring_search_visits_center_first() {
        let g = city();
        let idx = GridIndex::build(&g, 4);
        let center = NodeId(0);
        let mut first = None;
        idx.ring_search(center, |cell| {
            if first.is_none() {
                first = Some(cell);
            }
            true // stop after ring 0
        });
        assert_eq!(first, Some(idx.cell_of(center)));
    }

    #[test]
    fn ring_search_covers_grid_without_early_exit() {
        let g = city();
        let idx = GridIndex::build(&g, 4);
        let mut seen = vec![false; idx.cells()];
        idx.ring_search(NodeId(0), |cell| {
            assert!(!seen[cell], "cell {cell} visited twice");
            seen[cell] = true;
            false
        });
        assert!(seen.iter().all(|&s| s), "some cells unvisited");
    }

    #[test]
    fn cell_distance_is_chebyshev() {
        let g = city();
        let idx = GridIndex::build(&g, 4);
        for n in g.nodes() {
            assert_eq!(idx.cell_distance(n, n), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let g = city();
        GridIndex::build(&g, 0);
    }

    /// Every node lands in a valid cell: bucketed exactly once, and the
    /// recorded cell is within range.
    fn assert_well_bucketed(g: &RoadGraph, idx: &GridIndex) {
        let total: usize = (0..idx.cells()).map(|c| idx.nodes_in_cell(c).len()).sum();
        assert_eq!(total, g.node_count());
        for n in g.nodes() {
            let cell = idx.cell_of(n);
            assert!(cell < idx.cells(), "cell {cell} out of range");
            assert!(idx.nodes_in_cell(cell).contains(&n));
        }
    }

    /// Exhaustive ring search from `center` must terminate, visit no cell
    /// twice, and cover the whole grid.
    fn assert_ring_search_terminates(idx: &GridIndex, center: NodeId) {
        let mut seen = vec![0u32; idx.cells()];
        idx.ring_search(center, |cell| {
            seen[cell] += 1;
            false // never satisfied: worst case for termination
        });
        assert!(seen.iter().all(|&s| s == 1), "visits: {seen:?}");
    }

    #[test]
    fn identical_coordinates_degenerate_to_one_cell() {
        // All nodes on one point: the zero-width bounding box relies on the
        // f64::EPSILON guard; every node must still get a valid cell.
        let g = RoadGraph::from_edges(vec![(2.5, -3.25); 9], vec![]);
        let idx = GridIndex::build(&g, 4);
        assert_well_bucketed(&g, &idx);
        let first = idx.cell_of(NodeId(0));
        for n in g.nodes() {
            assert_eq!(idx.cell_of(n), first, "co-located nodes split cells");
        }
        assert_ring_search_terminates(&idx, NodeId(0));
    }

    #[test]
    fn collinear_horizontal_coordinates_bucket_and_search() {
        // Zero height: the y extent collapses to the epsilon guard.
        let coords: Vec<(f64, f64)> = (0..12).map(|i| (i as f64, 5.0)).collect();
        let g = RoadGraph::from_edges(coords, vec![]);
        let idx = GridIndex::build(&g, 5);
        assert_well_bucketed(&g, &idx);
        for n in g.nodes() {
            assert_ring_search_terminates(&idx, n);
        }
        // Chebyshev distances along the line stay monotone in x.
        assert!(
            idx.cell_distance(NodeId(0), NodeId(11)) >= idx.cell_distance(NodeId(0), NodeId(5))
        );
    }

    #[test]
    fn collinear_vertical_coordinates_bucket_and_search() {
        let coords: Vec<(f64, f64)> = (0..7).map(|i| (-1.0, i as f64 * 0.5)).collect();
        let g = RoadGraph::from_edges(coords, vec![]);
        let idx = GridIndex::build(&g, 3);
        assert_well_bucketed(&g, &idx);
        assert_ring_search_terminates(&idx, NodeId(3));
    }

    #[test]
    fn single_node_graph_ring_search_terminates() {
        let g = RoadGraph::from_edges(vec![(0.0, 0.0)], vec![]);
        let idx = GridIndex::build(&g, 6);
        assert_well_bucketed(&g, &idx);
        assert_ring_search_terminates(&idx, NodeId(0));
    }
}
