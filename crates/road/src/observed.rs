//! Span-timed wrapper over travel-cost oracles.
//!
//! [`ObservedOracle`] forwards every query to the wrapped oracle and
//! records *sampled* point-query latencies into a per-backend
//! observability stage ([`watter_obs::Stage::OracleDense`] and
//! siblings). Answers are the inner oracle's answers verbatim, so
//! wrapping never changes simulation outcomes — only wall-clock
//! timings, which are outside the determinism contract anyway.
//!
//! # Sampling
//!
//! Point queries are the hottest call in the whole stack (a dense-table
//! hit is a few nanoseconds); reading the monotonic clock twice per
//! query would multiply their cost and poison the very latencies being
//! measured. The wrapper therefore times one query in
//! [`SAMPLE_EVERY`] — a single relaxed atomic increment decides — and
//! leaves the rest untouched. Stage *counts* in the snapshot are
//! sampled counts; exact query totals come from the cache counters
//! ([`crate::CachedOracle::hits`] / `misses`), which the front end
//! mirrors into the registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use watter_core::{Dur, NodeId, TravelBound, TravelCost};
use watter_obs::{Recorder, Stage};

/// One query in this many is span-timed (power of two so the modulo is
/// a mask).
pub const SAMPLE_EVERY: u64 = 64;

/// Map an oracle backend name (as printed by experiment tables:
/// `dense`, `alt`, `ch`, ...) to its latency stage.
pub fn stage_for_backend(name: &str) -> Stage {
    match name {
        "dense" | "matrix" => Stage::OracleDense,
        "alt" | "astar" => Stage::OracleAlt,
        "ch" => Stage::OracleCh,
        _ => Stage::OracleOther,
    }
}

/// A transparent, sampling latency probe around any travel oracle.
#[derive(Debug)]
pub struct ObservedOracle<C> {
    inner: C,
    recorder: Recorder,
    stage: Stage,
    tick: AtomicU64,
}

impl<C> ObservedOracle<C> {
    /// Wrap `inner`, recording sampled query latencies under `stage`.
    pub fn new(inner: C, recorder: Recorder, stage: Stage) -> Self {
        Self {
            inner,
            recorder,
            stage,
            tick: AtomicU64::new(0),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: TravelCost> TravelCost for ObservedOracle<C> {
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        if !self
            .tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(SAMPLE_EVERY)
        {
            return self.inner.cost(a, b);
        }
        let t0 = Instant::now();
        let cost = self.inner.cost(a, b);
        self.recorder
            .record_stage_nanos(self.stage, t0.elapsed().as_nanos() as u64);
        cost
    }
}

impl<C: TravelBound> TravelBound for ObservedOracle<C> {
    #[inline]
    fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        self.inner.lower_bound(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Line;
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {
        fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 5
        }
    }

    #[test]
    fn answers_are_transparent() {
        let rec = Recorder::enabled();
        let o = ObservedOracle::new(Line, rec.clone(), Stage::OracleDense);
        for i in 0..200u32 {
            assert_eq!(o.cost(NodeId(i), NodeId(0)), i as i64 * 10);
        }
        assert_eq!(o.lower_bound(NodeId(0), NodeId(4)), 20);
        // 200 queries at 1-in-64 sampling: at least the first, third, ...
        let sampled = rec.stage_count(Stage::OracleDense);
        assert!(sampled >= 3, "sampled {sampled}");
        assert!(sampled <= 4, "sampled {sampled}");
    }

    #[test]
    fn backend_names_map_to_stages() {
        assert_eq!(stage_for_backend("dense"), Stage::OracleDense);
        assert_eq!(stage_for_backend("alt"), Stage::OracleAlt);
        assert_eq!(stage_for_backend("ch"), Stage::OracleCh);
        assert_eq!(stage_for_backend("mystery"), Stage::OracleOther);
    }

    #[test]
    fn disabled_recorder_still_answers() {
        let o = ObservedOracle::new(Line, Recorder::disabled(), Stage::OracleOther);
        assert_eq!(o.cost(NodeId(3), NodeId(8)), 50);
    }
}
