//! Sharded memoization layer over point-query travel-cost oracles.
//!
//! Within one dispatch batch the same `(pickup, dropoff)` pair is queried
//! many times: the shareability pre-filter, the pair planner, clique
//! validation, group-expiry checks and worker assignment all walk the same
//! few legs. For the dense table that repetition is free; for the
//! [`AltOracle`](crate::AltOracle) every repeat is another A* search.
//! [`CachedOracle`] wraps any [`TravelCost`] backend with a fixed-capacity,
//! direct-mapped cache: hits are allocation-free, eviction is deterministic
//! (slot index is a pure function of the queried pair), and cached answers
//! are the inner oracle's answers verbatim — so a cached run is
//! bit-identical to an uncached one (`tests/accel.rs` proves it
//! property-wise).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use watter_core::{Dur, NodeId, TravelBound, TravelCost};

/// Number of independently locked shards (power of two). Shards bound lock
/// contention when the oracle is shared across threads; within one shard the
/// cache is a direct-mapped table.
const SHARDS: usize = 16;

/// `(a, b)` packed into the shard key; `u64::MAX` doubles as the empty-slot
/// sentinel (it would require both node ids to be `u32::MAX`, which no graph
/// in this workspace can produce — and such a query bypasses the cache).
const EMPTY: u64 = u64::MAX;

#[derive(Clone, Copy, Debug)]
struct Entry {
    key: u64,
    cost: Dur,
}

/// A fixed-capacity, deterministic memoization layer over a point-query
/// travel-cost oracle.
///
/// * **Hits are allocation-free**: one hash, one lock, one array read.
/// * **Eviction is deterministic**: the cache is direct-mapped, so the slot
///   a pair lands in depends only on the pair, never on insertion history —
///   runs stay reproducible from the scenario seed alone.
/// * **Transparent**: answers are the inner oracle's answers, so wrapping
///   never changes simulation results, only their latency.
///
/// Wrap by value, reference or `Arc` — anything implementing
/// [`TravelCost`] works; [`TravelBound`] is forwarded when the inner oracle
/// provides it (bounds are `O(landmarks)` and not worth caching).
#[derive(Debug)]
pub struct CachedOracle<C> {
    inner: C,
    shards: Vec<Mutex<Vec<Entry>>>,
    slot_mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<C: TravelCost> CachedOracle<C> {
    /// Default total capacity: 64 Ki entries ≈ 1 MiB — enough to hold every
    /// pair a dispatch batch touches at the paper's densities.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Wrap `inner` with a cache of `capacity` total entries (rounded up to
    /// a power of two, minimum one entry per shard).
    pub fn new(inner: C, capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).next_power_of_two().max(1);
        let shards = (0..SHARDS)
            .map(|_| {
                Mutex::new(vec![
                    Entry {
                        key: EMPTY,
                        cost: 0
                    };
                    per_shard
                ])
            })
            .collect();
        Self {
            inner,
            shards,
            slot_mask: (per_shard - 1) as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Wrap `inner` with [`Self::DEFAULT_CAPACITY`] entries.
    pub fn with_default_capacity(inner: C) -> Self {
        Self::new(inner, Self::DEFAULT_CAPACITY)
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (inner-oracle queries) since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total entries across all shards.
    pub fn capacity(&self) -> usize {
        SHARDS * (self.slot_mask as usize + 1)
    }

    /// SplitMix64 finalizer: spreads the packed pair over shard and slot
    /// bits so structured query patterns (scans along one row) don't collide.
    #[inline]
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

impl<C: TravelCost> TravelCost for CachedOracle<C> {
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        if key == EMPTY {
            return self.inner.cost(a, b);
        }
        let h = Self::mix(key);
        let shard = &self.shards[(h as usize) & (SHARDS - 1)];
        let slot = ((h >> SHARDS.trailing_zeros()) & self.slot_mask) as usize;
        let mut entries = shard.lock().unwrap_or_else(|e| e.into_inner());
        let e = &mut entries[slot];
        if e.key == key {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return e.cost;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let cost = self.inner.cost(a, b);
        *e = Entry { key, cost };
        cost
    }
}

impl<C: TravelBound> TravelBound for CachedOracle<C> {
    #[inline]
    fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        self.inner.lower_bound(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counting 1-D metric: |a − b| × 10 s, tracking how often it is asked.
    struct Line(AtomicUsize);
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            self.0.fetch_add(1, Ordering::Relaxed);
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {
        fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 5
        }
    }

    #[test]
    fn hits_skip_the_inner_oracle() {
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 64);
        assert_eq!(c.cost(NodeId(3), NodeId(8)), 50);
        assert_eq!(c.cost(NodeId(3), NodeId(8)), 50);
        assert_eq!(c.cost(NodeId(3), NodeId(8)), 50);
        assert_eq!(c.inner().0.load(Ordering::Relaxed), 1);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn directions_are_distinct_keys() {
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 64);
        assert_eq!(c.cost(NodeId(1), NodeId(4)), 30);
        assert_eq!(c.cost(NodeId(4), NodeId(1)), 30);
        assert_eq!(c.inner().0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn tiny_capacity_still_answers_correctly() {
        // One slot per shard: constant eviction, never a wrong answer.
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 1);
        for i in 0..200u32 {
            let (a, b) = (NodeId(i % 17), NodeId((i * 7) % 23));
            assert_eq!(c.cost(a, b), (a.0 as i64 - b.0 as i64).abs() * 10);
        }
    }

    #[test]
    fn lower_bound_passes_through_uncached() {
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 64);
        assert_eq!(c.lower_bound(NodeId(0), NodeId(6)), 30);
        assert_eq!(c.inner().0.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two_per_shard() {
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 100);
        // 100 / 16 shards = 6.25 → 7 → 8 slots per shard.
        assert_eq!(c.capacity(), 16 * 8);
    }
}
