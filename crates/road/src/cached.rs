//! Lock-free memoization layer over point-query travel-cost oracles.
//!
//! Within one dispatch batch the same `(pickup, dropoff)` pair is queried
//! many times: the shareability pre-filter, the pair planner, clique
//! validation, group-expiry checks and worker assignment all walk the same
//! few legs. For the dense table that repetition is free; for the
//! [`AltOracle`](crate::AltOracle) every repeat is another A* search.
//! [`CachedOracle`] wraps any [`TravelCost`] backend with a fixed-capacity,
//! direct-mapped cache: hits are allocation-free, eviction is deterministic
//! (slot index is a pure function of the queried pair), and cached answers
//! are the inner oracle's answers verbatim — so a cached run is
//! bit-identical to an uncached one (`tests/accel.rs` proves it
//! property-wise).
//!
//! # Concurrency
//!
//! The previous design guarded 16 `Mutex<Vec<Entry>>` shards; under the
//! parallel dispatch engine those locks serialize *readers*, which is
//! exactly the common case (`micro_road`'s contention bench measures the
//! difference). Slots are now independent seqlocks built from three
//! atomics, so readers never block and never block each other:
//!
//! * **read**: load `seq` (must be even = no writer mid-flight), then
//!   `key`, then `cost`, then re-load `seq`; any mismatch → treat as a
//!   miss. The writer bumps `seq` to odd *before* publishing `key`/`cost`
//!   (each with `Release`), so a reader that observes a new datum is
//!   guaranteed to observe a changed `seq` on the re-load and reject the
//!   torn pair — the classic seqlock argument, per-slot.
//! * **write**: claim the slot by CAS-ing `seq` from even to odd; on
//!   contention simply *skip caching* (the computed answer is returned
//!   either way, correctness never depends on a store landing).
//!
//! A miss recomputes through the inner oracle, so answers are exact under
//! every interleaving; only the `hits`/`misses` counters may differ
//! between concurrent schedules (they are diagnostics, not outcomes).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;
use watter_core::{Dur, NodeId, TravelBound, TravelCost};
use watter_obs::{Recorder, Stage, TraceEvent};

/// `(a, b)` packed into the slot key; `u64::MAX` doubles as the empty-slot
/// sentinel (it would require both node ids to be `u32::MAX`, which no graph
/// in this workspace can produce — and such a query bypasses the cache).
const EMPTY: u64 = u64::MAX;

/// One direct-mapped cache slot: a per-slot seqlock (see module docs).
#[derive(Debug)]
struct Slot {
    /// Even = stable, odd = writer mid-flight. Incremented by two per
    /// completed publish.
    seq: AtomicU64,
    key: AtomicU64,
    cost: AtomicI64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            key: AtomicU64::new(EMPTY),
            cost: AtomicI64::new(0),
        }
    }

    /// Read the cached cost for `key`, or `None` when the slot holds
    /// another pair or a concurrent writer may have torn the read.
    #[inline]
    fn read(&self, key: u64) -> Option<Dur> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 != 0 || self.key.load(Ordering::Acquire) != key {
            return None;
        }
        let cost = self.cost.load(Ordering::Acquire);
        (self.seq.load(Ordering::Acquire) == s1).then_some(cost)
    }

    /// Publish `(key, cost)`; silently skips when another writer holds the
    /// slot (the answer was computed exactly and is returned regardless).
    /// Returns `true` when the store displaced a *different* cached pair —
    /// the direct-mapped notion of an eviction.
    #[inline]
    fn publish(&self, key: u64, cost: Dur) -> bool {
        let s = self.seq.load(Ordering::Relaxed);
        if s & 1 != 0 {
            return false;
        }
        if self
            .seq
            .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        // The slot is claimed (seq odd): safe to inspect the old key.
        let old = self.key.load(Ordering::Relaxed);
        self.key.store(key, Ordering::Release);
        self.cost.store(cost, Ordering::Release);
        self.seq.store(s + 2, Ordering::Release);
        old != EMPTY && old != key
    }
}

/// A fixed-capacity, deterministic memoization layer over a point-query
/// travel-cost oracle.
///
/// * **Hits are allocation-free and lock-free**: one hash, four atomic
///   loads; concurrent readers proceed fully independently.
/// * **Eviction is deterministic**: the cache is direct-mapped, so the slot
///   a pair lands in depends only on the pair, never on insertion history —
///   runs stay reproducible from the scenario seed alone.
/// * **Transparent**: answers are the inner oracle's answers, so wrapping
///   never changes simulation results, only their latency. That holds under
///   concurrency too: a torn or contended slot degrades to an exact
///   recompute, never to a wrong answer.
///
/// Wrap by value, reference or `Arc` — anything implementing
/// [`TravelCost`] works; [`TravelBound`] is forwarded when the inner oracle
/// provides it (bounds are `O(landmarks)` and not worth caching).
#[derive(Debug)]
pub struct CachedOracle<C> {
    inner: C,
    slots: Vec<Slot>,
    slot_mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Observability handle (disabled by default): sampled hit/miss
    /// latency stages plus eviction trace events. Exact hit/miss
    /// *totals* stay in the atomics above — per-query counter traffic
    /// through the registry would double the cost of a cache hit.
    recorder: Recorder,
    /// Query counter driving the 1-in-[`crate::observed::SAMPLE_EVERY`]
    /// latency sampling; only touched when the recorder is enabled.
    tick: AtomicU64,
}

impl<C: TravelCost> CachedOracle<C> {
    /// Default total capacity: 64 Ki entries ≈ 1.5 MiB — enough to hold
    /// every pair a dispatch batch touches at the paper's densities.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Wrap `inner` with a cache of `capacity` slots (rounded up to a
    /// power of two, minimum one).
    pub fn new(inner: C, capacity: usize) -> Self {
        let slots = capacity.next_power_of_two().max(1);
        Self {
            inner,
            slots: (0..slots).map(|_| Slot::empty()).collect(),
            slot_mask: (slots - 1) as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            recorder: Recorder::disabled(),
            tick: AtomicU64::new(0),
        }
    }

    /// Attach an observability recorder: hit/miss latencies are sampled
    /// into the `oracle_cache_hit` / `oracle_cache_miss` stages and
    /// evictions emit trace events. Answers are unaffected.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Wrap `inner` with [`Self::DEFAULT_CAPACITY`] entries.
    pub fn with_default_capacity(inner: C) -> Self {
        Self::new(inner, Self::DEFAULT_CAPACITY)
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Cache hits since construction. Under concurrent access this is a
    /// diagnostic: schedules may turn a would-be hit into a recompute, so
    /// only single-threaded counts are exactly reproducible.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (inner-oracle queries) since construction; same
    /// caveat as [`Self::hits`].
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Published entries that displaced a *different* cached pair (the
    /// direct-mapped notion of an eviction); same caveat as [`Self::hits`].
    /// High eviction counts signal the working set outgrowing
    /// [`Self::capacity`].
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// SplitMix64 finalizer: spreads the packed pair over the slot bits so
    /// structured query patterns (scans along one row) don't collide.
    #[inline]
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

impl<C: TravelCost> TravelCost for CachedOracle<C> {
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        if key == EMPTY {
            return self.inner.cost(a, b);
        }
        let slot_idx = (Self::mix(key) & self.slot_mask) as usize;
        let slot = &self.slots[slot_idx];
        // Latency sampling: one query in SAMPLE_EVERY reads the clock
        // (timing every hit would cost more than the hit itself).
        let t0 = if self.recorder.is_enabled()
            && self
                .tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(crate::observed::SAMPLE_EVERY)
        {
            Some(Instant::now())
        } else {
            None
        };
        if let Some(cost) = slot.read(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(t0) = t0 {
                self.recorder
                    .record_stage_nanos(Stage::OracleCacheHit, t0.elapsed().as_nanos() as u64);
            }
            return cost;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let cost = self.inner.cost(a, b);
        if slot.publish(key, cost) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            // The cache has no virtual clock; eviction traces are
            // stamped 0 and ordered by their sequence numbers.
            self.recorder.trace(
                0,
                TraceEvent::CacheEviction {
                    slot: slot_idx as u64,
                },
            );
        }
        if let Some(t0) = t0 {
            self.recorder
                .record_stage_nanos(Stage::OracleCacheMiss, t0.elapsed().as_nanos() as u64);
        }
        cost
    }
}

impl<C: TravelBound> TravelBound for CachedOracle<C> {
    #[inline]
    fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        self.inner.lower_bound(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counting 1-D metric: |a − b| × 10 s, tracking how often it is asked.
    struct Line(AtomicUsize);
    impl TravelCost for Line {
        fn cost(&self, a: NodeId, b: NodeId) -> Dur {
            self.0.fetch_add(1, Ordering::Relaxed);
            (a.0 as i64 - b.0 as i64).abs() * 10
        }
    }
    impl TravelBound for Line {
        fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
            (a.0 as i64 - b.0 as i64).abs() * 5
        }
    }

    #[test]
    fn hits_skip_the_inner_oracle() {
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 64);
        assert_eq!(c.cost(NodeId(3), NodeId(8)), 50);
        assert_eq!(c.cost(NodeId(3), NodeId(8)), 50);
        assert_eq!(c.cost(NodeId(3), NodeId(8)), 50);
        assert_eq!(c.inner().0.load(Ordering::Relaxed), 1);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn directions_are_distinct_keys() {
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 64);
        assert_eq!(c.cost(NodeId(1), NodeId(4)), 30);
        assert_eq!(c.cost(NodeId(4), NodeId(1)), 30);
        assert_eq!(c.inner().0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn tiny_capacity_still_answers_correctly() {
        // One slot: constant eviction, never a wrong answer.
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 1);
        for i in 0..200u32 {
            let (a, b) = (NodeId(i % 17), NodeId((i * 7) % 23));
            assert_eq!(c.cost(a, b), (a.0 as i64 - b.0 as i64).abs() * 10);
        }
        // Every distinct pair after the first displaced its predecessor.
        assert!(c.evictions() > 0);
        assert!(c.evictions() <= c.misses());
    }

    #[test]
    fn evictions_count_only_displacements() {
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 1);
        // First fill: empty slot, not an eviction.
        c.cost(NodeId(1), NodeId(2));
        assert_eq!(c.evictions(), 0);
        // Re-publish of the same pair after a hit: no displacement.
        c.cost(NodeId(1), NodeId(2));
        assert_eq!(c.evictions(), 0);
        // A different pair lands in the only slot: one eviction.
        c.cost(NodeId(3), NodeId(4));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn lower_bound_passes_through_uncached() {
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 64);
        assert_eq!(c.lower_bound(NodeId(0), NodeId(6)), 30);
        assert_eq!(c.inner().0.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 100);
        assert_eq!(c.capacity(), 128);
    }

    #[test]
    fn claimed_slot_skips_publish_but_still_answers() {
        // Simulate a writer parked mid-publish: the slot's seq is odd, so
        // readers treat it as a miss and publishers back off — the query
        // still returns the exact answer.
        let c = CachedOracle::new(Line(AtomicUsize::new(0)), 1);
        c.slots[0].seq.store(1, Ordering::Release);
        assert_eq!(c.cost(NodeId(3), NodeId(8)), 50);
        assert_eq!(c.cost(NodeId(3), NodeId(8)), 50);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 2);
        // Slot untouched by the backed-off publishes.
        assert_eq!(c.slots[0].seq.load(Ordering::Acquire), 1);
    }

    #[test]
    fn concurrent_hammering_never_returns_a_wrong_cost() {
        use std::sync::Arc;
        // Tiny cache → constant eviction and slot contention; every thread
        // checks every answer against the ground-truth metric.
        let c = Arc::new(CachedOracle::new(Line(AtomicUsize::new(0)), 4));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..5_000u32 {
                        let a = NodeId((i.wrapping_mul(7) + t) % 29);
                        let b = NodeId((i.wrapping_mul(13) + 3 * t) % 31);
                        assert_eq!(c.cost(a, b), (a.0 as i64 - b.0 as i64).abs() * 10);
                    }
                });
            }
        });
        // Every query was answered (hit or miss), none lost.
        assert_eq!(c.hits() + c.misses(), 4 * 5_000);
    }
}
