//! Exact shortest paths (Dijkstra).
//!
//! Two entry points: [`single_source`] computes the full distance vector
//! used to build the APSP table, and [`shortest_path_cost`] is a
//! point-to-point query with early termination used when a table would be
//! too large. Both run on a [`DijkstraWorkspace`]; `shortest_path_cost`
//! reuses a thread-local one, so repeated point queries allocate nothing.
//!
//! Distances saturate at [`UNREACHABLE`]: a path whose cost would reach it
//! (≈ 73 000 years of travel) is reported as no path at all, which keeps
//! relaxation overflow-free for any edge weights.

use crate::graph::RoadGraph;
use crate::workspace::DijkstraWorkspace;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use watter_core::{Dur, NodeId};

/// Distance value for unreachable nodes.
pub const UNREACHABLE: Dur = Dur::MAX / 4;

thread_local! {
    /// Shared scratch for the free-function entry points below.
    static SCRATCH: RefCell<DijkstraWorkspace> = RefCell::new(DijkstraWorkspace::default());
}

/// Full single-source shortest-path distances from `src`.
///
/// Allocates the returned vector; bulk callers (APSP construction,
/// landmark preprocessing) should drive a [`DijkstraWorkspace`] directly.
pub fn single_source(graph: &RoadGraph, src: NodeId) -> Vec<Dur> {
    SCRATCH.with(|ws| ws.borrow_mut().single_source(graph, src).to_vec())
}

/// Point-to-point shortest path cost with early exit at the target.
///
/// Returns [`UNREACHABLE`] when no path exists. Runs on a thread-local
/// [`DijkstraWorkspace`], so it performs no per-query allocation.
pub fn shortest_path_cost(graph: &RoadGraph, src: NodeId, dst: NodeId) -> Dur {
    SCRATCH.with(|ws| ws.borrow_mut().point_to_point(graph, src, dst))
}

/// On-demand oracle wrapping point-to-point Dijkstra. Exact but slow; used
/// in tests as ground truth against [`crate::CostMatrix`].
#[derive(Clone, Debug)]
pub struct DijkstraOracle<'g> {
    graph: &'g RoadGraph,
}

impl<'g> DijkstraOracle<'g> {
    /// Wrap a graph.
    pub fn new(graph: &'g RoadGraph) -> Self {
        Self { graph }
    }
}

impl watter_core::TravelCost for DijkstraOracle<'_> {
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        shortest_path_cost(self.graph, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;

    fn path_graph(n: u32) -> RoadGraph {
        let coords = (0..n).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..n - 1)
            .map(|i| Edge {
                from: NodeId(i),
                to: NodeId(i + 1),
                travel: 7,
            })
            .collect();
        RoadGraph::from_undirected_edges(coords, edges)
    }

    #[test]
    fn line_distances() {
        let g = path_graph(5);
        let d = single_source(&g, NodeId(0));
        assert_eq!(d, vec![0, 7, 14, 21, 28]);
    }

    #[test]
    fn point_to_point_matches_single_source() {
        let g = path_graph(6);
        assert_eq!(shortest_path_cost(&g, NodeId(1), NodeId(4)), 21);
        assert_eq!(shortest_path_cost(&g, NodeId(4), NodeId(4)), 0);
    }

    #[test]
    fn disconnected_is_unreachable() {
        let g = RoadGraph::from_edges(vec![(0.0, 0.0), (1.0, 1.0)], vec![]);
        assert_eq!(shortest_path_cost(&g, NodeId(0), NodeId(1)), UNREACHABLE);
    }

    #[test]
    fn adversarial_weights_saturate_to_unreachable() {
        // Summing two of these would wrap i64 without saturation; the
        // public entry points must report such paths as unreachable, never
        // a wrapped/negative distance.
        let coords = (0..3).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..2)
            .map(|i| Edge {
                from: NodeId(i),
                to: NodeId(i + 1),
                travel: Dur::MAX / 3,
            })
            .collect();
        let g = RoadGraph::from_undirected_edges(coords, edges);
        assert_eq!(shortest_path_cost(&g, NodeId(0), NodeId(2)), UNREACHABLE);
        let d = single_source(&g, NodeId(0));
        assert!(d.iter().all(|&x| (0..=UNREACHABLE).contains(&x)));
    }

    #[test]
    fn takes_cheaper_of_two_routes() {
        // 0 -1- 2 (cost 2) vs 0 -> 2 direct (cost 5)
        let g = RoadGraph::from_undirected_edges(
            vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)],
            vec![
                Edge {
                    from: NodeId(0),
                    to: NodeId(1),
                    travel: 1,
                },
                Edge {
                    from: NodeId(1),
                    to: NodeId(2),
                    travel: 1,
                },
                Edge {
                    from: NodeId(0),
                    to: NodeId(2),
                    travel: 5,
                },
            ],
        );
        assert_eq!(shortest_path_cost(&g, NodeId(0), NodeId(2)), 2);
    }
}

/// Shortest path as an explicit node sequence (for traces/visualization).
///
/// Returns `None` when `dst` is unreachable from `src`.
pub fn shortest_path(graph: &RoadGraph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let n = graph.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut prev = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0, src.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if u == dst.0 {
            break;
        }
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in graph.neighbors(NodeId(u)) {
            let nd = d.saturating_add(w).min(UNREACHABLE);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = u;
                heap.push(Reverse((nd, v.0)));
            }
        }
    }
    if dist[dst.index()] >= UNREACHABLE {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = NodeId(prev[cur.index()]);
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod path_tests {
    use super::*;
    use crate::graph::Edge;

    fn line(n: u32) -> RoadGraph {
        let coords = (0..n).map(|i| (i as f64, 0.0)).collect();
        let edges = (0..n - 1)
            .map(|i| Edge {
                from: NodeId(i),
                to: NodeId(i + 1),
                travel: 5,
            })
            .collect();
        RoadGraph::from_undirected_edges(coords, edges)
    }

    #[test]
    fn path_matches_cost() {
        let g = line(6);
        let p = shortest_path(&g, NodeId(1), NodeId(4)).unwrap();
        assert_eq!(p, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        // Sum the actual edge weights along the returned path.
        let cost: i64 = p
            .windows(2)
            .map(|w| {
                g.neighbors(w[0])
                    .find(|&(n, _)| n == w[1])
                    .map(|(_, d)| d)
                    .expect("consecutive path nodes must be adjacent")
            })
            .sum();
        assert_eq!(cost, shortest_path_cost(&g, NodeId(1), NodeId(4)));
    }

    #[test]
    fn trivial_and_unreachable_paths() {
        let g = line(3);
        assert_eq!(
            shortest_path(&g, NodeId(2), NodeId(2)),
            Some(vec![NodeId(2)])
        );
        let iso = RoadGraph::from_edges(vec![(0.0, 0.0), (1.0, 1.0)], vec![]);
        assert_eq!(shortest_path(&iso, NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn path_endpoints_correct_on_grid() {
        let cfg = crate::citygen::CityConfig {
            width: 6,
            height: 6,
            ..Default::default()
        };
        let g = cfg.generate(3);
        let p = shortest_path(&g, NodeId(0), NodeId(35)).unwrap();
        assert_eq!(*p.first().unwrap(), NodeId(0));
        assert_eq!(*p.last().unwrap(), NodeId(35));
        // consecutive nodes must be road neighbours
        for w in p.windows(2) {
            assert!(g.neighbors(w[0]).any(|(v, _)| v == w[1]));
        }
    }
}
