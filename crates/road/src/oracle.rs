//! Oracle selection: one travel-cost backend per city scale.
//!
//! [`CityOracle`] is the concrete realization of a
//! [`watter_core::OracleKind`]: the dense [`CostMatrix`] for cities where
//! `n² × 4` bytes is affordable (O(1) queries), the landmark-guided
//! [`AltOracle`] when a light build matters more than query latency, or the
//! contraction-hierarchy [`ChOracle`] for 10⁵-node cities and beyond
//! (exact microsecond point queries after a one-off preprocessing pass).
//! All three return bit-identical costs; the choice is purely a
//! memory/latency trade-off, so workloads, the simulator and the CLI all
//! pick through this one type.

use crate::astar::AltOracle;
use crate::ch::ChOracle;
use crate::graph::RoadGraph;
use crate::matrix::CostMatrix;
use std::sync::Arc;
use watter_core::{Dur, Exec, NodeId, OracleKind, TravelBound, TravelCost, DENSE_NODE_LIMIT};

/// A travel-cost oracle selected by [`OracleKind`].
#[derive(Debug)]
pub enum CityOracle {
    /// Dense all-pairs table (small/medium cities).
    Dense(CostMatrix),
    /// Landmark-guided A* (large cities, cheap build).
    Alt(AltOracle),
    /// Contraction hierarchy (large cities, microsecond queries). Boxed:
    /// the hierarchy's inline header (a dozen Vec/CSR handles) dwarfs the
    /// other variants.
    Ch(Box<ChOracle>),
}

impl CityOracle {
    /// Build the oracle `kind` resolves to for this graph, with the default
    /// `Auto` dense-table threshold ([`DENSE_NODE_LIMIT`]).
    pub fn build(graph: &Arc<RoadGraph>, kind: OracleKind) -> Self {
        Self::build_with_limit(graph, kind, DENSE_NODE_LIMIT, &Exec::sequential())
    }

    /// Build with an explicit `Auto` threshold (CLI `--dense-limit`) and a
    /// fork-join executor for parallelizable preprocessing (currently the
    /// CH initial-priority pass; dense builds parallelize internally).
    pub fn build_with_limit(
        graph: &Arc<RoadGraph>,
        kind: OracleKind,
        dense_limit: usize,
        exec: &Exec,
    ) -> Self {
        match kind.resolve_with_limit(graph.node_count(), dense_limit) {
            OracleKind::Dense => CityOracle::Dense(CostMatrix::build(graph)),
            OracleKind::Alt { landmarks } => {
                CityOracle::Alt(AltOracle::build(Arc::clone(graph), landmarks))
            }
            OracleKind::Ch => {
                CityOracle::Ch(Box::new(ChOracle::build_with_exec(Arc::clone(graph), exec)))
            }
            OracleKind::Auto => unreachable!("resolve() never returns Auto"),
        }
    }

    /// Whether `b` is reachable from `a`.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        match self {
            CityOracle::Dense(m) => m.reachable(a, b),
            CityOracle::Alt(o) => o.reachable(a, b),
            CityOracle::Ch(o) => o.reachable(a, b),
        }
    }

    /// Human-readable backend description for logs and CLI output.
    pub fn describe(&self) -> String {
        match self {
            CityOracle::Dense(m) => format!("dense[{} nodes]", m.node_count()),
            CityOracle::Alt(o) => format!(
                "alt[{} nodes, {} landmarks]",
                o.graph().node_count(),
                o.landmarks().len()
            ),
            CityOracle::Ch(o) => format!(
                "ch[{} nodes, {} shortcuts]",
                o.graph().node_count(),
                o.shortcut_count()
            ),
        }
    }
}

impl TravelCost for CityOracle {
    #[inline]
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        match self {
            CityOracle::Dense(m) => m.cost(a, b),
            CityOracle::Alt(o) => o.cost(a, b),
            CityOracle::Ch(o) => o.cost(a, b),
        }
    }
}

impl TravelBound for CityOracle {
    /// Dense: the exact cost (O(1)); ALT: the landmark lower bound
    /// (`O(landmarks)`, no search); CH: the exact cost (queries are cheap
    /// enough that the tightest admissible bound is the answer itself).
    #[inline]
    fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        match self {
            CityOracle::Dense(m) => m.lower_bound(a, b),
            CityOracle::Alt(o) => o.lower_bound(a, b),
            CityOracle::Ch(o) => o.lower_bound(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::CityConfig;

    fn city() -> Arc<RoadGraph> {
        Arc::new(
            CityConfig {
                width: 6,
                height: 6,
                ..Default::default()
            }
            .generate(2),
        )
    }

    #[test]
    fn backends_agree_and_auto_picks_dense_for_small_cities() {
        let g = city();
        let auto = CityOracle::build(&g, OracleKind::Auto);
        assert!(matches!(auto, CityOracle::Dense(_)));
        let alt = CityOracle::build(&g, OracleKind::Alt { landmarks: 4 });
        assert!(matches!(alt, CityOracle::Alt(_)));
        let ch = CityOracle::build(&g, OracleKind::Ch);
        assert!(matches!(ch, CityOracle::Ch(_)));
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(auto.cost(a, b), alt.cost(a, b), "{a} -> {b}");
                assert_eq!(auto.cost(a, b), ch.cost(a, b), "{a} -> {b}");
                assert_eq!(auto.reachable(a, b), alt.reachable(a, b));
                assert_eq!(auto.reachable(a, b), ch.reachable(a, b));
            }
        }
    }

    #[test]
    fn dense_limit_moves_the_auto_boundary() {
        let g = city();
        let n = g.node_count();
        let exec = Exec::sequential();
        // Limit below the node count: Auto now builds the CH backend.
        let small = CityOracle::build_with_limit(&g, OracleKind::Auto, n - 1, &exec);
        assert!(matches!(small, CityOracle::Ch(_)));
        // Limit exactly at the node count: still dense.
        let exact = CityOracle::build_with_limit(&g, OracleKind::Auto, n, &exec);
        assert!(matches!(exact, CityOracle::Dense(_)));
        // Explicit kinds ignore the limit.
        let forced = CityOracle::build_with_limit(&g, OracleKind::Dense, 0, &exec);
        assert!(matches!(forced, CityOracle::Dense(_)));
    }

    #[test]
    fn describe_names_the_backend() {
        let g = city();
        assert!(CityOracle::build(&g, OracleKind::Dense)
            .describe()
            .starts_with("dense["));
        assert!(CityOracle::build(&g, OracleKind::Alt { landmarks: 2 })
            .describe()
            .starts_with("alt["));
        assert!(CityOracle::build(&g, OracleKind::Ch)
            .describe()
            .starts_with("ch["));
    }
}
