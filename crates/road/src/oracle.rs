//! Oracle selection: one travel-cost backend per city scale.
//!
//! [`CityOracle`] is the concrete realization of a
//! [`watter_core::OracleKind`]: the dense [`CostMatrix`] for cities where
//! `n² × 4` bytes is affordable (O(1) queries), or the landmark-guided
//! [`AltOracle`] for 10⁵-node cities and beyond (exact point queries from
//! `O(k·n)` memory). Both return bit-identical costs; the choice is purely
//! a memory/latency trade-off, so workloads, the simulator and the CLI all
//! pick through this one type.

use crate::astar::AltOracle;
use crate::graph::RoadGraph;
use crate::matrix::CostMatrix;
use std::sync::Arc;
use watter_core::{Dur, NodeId, OracleKind, TravelBound, TravelCost};

/// A travel-cost oracle selected by [`OracleKind`].
#[derive(Debug)]
pub enum CityOracle {
    /// Dense all-pairs table (small/medium cities).
    Dense(CostMatrix),
    /// Landmark-guided A* (large cities).
    Alt(AltOracle),
}

impl CityOracle {
    /// Build the oracle `kind` resolves to for this graph.
    pub fn build(graph: &Arc<RoadGraph>, kind: OracleKind) -> Self {
        match kind.resolve(graph.node_count()) {
            OracleKind::Dense => CityOracle::Dense(CostMatrix::build(graph)),
            OracleKind::Alt { landmarks } => {
                CityOracle::Alt(AltOracle::build(Arc::clone(graph), landmarks))
            }
            OracleKind::Auto => unreachable!("resolve() never returns Auto"),
        }
    }

    /// Whether `b` is reachable from `a`.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        match self {
            CityOracle::Dense(m) => m.reachable(a, b),
            CityOracle::Alt(o) => o.reachable(a, b),
        }
    }

    /// Human-readable backend description for logs and CLI output.
    pub fn describe(&self) -> String {
        match self {
            CityOracle::Dense(m) => format!("dense[{} nodes]", m.node_count()),
            CityOracle::Alt(o) => format!(
                "alt[{} nodes, {} landmarks]",
                o.graph().node_count(),
                o.landmarks().len()
            ),
        }
    }
}

impl TravelCost for CityOracle {
    #[inline]
    fn cost(&self, a: NodeId, b: NodeId) -> Dur {
        match self {
            CityOracle::Dense(m) => m.cost(a, b),
            CityOracle::Alt(o) => o.cost(a, b),
        }
    }
}

impl TravelBound for CityOracle {
    /// Dense: the exact cost (O(1)); ALT: the landmark lower bound
    /// (`O(landmarks)`, no search).
    #[inline]
    fn lower_bound(&self, a: NodeId, b: NodeId) -> Dur {
        match self {
            CityOracle::Dense(m) => m.lower_bound(a, b),
            CityOracle::Alt(o) => o.lower_bound(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::CityConfig;

    fn city() -> Arc<RoadGraph> {
        Arc::new(
            CityConfig {
                width: 6,
                height: 6,
                ..Default::default()
            }
            .generate(2),
        )
    }

    #[test]
    fn backends_agree_and_auto_picks_dense_for_small_cities() {
        let g = city();
        let auto = CityOracle::build(&g, OracleKind::Auto);
        assert!(matches!(auto, CityOracle::Dense(_)));
        let alt = CityOracle::build(&g, OracleKind::Alt { landmarks: 4 });
        assert!(matches!(alt, CityOracle::Alt(_)));
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(auto.cost(a, b), alt.cost(a, b), "{a} -> {b}");
                assert_eq!(auto.reachable(a, b), alt.reachable(a, b));
            }
        }
    }

    #[test]
    fn describe_names_the_backend() {
        let g = city();
        assert!(CityOracle::build(&g, OracleKind::Dense)
            .describe()
            .starts_with("dense["));
        assert!(CityOracle::build(&g, OracleKind::Alt { landmarks: 2 })
            .describe()
            .starts_with("alt["));
    }
}
