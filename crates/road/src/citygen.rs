//! Synthetic city generation.
//!
//! Stand-in for the OSM road networks of the paper's three cities. The
//! generator produces a `width × height` block grid with
//!
//! * multiplicatively jittered per-segment travel times (no two streets are
//!   equally fast, which keeps shortest paths unique-ish and realistic),
//! * optional **arterial** rows/columns with faster travel (mimicking
//!   avenues/ring roads), and
//! * optional diagonal shortcut segments.
//!
//! Travel times are what the algorithms consume; coordinates feed the grid
//! index and the workload hotspot model.

use crate::graph::{Edge, RoadGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use watter_core::{Dur, NodeId};

/// High-level street layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CityTopology {
    /// Plain jittered grid.
    Uniform,
    /// Every `arterial_every`-th row/column is an arterial with
    /// `arterial_speedup`× faster travel (Manhattan-style avenues).
    Arterial,
}

/// Parameters of the synthetic city.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CityConfig {
    /// Blocks in the x direction (nodes per row).
    pub width: usize,
    /// Blocks in the y direction (nodes per column).
    pub height: usize,
    /// Base travel time of one block segment, seconds.
    pub base_travel: Dur,
    /// Multiplicative jitter: each segment's travel is drawn uniformly from
    /// `[base·(1−jitter), base·(1+jitter)]`.
    pub jitter: f64,
    /// Probability of adding a diagonal shortcut inside a block.
    pub diagonal_prob: f64,
    /// Street layout.
    pub topology: CityTopology,
    /// For [`CityTopology::Arterial`]: arterial spacing in blocks.
    pub arterial_every: usize,
    /// For [`CityTopology::Arterial`]: speedup factor (travel divided by).
    pub arterial_speedup: f64,
}

impl Default for CityConfig {
    fn default() -> Self {
        Self {
            width: 20,
            height: 20,
            base_travel: 60,
            jitter: 0.25,
            diagonal_prob: 0.15,
            topology: CityTopology::Uniform,
            arterial_every: 5,
            arterial_speedup: 2.0,
        }
    }
}

impl CityConfig {
    /// Number of nodes the generated graph will have.
    pub fn node_count(&self) -> usize {
        self.width * self.height
    }

    /// Node id at grid position `(x, y)`.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        NodeId((y * self.width + x) as u32)
    }

    /// Generate the road graph deterministically from `seed`.
    ///
    /// # Panics
    /// Panics on degenerate configurations (empty grid, non-positive base
    /// travel, jitter outside `[0, 1)`).
    pub fn generate(&self, seed: u64) -> RoadGraph {
        assert!(self.width >= 2 && self.height >= 2, "city must be ≥ 2×2");
        assert!(self.base_travel > 0, "base travel must be positive");
        assert!(
            (0.0..1.0).contains(&self.jitter),
            "jitter must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coords = Vec::with_capacity(self.node_count());
        for y in 0..self.height {
            for x in 0..self.width {
                // Slight coordinate wobble so the grid index sees a
                // non-degenerate point cloud.
                let jx = rng.gen_range(-0.15..0.15);
                let jy = rng.gen_range(-0.15..0.15);
                coords.push((x as f64 + jx, y as f64 + jy));
            }
        }
        let mut edges = Vec::new();
        let mut segment = |rng: &mut StdRng, a: NodeId, b: NodeId, arterial: bool, diag: bool| {
            let noise = if self.jitter > 0.0 {
                rng.gen_range(1.0 - self.jitter..1.0 + self.jitter)
            } else {
                1.0
            };
            let mut t =
                self.base_travel as f64 * noise * if diag { std::f64::consts::SQRT_2 } else { 1.0 };
            if arterial && self.topology == CityTopology::Arterial {
                t /= self.arterial_speedup;
            }
            edges.push(Edge {
                from: a,
                to: b,
                travel: (t.round() as Dur).max(1),
            });
        };
        for y in 0..self.height {
            for x in 0..self.width {
                let here = self.node_at(x, y);
                if x + 1 < self.width {
                    let arterial = y % self.arterial_every == 0;
                    segment(&mut rng, here, self.node_at(x + 1, y), arterial, false);
                }
                if y + 1 < self.height {
                    let arterial = x % self.arterial_every == 0;
                    segment(&mut rng, here, self.node_at(x, y + 1), arterial, false);
                }
                if x + 1 < self.width
                    && y + 1 < self.height
                    && rng.gen_bool(self.diagonal_prob.clamp(0.0, 1.0))
                {
                    segment(&mut rng, here, self.node_at(x + 1, y + 1), false, true);
                }
            }
        }
        RoadGraph::from_undirected_edges(coords, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{shortest_path_cost, UNREACHABLE};

    #[test]
    fn generation_is_deterministic() {
        let cfg = CityConfig::default();
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(
            shortest_path_cost(&a, NodeId(0), NodeId(399)),
            shortest_path_cost(&b, NodeId(0), NodeId(399))
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = CityConfig::default();
        let a = cfg.generate(1);
        let b = cfg.generate(2);
        // Not a strict requirement edge-by-edge, but total path cost between
        // far corners should almost surely differ.
        assert_ne!(
            shortest_path_cost(&a, NodeId(0), NodeId(399)),
            shortest_path_cost(&b, NodeId(0), NodeId(399))
        );
    }

    #[test]
    fn city_is_connected() {
        let g = CityConfig {
            width: 10,
            height: 6,
            ..CityConfig::default()
        }
        .generate(3);
        for n in g.nodes() {
            assert!(shortest_path_cost(&g, NodeId(0), n) < UNREACHABLE);
        }
    }

    #[test]
    fn arterials_speed_up_cross_town_trips() {
        let slow = CityConfig {
            width: 16,
            height: 16,
            jitter: 0.0,
            diagonal_prob: 0.0,
            topology: CityTopology::Uniform,
            ..CityConfig::default()
        };
        let fast = CityConfig {
            topology: CityTopology::Arterial,
            ..slow.clone()
        };
        let gs = slow.generate(5);
        let gf = fast.generate(5);
        let a = NodeId(0);
        let b = slow.node_at(15, 15);
        assert!(
            shortest_path_cost(&gf, a, b) < shortest_path_cost(&gs, a, b),
            "arterial city should be faster corner-to-corner"
        );
    }

    #[test]
    #[should_panic(expected = "2×2")]
    fn tiny_city_rejected() {
        CityConfig {
            width: 1,
            height: 5,
            ..CityConfig::default()
        }
        .generate(0);
    }
}
