//! Plain-text road-network import/export.
//!
//! The paper evaluates on real OSM street networks (New York City, Chengdu,
//! Xi'an); those extracts are not redistributable, so this module defines
//! the smallest offline-friendly interchange format that can carry them —
//! an edge list with planar coordinates — and a loader strict enough to be
//! trusted with hand-edited files: every malformed input yields a typed
//! [`ImportError`], never a panic (`RoadGraph::from_edges` panics on bad
//! input, so the parser validates everything *before* construction).
//!
//! # Format
//!
//! Line-oriented UTF-8. `#` starts a comment (whole-line or trailing);
//! blank lines are ignored. The first significant line declares the node
//! count; every node then gets exactly one `v` line (in any order), and
//! each `e` line adds one **directed** edge — two-way streets are two
//! lines. Node ids are `0..N`; travel times are positive integer seconds.
//!
//! ```text
//! # demo city
//! nodes 3
//! v 0 0.0 0.0
//! v 1 1.5 0.0
//! v 2 1.5 2.25
//! e 0 1 30
//! e 1 0 30
//! e 1 2 45
//! ```
//!
//! Coordinates round-trip exactly: [`export_graph`] writes floats with
//! Rust's shortest-round-trip formatting, so `parse(export(g)) == g` for
//! every graph — the property the synthetic-grid export exists to test
//! (and CI's export→import→run check exercises end to end).

use crate::graph::{Edge, RoadGraph};
use std::fmt;
use std::path::Path;
use watter_core::{Dur, NodeId};

/// Why an import was rejected. Every variant names the offending line so
/// hand-edited files are debuggable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImportError {
    /// The file could not be read.
    Io(String),
    /// No significant lines at all.
    Empty,
    /// A line that doesn't parse; `reason` says why.
    Malformed {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// A `v` line repeats a node id.
    DuplicateNode {
        /// 1-based line number of the repeat.
        line: usize,
        /// The repeated node id.
        node: u32,
    },
    /// An `e` line repeats an exact `(from, to)` arc.
    DuplicateEdge {
        /// 1-based line number of the repeat.
        line: usize,
        /// Source node id.
        from: u32,
        /// Target node id.
        to: u32,
    },
    /// A node id is `≥ nodes`.
    NodeOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending id.
        node: u64,
        /// The declared node count.
        nodes: usize,
    },
    /// An edge travel time is zero or negative.
    BadWeight {
        /// 1-based line number.
        line: usize,
        /// The offending travel time.
        weight: i64,
    },
    /// Fewer `v` lines than the declared node count.
    CountMismatch {
        /// Declared node count.
        declared: usize,
        /// `v` lines actually seen.
        seen: usize,
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "cannot read graph file: {e}"),
            ImportError::Empty => write!(f, "graph file has no significant lines"),
            ImportError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ImportError::DuplicateNode { line, node } => {
                write!(f, "line {line}: node {node} declared twice")
            }
            ImportError::DuplicateEdge { line, from, to } => {
                write!(f, "line {line}: duplicate edge {from} -> {to}")
            }
            ImportError::NodeOutOfRange { line, node, nodes } => {
                write!(
                    f,
                    "line {line}: node id {node} out of range (nodes = {nodes})"
                )
            }
            ImportError::BadWeight { line, weight } => {
                write!(
                    f,
                    "line {line}: travel time {weight} must be a positive integer"
                )
            }
            ImportError::CountMismatch { declared, seen } => {
                write!(f, "declared {declared} nodes but found {seen} `v` lines")
            }
        }
    }
}

impl std::error::Error for ImportError {}

/// Strip a trailing `#`-comment and surrounding whitespace.
fn significant(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => line[..pos].trim(),
        None => line.trim(),
    }
}

fn malformed(line: usize, reason: impl Into<String>) -> ImportError {
    ImportError::Malformed {
        line,
        reason: reason.into(),
    }
}

/// Parse a graph from the plain-text format. See the module docs for the
/// grammar; every rejection is a typed [`ImportError`].
pub fn parse_graph(text: &str) -> Result<RoadGraph, ImportError> {
    let mut declared: Option<usize> = None;
    let mut coords: Vec<(f64, f64)> = Vec::new();
    let mut have_coord: Vec<bool> = Vec::new();
    let mut coords_seen = 0usize;
    let mut edges: Vec<Edge> = Vec::new();
    let mut edge_lines: Vec<usize> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = significant(raw);
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let tag = parts.next().expect("non-empty significant line");
        let n = match declared {
            Some(n) => n,
            None => {
                // The first significant line must be the node count.
                if tag != "nodes" {
                    return Err(malformed(
                        lineno,
                        format!("expected `nodes N` header, found `{tag}`"),
                    ));
                }
                let n: usize = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "`nodes` missing count"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "`nodes` count is not an integer"))?;
                if parts.next().is_some() {
                    return Err(malformed(lineno, "trailing tokens after `nodes N`"));
                }
                declared = Some(n);
                coords = vec![(0.0, 0.0); n];
                have_coord = vec![false; n];
                continue;
            }
        };
        match tag {
            "v" => {
                let mut field = |name: &str| {
                    parts
                        .next()
                        .ok_or_else(|| malformed(lineno, format!("`v` missing {name}")))
                };
                let id: u64 = field("node id")?
                    .parse()
                    .map_err(|_| malformed(lineno, "`v` node id is not an integer"))?;
                let x: f64 = field("x coordinate")?
                    .parse()
                    .map_err(|_| malformed(lineno, "`v` x coordinate is not a number"))?;
                let y: f64 = field("y coordinate")?
                    .parse()
                    .map_err(|_| malformed(lineno, "`v` y coordinate is not a number"))?;
                if parts.next().is_some() {
                    return Err(malformed(lineno, "trailing tokens after `v id x y`"));
                }
                if id >= n as u64 {
                    return Err(ImportError::NodeOutOfRange {
                        line: lineno,
                        node: id,
                        nodes: n,
                    });
                }
                let id = id as usize;
                if have_coord[id] {
                    return Err(ImportError::DuplicateNode {
                        line: lineno,
                        node: id as u32,
                    });
                }
                have_coord[id] = true;
                coords[id] = (x, y);
                coords_seen += 1;
            }
            "e" => {
                let mut field = |name: &str| {
                    parts
                        .next()
                        .ok_or_else(|| malformed(lineno, format!("`e` missing {name}")))
                };
                let from: u64 = field("source node")?
                    .parse()
                    .map_err(|_| malformed(lineno, "`e` source is not an integer"))?;
                let to: u64 = field("target node")?
                    .parse()
                    .map_err(|_| malformed(lineno, "`e` target is not an integer"))?;
                let travel: i64 = field("travel time")?
                    .parse()
                    .map_err(|_| malformed(lineno, "`e` travel time is not an integer"))?;
                if parts.next().is_some() {
                    return Err(malformed(
                        lineno,
                        "trailing tokens after `e from to travel`",
                    ));
                }
                for id in [from, to] {
                    if id >= n as u64 {
                        return Err(ImportError::NodeOutOfRange {
                            line: lineno,
                            node: id,
                            nodes: n,
                        });
                    }
                }
                if travel <= 0 {
                    return Err(ImportError::BadWeight {
                        line: lineno,
                        weight: travel,
                    });
                }
                edges.push(Edge {
                    from: NodeId(from as u32),
                    to: NodeId(to as u32),
                    travel: travel as Dur,
                });
                edge_lines.push(lineno);
            }
            other => {
                return Err(malformed(
                    lineno,
                    format!("unknown line tag `{other}` (expected `v` or `e`)"),
                ));
            }
        }
    }

    let Some(n) = declared else {
        return Err(ImportError::Empty);
    };
    if coords_seen != n {
        return Err(ImportError::CountMismatch {
            declared: n,
            seen: coords_seen,
        });
    }
    // Exact duplicate arcs are almost always an editing mistake; reject
    // loudly instead of silently letting one weight shadow the other.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_unstable_by_key(|&i| (edges[i].from.0, edges[i].to.0, edge_lines[i]));
    for w in order.windows(2) {
        let (a, b) = (edges[w[0]], edges[w[1]]);
        if a.from == b.from && a.to == b.to {
            return Err(ImportError::DuplicateEdge {
                line: edge_lines[w[1]],
                from: a.from.0,
                to: a.to.0,
            });
        }
    }

    // Everything `from_edges` would assert on has been checked above.
    Ok(RoadGraph::from_edges(coords, edges))
}

/// Read and parse a graph file from disk.
pub fn import_graph(path: impl AsRef<Path>) -> Result<RoadGraph, ImportError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| ImportError::Io(format!("{}: {e}", path.display())))?;
    parse_graph(&text)
}

/// Serialize a graph to the plain-text format.
///
/// Floats use Rust's shortest-round-trip formatting and edges are emitted
/// in CSR order, so the output is canonical: `parse_graph(export_graph(g))`
/// reconstructs a graph equal to `g`.
pub fn export_graph(graph: &RoadGraph) -> String {
    let mut out = String::new();
    out.push_str("# watter road-network interchange format\n");
    out.push_str("# nodes N / v id x y / e from to travel_seconds\n");
    out.push_str(&format!("nodes {}\n", graph.node_count()));
    for (id, &(x, y)) in graph.coords().iter().enumerate() {
        out.push_str(&format!("v {id} {x} {y}\n"));
    }
    for u in graph.nodes() {
        let (targets, travels) = graph.out_edges(u);
        for (&v, &w) in targets.iter().zip(travels) {
            out.push_str(&format!("e {} {v} {w}\n", u.0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::CityConfig;

    const DEMO: &str = "\
# demo city
nodes 3
v 0 0.0 0.0
v 1 1.5 0.0   # trailing comment
v 2 1.5 2.25
e 0 1 30
e 1 0 30
e 1 2 45
";

    #[test]
    fn parses_the_demo_file() {
        let g = parse_graph(DEMO).expect("demo parses");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.coord(NodeId(2)), (1.5, 2.25));
        let n: Vec<_> = g.neighbors(NodeId(1)).collect();
        assert_eq!(n, vec![(NodeId(0), 30), (NodeId(2), 45)]);
    }

    #[test]
    fn round_trips_a_synthetic_city_exactly() {
        let g = CityConfig {
            width: 7,
            height: 6,
            ..Default::default()
        }
        .generate(42);
        let text = export_graph(&g);
        let back = parse_graph(&text).expect("exported city parses");
        assert_eq!(back, g);
        // Canonical output: a second round trip is byte-identical.
        assert_eq!(export_graph(&back), text);
    }

    #[test]
    fn empty_inputs_are_typed_errors() {
        assert_eq!(parse_graph(""), Err(ImportError::Empty));
        assert_eq!(
            parse_graph("# only comments\n\n  # and blanks\n"),
            Err(ImportError::Empty)
        );
    }

    #[test]
    fn zero_node_graph_is_fine() {
        let g = parse_graph("nodes 0\n").expect("empty graph parses");
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn malformed_lines_name_the_line() {
        let missing_header = parse_graph("v 0 0.0 0.0\n");
        assert!(matches!(
            missing_header,
            Err(ImportError::Malformed { line: 1, .. })
        ));
        let bad_count = parse_graph("nodes many\n");
        assert!(matches!(
            bad_count,
            Err(ImportError::Malformed { line: 1, .. })
        ));
        let bad_coord = parse_graph("nodes 1\nv 0 east north\n");
        assert!(matches!(
            bad_coord,
            Err(ImportError::Malformed { line: 2, .. })
        ));
        let short_edge = parse_graph("nodes 2\nv 0 0 0\nv 1 1 0\ne 0 1\n");
        assert!(matches!(
            short_edge,
            Err(ImportError::Malformed { line: 4, .. })
        ));
        let trailing = parse_graph("nodes 1\nv 0 0 0 extra\n");
        assert!(matches!(
            trailing,
            Err(ImportError::Malformed { line: 2, .. })
        ));
        let unknown_tag = parse_graph("nodes 1\nv 0 0 0\nw 0 1 5\n");
        assert!(matches!(
            unknown_tag,
            Err(ImportError::Malformed { line: 3, .. })
        ));
    }

    #[test]
    fn duplicate_nodes_and_edges_are_rejected() {
        let dup_node = parse_graph("nodes 2\nv 0 0 0\nv 0 1 1\n");
        assert_eq!(
            dup_node,
            Err(ImportError::DuplicateNode { line: 3, node: 0 })
        );
        let dup_edge = parse_graph("nodes 2\nv 0 0 0\nv 1 1 0\ne 0 1 5\ne 0 1 9\n");
        assert_eq!(
            dup_edge,
            Err(ImportError::DuplicateEdge {
                line: 5,
                from: 0,
                to: 1
            })
        );
        // Opposite directions are distinct arcs, not duplicates.
        assert!(parse_graph("nodes 2\nv 0 0 0\nv 1 1 0\ne 0 1 5\ne 1 0 5\n").is_ok());
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let bad_v = parse_graph("nodes 1\nv 5 0 0\n");
        assert_eq!(
            bad_v,
            Err(ImportError::NodeOutOfRange {
                line: 2,
                node: 5,
                nodes: 1
            })
        );
        let bad_e = parse_graph("nodes 2\nv 0 0 0\nv 1 1 0\ne 0 7 5\n");
        assert_eq!(
            bad_e,
            Err(ImportError::NodeOutOfRange {
                line: 4,
                node: 7,
                nodes: 2
            })
        );
        // Ids larger than u32 must not wrap into range.
        let huge = parse_graph("nodes 2\nv 0 0 0\nv 1 1 0\ne 0 4294967297 5\n");
        assert!(matches!(huge, Err(ImportError::NodeOutOfRange { .. })));
    }

    #[test]
    fn non_positive_weights_are_rejected() {
        let zero = parse_graph("nodes 2\nv 0 0 0\nv 1 1 0\ne 0 1 0\n");
        assert_eq!(zero, Err(ImportError::BadWeight { line: 4, weight: 0 }));
        let neg = parse_graph("nodes 2\nv 0 0 0\nv 1 1 0\ne 0 1 -3\n");
        assert_eq!(
            neg,
            Err(ImportError::BadWeight {
                line: 4,
                weight: -3
            })
        );
    }

    #[test]
    fn missing_vertices_are_a_count_mismatch() {
        let missing = parse_graph("nodes 3\nv 0 0 0\nv 2 1 1\n");
        assert_eq!(
            missing,
            Err(ImportError::CountMismatch {
                declared: 3,
                seen: 2
            })
        );
    }

    #[test]
    fn io_errors_are_typed() {
        let err = import_graph("/nonexistent/definitely/missing.graph");
        assert!(matches!(err, Err(ImportError::Io(_))));
    }

    #[test]
    fn errors_display_cleanly() {
        let e = parse_graph("nodes 2\nv 0 0 0\nv 1 1 0\ne 0 1 0\n").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(msg.contains("positive"), "{msg}");
    }
}
