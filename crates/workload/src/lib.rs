//! # watter-workload
//!
//! Synthetic spatio-temporal order workloads.
//!
//! The paper evaluates on proprietary traces (NYC yellow taxis, Didi GAIA
//! Chengdu and Xi'an). The algorithms only consume
//! `(pickup, dropoff, release_time)` tuples plus the derived deadline and
//! watching window, so this crate synthesizes statistically analogous
//! streams with the properties the paper's analysis leans on:
//!
//! * **Demand concentration** — NYC demand concentrates in a Manhattan-like
//!   core; Chengdu/Xi'an demand is dispersed (Section VII-B explains the
//!   worker-sensitivity differences through exactly this property);
//! * **Rush-hour temporal intensity** — morning/evening peaks over a base
//!   rate;
//! * the paper's parameterization `τ(i) = t(i) + τ·cost(l_p, l_d)`,
//!   `η(i) = η·cost(l_p, l_d)`, worker start positions sampled from the
//!   pick-up distribution and capacities uniform in `[2, Kw]`
//!   (Section VII-A, *Implementation*).

pub mod hotspot;
pub mod params;
pub mod profile;
pub mod scenario;
pub mod temporal;

pub use hotspot::HotspotModel;
pub use params::ScenarioParams;
pub use profile::CityProfile;
pub use scenario::Scenario;
pub use temporal::TemporalModel;
