//! Experiment parameters (Table III), scaled for laptop-speed runs.
//!
//! The paper's defaults: riders 100 K (NYC) / 50 K (CDC, XIA) per day,
//! 5 K workers, deadline scale τ = 1.6, capacity Kw = 4, watching window
//! η = 0.8, time slot Δt = 10 s, 10 × 10 grid index. This reproduction
//! scales order and worker counts by ≈ 1/50 and simulates a 30-minute
//! window around the morning peak instead of a full day, keeping the
//! paper's *arrival density* (orders per second per worker) so pooling
//! opportunities match; every *relative* sweep of Figures 3–6 is
//! preserved. See EXPERIMENTS.md for the scaling note.

use crate::profile::CityProfile;
use serde::{Deserialize, Serialize};
use watter_core::{DispatchParallelism, Dur, OracleKind, Ts, DENSE_NODE_LIMIT};

/// All knobs of one simulated scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// City profile (dataset analogue).
    pub profile: CityProfile,
    /// Number of orders `n` released in the window.
    pub n_orders: usize,
    /// Number of workers `m`.
    pub n_workers: usize,
    /// Deadline scale τ: `τ(i) = t(i) + τ·cost(l_p, l_d)`.
    pub deadline_scale: f64,
    /// Watching window scale η: `η(i) = η·cost(l_p, l_d)`.
    pub wait_scale: f64,
    /// Maximum vehicle capacity Kw; per-worker capacity ~ U{2, …, Kw}.
    pub max_capacity: u32,
    /// Check / time-slot period Δt in seconds.
    pub check_period: Dur,
    /// Grid-index dimension g (g × g cells).
    pub grid_dim: usize,
    /// City side length in blocks (road network is side × side).
    pub city_side: usize,
    /// Window start, seconds from midnight.
    pub window_start: Ts,
    /// Window length, seconds.
    pub window_span: Dur,
    /// Commuter-flow correlation: probability that an order spawns an
    /// "echo" — a near-identical trip (same flow, endpoints jittered within
    /// a grid cell) released a few seconds to a couple of minutes later.
    /// This is the structure that makes waiting profitable (Example 1) and
    /// is pervasive in real commute data.
    pub echo_prob: f64,
    /// Travel-cost oracle backend: dense table, landmark A*, contraction
    /// hierarchy, or pick by node count. All backends return bit-identical
    /// costs, so this knob never changes the generated workload — only
    /// memory and latency.
    pub oracle: OracleKind,
    /// `Auto` oracle threshold: the largest node count for which `Auto`
    /// still builds the dense table (CLI `--dense-limit`); beyond it,
    /// `Auto` builds the contraction hierarchy. Ignored when `oracle` is a
    /// concrete kind.
    pub dense_limit: usize,
    /// Wrap the oracle in a sharded memoization layer
    /// (`watter_road::CachedOracle`) for the simulation run. Cached answers
    /// are the inner oracle's answers verbatim, so dispatch outcomes are
    /// bit-identical either way; enable it whenever point queries are
    /// expensive (the ALT oracle on large cities). The workload build
    /// itself never uses the cache, so generated demand is unaffected.
    pub cost_cache: bool,
    /// Sharded/parallel dispatch execution (`--threads` / `--shards`).
    /// Outcomes are bit-identical for any setting — parallelism only
    /// fans out pure computation; all state commits stay sequential in
    /// canonical order — so this knob never changes results, only
    /// wall-clock time.
    pub parallelism: DispatchParallelism,
    /// Master seed for the road network, demand and fleet.
    pub seed: u64,
}

impl ScenarioParams {
    /// The default (Table III italic) configuration for a profile, scaled.
    pub fn default_for(profile: CityProfile) -> Self {
        let n_orders = match profile {
            CityProfile::Nyc => 2_000,
            CityProfile::Chengdu | CityProfile::Xian => 1_000,
        };
        Self {
            profile,
            n_orders,
            n_workers: 200,
            deadline_scale: 1.6,
            wait_scale: 0.8,
            max_capacity: 4,
            check_period: 10,
            grid_dim: 10,
            city_side: 24,
            window_start: 7 * 3600 + 1800,
            window_span: 1800,
            echo_prob: 0.55,
            oracle: OracleKind::Auto,
            dense_limit: DENSE_NODE_LIMIT,
            cost_cache: false,
            parallelism: DispatchParallelism::SEQUENTIAL,
            seed: 20_240_311, // arXiv submission date of the paper
        }
    }

    /// A 10⁵-node metropolis: 320 × 320 blocks (102 400 nodes), far beyond
    /// what the dense table can hold (`n² × 4 B ≈ 42 GB`), served by the
    /// ALT oracle. Order/worker counts are kept small — this scenario
    /// exists to exercise the large-graph path end to end, not to rerun
    /// the paper's sweeps at metropolis scale.
    pub fn large_city() -> Self {
        Self {
            city_side: 320,
            n_orders: 40,
            n_workers: 10,
            oracle: OracleKind::Alt { landmarks: 8 },
            ..Self::default_for(CityProfile::Chengdu)
        }
    }

    /// The paper's sweep values for the rider count `n`, expressed as the
    /// same relative grid the paper uses (NYC: ×{0.5, 0.75, 1.0, 1.25};
    /// CDC/XIA: ×{0.6, 0.8, 1.0, 1.2}).
    pub fn rider_sweep(profile: CityProfile) -> Vec<usize> {
        let base = Self::default_for(profile).n_orders as f64;
        let factors: &[f64] = match profile {
            CityProfile::Nyc => &[0.5, 0.75, 1.0, 1.25],
            _ => &[0.6, 0.8, 1.0, 1.2],
        };
        factors.iter().map(|f| (base * f) as usize).collect()
    }

    /// The paper's sweep for worker count `m` (3K–6K, scaled ≈ 1/30).
    pub fn worker_sweep() -> Vec<usize> {
        vec![120, 160, 200, 240]
    }

    /// The paper's sweep for the deadline scale τ.
    pub fn deadline_sweep() -> Vec<f64> {
        vec![1.2, 1.4, 1.6, 1.8]
    }

    /// The paper's sweep for the maximum capacity Kw.
    pub fn capacity_sweep() -> Vec<u32> {
        vec![2, 3, 4, 5]
    }

    /// Appendix sweep for the watching window η.
    pub fn eta_sweep() -> Vec<f64> {
        vec![0.2, 0.4, 0.6, 0.8, 1.0]
    }

    /// Appendix sweep for the time slot / check period Δt (seconds).
    pub fn dt_sweep() -> Vec<Dur> {
        vec![5, 10, 20, 40]
    }

    /// Appendix sweep for the grid dimension g.
    pub fn grid_sweep() -> Vec<usize> {
        vec![5, 10, 15, 20]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_table_iii_shape() {
        let p = ScenarioParams::default_for(CityProfile::Nyc);
        assert_eq!(p.deadline_scale, 1.6);
        assert_eq!(p.wait_scale, 0.8);
        assert_eq!(p.max_capacity, 4);
        assert_eq!(p.check_period, 10);
        assert_eq!(p.grid_dim, 10);
        // NYC gets twice the CDC/XIA order volume, as in the paper.
        let c = ScenarioParams::default_for(CityProfile::Chengdu);
        assert_eq!(p.n_orders, 2 * c.n_orders);
    }

    #[test]
    fn sweeps_have_paper_cardinalities() {
        assert_eq!(ScenarioParams::rider_sweep(CityProfile::Nyc).len(), 4);
        assert_eq!(ScenarioParams::worker_sweep().len(), 4);
        assert_eq!(ScenarioParams::deadline_sweep(), vec![1.2, 1.4, 1.6, 1.8]);
        assert_eq!(ScenarioParams::capacity_sweep(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn rider_sweep_is_monotone() {
        for p in CityProfile::ALL {
            let sweep = ScenarioParams::rider_sweep(p);
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
