//! Scenario assembly: road network + cost oracle + orders + fleet.
//!
//! [`Scenario::build`] deterministically materializes everything a
//! simulation run needs from a [`ScenarioParams`], following Section VII-A
//! *Implementation*: one rider per order, worker start positions sampled
//! from the pick-up distribution, capacities uniform in `[2, Kw]`.

use crate::hotspot::HotspotModel;
use crate::params::ScenarioParams;
use crate::temporal::TemporalModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use watter_core::{Exec, Order, OrderId, TravelCost, Worker, WorkerId};
use watter_road::{CityOracle, GridIndex, RoadGraph};

/// A fully materialized experiment input.
#[derive(Clone)]
pub struct Scenario {
    /// Parameters the scenario was built from.
    pub params: ScenarioParams,
    /// The synthetic road network.
    pub graph: Arc<RoadGraph>,
    /// Exact travel-time oracle, backend selected by
    /// [`ScenarioParams::oracle`] (dense table, landmark A* or contraction
    /// hierarchy — identical costs any way).
    pub oracle: Arc<CityOracle>,
    /// Grid spatial index (worker search + MDP state quantization).
    pub grid: GridIndex,
    /// Orders sorted by release time, ids dense in release order.
    pub orders: Vec<Order>,
    /// The worker roster.
    pub workers: Vec<Worker>,
}

/// Minimum direct trip duration: riders don't hail a cab for sub-2-minute
/// hops, and degenerate zero-cost trips break deadline scaling.
const MIN_TRIP_SECONDS: i64 = 120;

impl Scenario {
    /// Deterministically build the scenario on the profile's synthetic
    /// city.
    pub fn build(params: ScenarioParams) -> Self {
        let graph = Arc::new(
            params
                .profile
                .city_config(params.city_side)
                .generate(params.seed),
        );
        Self::build_on_graph(params, graph)
    }

    /// Deterministically build the scenario on an explicit road network —
    /// the path imported cities take (`watter-cli --import`). Demand and
    /// fleet generation is byte-for-byte the same code as [`Self::build`];
    /// only the graph's provenance differs, so any scenario runs unchanged
    /// on a real street topology.
    pub fn build_on_graph(params: ScenarioParams, graph: Arc<RoadGraph>) -> Self {
        let exec = Exec::from_parallelism(params.parallelism);
        let oracle = Arc::new(CityOracle::build_with_limit(
            &graph,
            params.oracle,
            params.dense_limit,
            &exec,
        ));
        let grid = GridIndex::build(&graph, params.grid_dim);
        let mut rng = StdRng::seed_from_u64(params.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let hotspots = HotspotModel::build(
            &graph,
            params.profile.hotspot_count(),
            params.profile.hotspot_spread(),
            params.profile.hotspot_fraction(),
            &mut rng,
        );
        let temporal = TemporalModel::day_default(params.window_start, params.window_span);

        // Orders: independent "seed" trips plus commuter-flow echoes —
        // near-identical trips released shortly after their seed (endpoints
        // jittered within the seed's grid cells). Echoes model the
        // correlated commute flows that make waiting profitable (the
        // paper's Example 1 motivation).
        let mut trips: Vec<(i64, watter_core::NodeId, watter_core::NodeId)> = Vec::new();
        let jitter = |node: watter_core::NodeId, rng: &mut StdRng| {
            let cell = grid.nodes_in_cell(grid.cell_of(node));
            if cell.is_empty() {
                node
            } else {
                cell[rng.gen_range(0..cell.len())]
            }
        };
        while trips.len() < params.n_orders {
            let release = temporal.sample(&mut rng);
            let pickup = hotspots.sample(&mut rng);
            let mut dropoff = hotspots.sample(&mut rng);
            let mut direct = oracle.cost(pickup, dropoff);
            for _ in 0..256 {
                if oracle.reachable(pickup, dropoff) && direct >= MIN_TRIP_SECONDS {
                    break;
                }
                dropoff = hotspots.sample(&mut rng);
                direct = oracle.cost(pickup, dropoff);
            }
            trips.push((release, pickup, dropoff));
            // Echo chain: geometric number of correlated followers.
            while trips.len() < params.n_orders && rng.gen_bool(params.echo_prob.clamp(0.0, 0.95)) {
                let delay = rng.gen_range(5..=120);
                let er = (release + delay).min(params.window_start + params.window_span - 1);
                let ep = jitter(pickup, &mut rng);
                let ed = jitter(dropoff, &mut rng);
                if oracle.reachable(ep, ed) && oracle.cost(ep, ed) >= MIN_TRIP_SECONDS {
                    trips.push((er, ep, ed));
                }
            }
        }
        trips.sort_unstable_by_key(|t| (t.0, t.1, t.2));
        let orders = trips
            .into_iter()
            .enumerate()
            .map(|(i, (release, pickup, dropoff))| {
                Order::from_scales(
                    OrderId::from_index(i),
                    pickup,
                    dropoff,
                    1, // one rider per record (Section VII-A)
                    release,
                    oracle.cost(pickup, dropoff),
                    params.deadline_scale,
                    params.wait_scale,
                )
            })
            .collect();

        // Workers: homes from the pick-up distribution, capacity U{2..Kw}.
        let workers = (0..params.n_workers)
            .map(|i| {
                let home = hotspots.sample(&mut rng);
                let capacity = if params.max_capacity <= 2 {
                    params.max_capacity
                } else {
                    rng.gen_range(2..=params.max_capacity)
                };
                Worker::new(WorkerId::from_index(i), home, capacity)
            })
            .collect();

        Self {
            params,
            graph,
            oracle,
            grid,
            orders,
            workers,
        }
    }

    /// Mean direct trip time of the generated orders — useful for checking
    /// scenario calibration.
    pub fn mean_direct_cost(&self) -> f64 {
        if self.orders.is_empty() {
            return 0.0;
        }
        self.orders
            .iter()
            .map(|o| o.direct_cost as f64)
            .sum::<f64>()
            / self.orders.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CityProfile;

    fn small(profile: CityProfile) -> Scenario {
        let mut p = ScenarioParams::default_for(profile);
        p.n_orders = 200;
        p.n_workers = 20;
        p.city_side = 10;
        Scenario::build(p)
    }

    #[test]
    fn build_is_deterministic() {
        let a = small(CityProfile::Chengdu);
        let b = small(CityProfile::Chengdu);
        assert_eq!(a.orders, b.orders);
        assert_eq!(a.workers, b.workers);
    }

    #[test]
    fn orders_sorted_and_feasible() {
        let s = small(CityProfile::Nyc);
        assert_eq!(s.orders.len(), 200);
        for w in s.orders.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
        for o in &s.orders {
            assert!(o.direct_cost >= MIN_TRIP_SECONDS);
            assert!(o.deadline > o.release + o.direct_cost);
            assert_eq!(o.riders, 1);
            // releases inside the window
            assert!(o.release >= s.params.window_start);
            assert!(o.release < s.params.window_start + s.params.window_span);
        }
    }

    #[test]
    fn oracle_backend_does_not_change_the_workload() {
        use watter_core::OracleKind;
        let mut dense = ScenarioParams::default_for(CityProfile::Chengdu);
        dense.n_orders = 120;
        dense.n_workers = 15;
        dense.city_side = 10;
        dense.oracle = OracleKind::Dense;
        let mut alt = dense.clone();
        alt.oracle = OracleKind::Alt { landmarks: 4 };
        let sd = Scenario::build(dense);
        let sa = Scenario::build(alt);
        // The ALT oracle is bit-identical to the dense table, so the
        // sampled demand and fleet must be too.
        assert_eq!(sd.orders, sa.orders);
        assert_eq!(sd.workers, sa.workers);
        assert!(sa.oracle.describe().starts_with("alt["));
        assert!(sd.oracle.describe().starts_with("dense["));
    }

    #[test]
    fn imported_graph_reproduces_the_synthetic_scenario() {
        use watter_road::{export_graph, parse_graph};
        let mut p = ScenarioParams::default_for(CityProfile::Chengdu);
        p.n_orders = 100;
        p.n_workers = 10;
        p.city_side = 10;
        let native = Scenario::build(p.clone());
        // Round-trip the city through the interchange format: same graph,
        // so demand and fleet generation must be bit-identical.
        let text = export_graph(&native.graph);
        let imported = Arc::new(parse_graph(&text).expect("exported city parses"));
        let rebuilt = Scenario::build_on_graph(p, imported);
        assert_eq!(native.orders, rebuilt.orders);
        assert_eq!(native.workers, rebuilt.workers);
    }

    #[test]
    fn ch_oracle_backend_does_not_change_the_workload() {
        use watter_core::OracleKind;
        let mut dense = ScenarioParams::default_for(CityProfile::Xian);
        dense.n_orders = 120;
        dense.n_workers = 15;
        dense.city_side = 10;
        dense.oracle = OracleKind::Dense;
        let mut ch = dense.clone();
        ch.oracle = OracleKind::Ch;
        let sd = Scenario::build(dense);
        let sc = Scenario::build(ch);
        assert_eq!(sd.orders, sc.orders);
        assert_eq!(sd.workers, sc.workers);
        assert!(sc.oracle.describe().starts_with("ch["));
    }

    #[test]
    fn large_city_params_target_the_alt_oracle() {
        use watter_core::{OracleKind, DENSE_NODE_LIMIT};
        let p = ScenarioParams::large_city();
        let nodes = p.city_side * p.city_side;
        assert!(nodes >= 100_000, "large city must reach 10^5 nodes");
        assert!(nodes > DENSE_NODE_LIMIT);
        assert!(matches!(p.oracle, OracleKind::Alt { .. }));
        // The dense table would need n² × 4 bytes — beyond any sane host.
        assert!(nodes as u64 * nodes as u64 * 4 > 40_000_000_000);
    }

    #[test]
    fn worker_capacities_in_range() {
        let s = small(CityProfile::Xian);
        assert_eq!(s.workers.len(), 20);
        for w in &s.workers {
            assert!((2..=s.params.max_capacity).contains(&w.capacity));
        }
    }

    #[test]
    fn capacity_two_city_all_twos() {
        let mut p = ScenarioParams::default_for(CityProfile::Chengdu);
        p.n_orders = 50;
        p.n_workers = 10;
        p.city_side = 8;
        p.max_capacity = 2;
        let s = Scenario::build(p);
        assert!(s.workers.iter().all(|w| w.capacity == 2));
    }

    #[test]
    fn nyc_demand_more_concentrated_than_xia() {
        use std::collections::HashMap;
        // Needs a city large enough for the hotspot geometry to separate
        // the profiles (the tiny 10×10 test city is all one hotspot).
        let build = |profile| {
            let mut p = ScenarioParams::default_for(profile);
            p.n_orders = 800;
            p.n_workers = 20;
            Scenario::build(p)
        };
        let nyc = build(CityProfile::Nyc);
        let xia = build(CityProfile::Xian);
        let conc = |s: &Scenario| {
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for o in &s.orders {
                *counts.entry(s.grid.cell_of(o.pickup)).or_default() += 1;
            }
            let mut v: Vec<usize> = counts.into_values().collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            let top = v.len().div_ceil(10).max(1);
            v[..top].iter().sum::<usize>() as f64 / s.orders.len() as f64
        };
        assert!(
            conc(&nyc) > conc(&xia),
            "NYC {:.3} should exceed XIA {:.3}",
            conc(&nyc),
            conc(&xia)
        );
    }

    #[test]
    fn mean_direct_cost_reasonable() {
        let s = small(CityProfile::Chengdu);
        let m = s.mean_direct_cost();
        // 10×10 blocks of ~60 s: trips should take a few minutes.
        assert!(m > 120.0 && m < 1_800.0, "mean direct {m}");
    }
}
