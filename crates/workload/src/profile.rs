//! City profiles.
//!
//! Each profile fixes the road topology and the demand concentration knobs
//! that distinguish the paper's three datasets.

use serde::{Deserialize, Serialize};
use watter_road::{CityConfig, CityTopology};

/// The three synthetic city profiles mirroring the paper's datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CityProfile {
    /// New-York-like: arterial grid, demand concentrated in a small core
    /// (the paper notes most NYC orders sit in Manhattan).
    Nyc,
    /// Chengdu-like: uniform grid, dispersed demand around several centres.
    Chengdu,
    /// Xi'an-like: uniform grid, the most dispersed demand of the three.
    Xian,
}

impl CityProfile {
    /// All profiles, in the paper's presentation order.
    pub const ALL: [CityProfile; 3] = [CityProfile::Nyc, CityProfile::Chengdu, CityProfile::Xian];

    /// Short dataset tag used in experiment tables.
    pub fn tag(self) -> &'static str {
        match self {
            CityProfile::Nyc => "NYC",
            CityProfile::Chengdu => "CDC",
            CityProfile::Xian => "XIA",
        }
    }

    /// Road-network generator configuration for this city at the given
    /// grid side length (blocks per side).
    pub fn city_config(self, side: usize) -> CityConfig {
        match self {
            CityProfile::Nyc => CityConfig {
                width: side,
                height: side,
                topology: CityTopology::Arterial,
                arterial_every: 4,
                arterial_speedup: 1.8,
                ..CityConfig::default()
            },
            CityProfile::Chengdu => CityConfig {
                width: side,
                height: side,
                topology: CityTopology::Uniform,
                ..CityConfig::default()
            },
            CityProfile::Xian => CityConfig {
                width: side,
                height: side,
                topology: CityTopology::Uniform,
                diagonal_prob: 0.05,
                ..CityConfig::default()
            },
        }
    }

    /// Fraction of demand drawn from hotspot centres (the rest is uniform
    /// background). NYC is the most concentrated.
    pub fn hotspot_fraction(self) -> f64 {
        match self {
            CityProfile::Nyc => 0.8,
            CityProfile::Chengdu => 0.55,
            CityProfile::Xian => 0.45,
        }
    }

    /// Number of hotspot centres.
    pub fn hotspot_count(self) -> usize {
        match self {
            CityProfile::Nyc => 2,
            CityProfile::Chengdu => 5,
            CityProfile::Xian => 6,
        }
    }

    /// Hotspot spatial spread as a fraction of the city side.
    pub fn hotspot_spread(self) -> f64 {
        match self {
            CityProfile::Nyc => 0.10,
            CityProfile::Chengdu => 0.16,
            CityProfile::Xian => 0.20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_match_paper() {
        assert_eq!(CityProfile::Nyc.tag(), "NYC");
        assert_eq!(CityProfile::Chengdu.tag(), "CDC");
        assert_eq!(CityProfile::Xian.tag(), "XIA");
    }

    #[test]
    fn nyc_is_most_concentrated() {
        assert!(CityProfile::Nyc.hotspot_fraction() > CityProfile::Chengdu.hotspot_fraction());
        assert!(CityProfile::Chengdu.hotspot_fraction() > CityProfile::Xian.hotspot_fraction());
        assert!(CityProfile::Nyc.hotspot_count() < CityProfile::Xian.hotspot_count());
    }

    #[test]
    fn city_configs_generate() {
        for p in CityProfile::ALL {
            let g = p.city_config(10).generate(1);
            assert_eq!(g.node_count(), 100);
        }
    }
}
