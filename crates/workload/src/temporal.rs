//! Temporal demand model: rush-hour intensity.
//!
//! Release times are drawn from a mixture of a uniform base rate and two
//! Gaussian rush-hour bumps (configurable). Experiments run on a window of
//! the day; the default window straddles the morning peak so pooling
//! density varies within a run, exercising the spatio-temporal state.

use rand::rngs::StdRng;
use rand::Rng;
use watter_core::{Dur, Ts};

/// Mixture-of-peaks release-time sampler over `[start, start + span)`.
#[derive(Clone, Debug)]
pub struct TemporalModel {
    /// Window start (seconds from midnight).
    pub start: Ts,
    /// Window length in seconds.
    pub span: Dur,
    /// Peak centres (seconds from midnight) with relative mass.
    pub peaks: Vec<(Ts, f64)>,
    /// Std-dev of each peak in seconds.
    pub peak_sigma: f64,
    /// Mass of the uniform background (relative to total peak mass 1.0).
    pub base_mass: f64,
}

impl TemporalModel {
    /// The default day model: morning (8 h) and evening (18 h) peaks over a
    /// uniform base.
    pub fn day_default(start: Ts, span: Dur) -> Self {
        Self {
            start,
            span,
            peaks: vec![(8 * 3600, 1.0), (18 * 3600, 0.8)],
            peak_sigma: 1800.0,
            base_mass: 0.8,
        }
    }

    /// Draw one release timestamp within the window.
    pub fn sample(&self, rng: &mut StdRng) -> Ts {
        let peak_mass: f64 = self
            .peaks
            .iter()
            .map(|&(c, m)| m * self.window_peak_fraction(c))
            .sum();
        let total = self.base_mass + peak_mass;
        let u: f64 = rng.gen_range(0.0..total);
        if u < self.base_mass || peak_mass <= 0.0 {
            return self.start + rng.gen_range(0..self.span.max(1));
        }
        // pick a peak proportionally to its in-window mass
        let mut acc = self.base_mass;
        for &(c, m) in &self.peaks {
            acc += m * self.window_peak_fraction(c);
            if u <= acc {
                // rejection-sample a Gaussian draw into the window
                for _ in 0..64 {
                    let z = gaussian(rng) * self.peak_sigma;
                    let t = c + z as Ts;
                    if t >= self.start && t < self.start + self.span {
                        return t;
                    }
                }
                break;
            }
        }
        self.start + rng.gen_range(0..self.span.max(1))
    }

    /// Rough fraction of a peak's mass inside the window (for mixture
    /// weighting): 1 when the centre is inside, decaying with distance.
    fn window_peak_fraction(&self, center: Ts) -> f64 {
        let end = self.start + self.span;
        if center >= self.start && center < end {
            return 1.0;
        }
        let d = if center < self.start {
            (self.start - center) as f64
        } else {
            (center - end) as f64
        };
        (-0.5 * (d / self.peak_sigma).powi(2)).exp()
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_window() {
        let m = TemporalModel::day_default(7 * 3600, 2 * 3600);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            let t = m.sample(&mut rng);
            assert!((7 * 3600..9 * 3600).contains(&t), "t = {t}");
        }
    }

    #[test]
    fn rush_hour_denser_than_base() {
        // Window 7–9 h includes the 8 h peak: the 7:30–8:30 h hour should
        // attract more mass than 7:00–7:30 + 8:30–9:00 combined-ish.
        let m = TemporalModel::day_default(7 * 3600, 2 * 3600);
        let mut rng = StdRng::seed_from_u64(2);
        let mut center = 0;
        let n = 20_000;
        for _ in 0..n {
            let t = m.sample(&mut rng);
            if (7 * 3600 + 1800..8 * 3600 + 1800).contains(&t) {
                center += 1;
            }
        }
        let frac = center as f64 / n as f64;
        assert!(frac > 0.55, "peak-hour fraction {frac:.3}");
    }

    #[test]
    fn no_peaks_in_window_falls_back_to_uniform() {
        let m = TemporalModel {
            start: 0,
            span: 3600,
            peaks: vec![(12 * 3600, 1.0)],
            peak_sigma: 600.0,
            base_mass: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let t = m.sample(&mut rng);
            assert!((0..3600).contains(&t));
        }
    }
}
