//! Spatial demand model: hotspot mixtures over road nodes.
//!
//! Demand is a mixture of Gaussian hotspots (city centres, stations) over a
//! uniform background. Each node gets a sampling weight; pick-up and
//! drop-off nodes are drawn from the weighted distribution, with drop-offs
//! re-drawn until the trip meets a minimum direct travel time (riders do
//! not hail a cab to cross the street).

use rand::rngs::StdRng;
use rand::Rng;
use watter_core::NodeId;
use watter_road::RoadGraph;

/// Weighted node-sampling model.
#[derive(Clone, Debug)]
pub struct HotspotModel {
    /// Cumulative weights over node ids (for O(log n) sampling).
    cumulative: Vec<f64>,
}

impl HotspotModel {
    /// Build a model with `count` hotspots of relative spatial `spread`
    /// (fraction of the bounding-box diagonal), where `fraction` of total
    /// mass sits in the hotspots and the rest is uniform.
    pub fn build(
        graph: &RoadGraph,
        count: usize,
        spread: f64,
        fraction: f64,
        rng: &mut StdRng,
    ) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        let n = graph.node_count();
        assert!(n > 0, "hotspots need nodes");
        // Bounding box for scale.
        let xs: Vec<f64> = graph.coords().iter().map(|c| c.0).collect();
        let ys: Vec<f64> = graph.coords().iter().map(|c| c.1).collect();
        let (min_x, max_x) = (
            xs.iter().cloned().fold(f64::INFINITY, f64::min),
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        let (min_y, max_y) = (
            ys.iter().cloned().fold(f64::INFINITY, f64::min),
            ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        let diag = ((max_x - min_x).powi(2) + (max_y - min_y).powi(2)).sqrt();
        let sigma = (spread * diag).max(1e-9);
        // Hotspot centres drawn uniformly inside the middle 80% of the box.
        let centers: Vec<(f64, f64)> = (0..count.max(1))
            .map(|_| {
                (
                    rng.gen_range(min_x + 0.1 * (max_x - min_x)..=max_x - 0.1 * (max_x - min_x)),
                    rng.gen_range(min_y + 0.1 * (max_y - min_y)..=max_y - 0.1 * (max_y - min_y)),
                )
            })
            .collect();
        let uniform_w = (1.0 - fraction) / n as f64;
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for (x, y) in graph.coords() {
            let mut hot = 0.0;
            for (cx, cy) in &centers {
                let d2 = (x - cx).powi(2) + (y - cy).powi(2);
                hot += (-d2 / (2.0 * sigma * sigma)).exp();
            }
            // Normalize hotspot mass approximately per node count.
            let w = uniform_w + fraction * hot / (count.max(1) as f64 * n as f64).sqrt();
            acc += w;
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Uniform model (no hotspots).
    pub fn uniform(graph: &RoadGraph) -> Self {
        let n = graph.node_count();
        let cumulative = (1..=n).map(|i| i as f64).collect();
        Self { cumulative }
    }

    /// Draw a node.
    pub fn sample(&self, rng: &mut StdRng) -> NodeId {
        let total = *self.cumulative.last().expect("non-empty model");
        let u = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= u);
        NodeId(idx.min(self.cumulative.len() - 1) as u32)
    }

    /// Empirical concentration diagnostic: fraction of `samples` draws that
    /// land in the most popular 10% of nodes.
    pub fn concentration(&self, samples: usize, rng: &mut StdRng) -> f64 {
        let n = self.cumulative.len();
        let mut counts = vec![0u32; n];
        for _ in 0..samples {
            counts[self.sample(rng).index()] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = n.div_ceil(10);
        counts[..top].iter().map(|&c| c as f64).sum::<f64>() / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use watter_road::CityConfig;

    fn city() -> RoadGraph {
        CityConfig {
            width: 16,
            height: 16,
            ..CityConfig::default()
        }
        .generate(3)
    }

    #[test]
    fn samples_are_valid_nodes() {
        let g = city();
        let mut rng = StdRng::seed_from_u64(1);
        let m = HotspotModel::build(&g, 3, 0.1, 0.7, &mut rng);
        for _ in 0..1000 {
            let n = m.sample(&mut rng);
            assert!(n.index() < g.node_count());
        }
    }

    #[test]
    fn hotspots_concentrate_demand() {
        let g = city();
        let mut rng = StdRng::seed_from_u64(2);
        let hot = HotspotModel::build(&g, 2, 0.08, 0.85, &mut rng);
        let uni = HotspotModel::uniform(&g);
        let c_hot = hot.concentration(20_000, &mut rng);
        let c_uni = uni.concentration(20_000, &mut rng);
        assert!(
            c_hot > c_uni + 0.1,
            "hot {c_hot:.3} should exceed uniform {c_uni:.3}"
        );
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let g = city();
        let mut rng = StdRng::seed_from_u64(3);
        let uni = HotspotModel::uniform(&g);
        let c = uni.concentration(50_000, &mut rng);
        // top 10% of 256 nodes should hold ≈ 10% of draws
        assert!((c - 0.1).abs() < 0.03, "uniform concentration {c:.3}");
    }
}
