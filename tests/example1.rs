//! Integration test: the paper's Example 1 (Figure 1 + Table I).
//!
//! Reconstructs the 6-node network, the four orders and the two workers,
//! and checks the quantities the paper quotes: 12 minutes of travel for
//! the non-sharing method and 5 minutes of group-route travel for the
//! pooling-then-grouping strategy, with the optimal groups {o1, o3} and
//! {o2, o4}.

use watter::baselines::NonSharingDispatcher;
use watter::prelude::*;
use watter_core::{Measurements, NodeId, OrderId, TravelCost, WorkerId};
use watter_pool::{cliques::CliqueLimits, PlanLimits, PoolConfig};
use watter_road::graph::Edge;
use watter_sim::run;

fn network() -> RoadGraph {
    let e = |a: u32, b: u32| Edge {
        from: NodeId(a),
        to: NodeId(b),
        travel: 60,
    };
    RoadGraph::from_undirected_edges(
        vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (0.0, 1.0),
            (1.0, 1.0),
            (2.0, 1.0),
        ],
        vec![
            e(0, 1),
            e(1, 2),
            e(2, 5),
            e(5, 4),
            e(4, 3),
            e(0, 3),
            e(1, 4),
        ],
    )
}

fn orders(oracle: &CostMatrix) -> Vec<Order> {
    [(5i64, 0u32, 2u32), (8, 3, 5), (10, 3, 2), (12, 4, 5)]
        .iter()
        .enumerate()
        .map(|(i, &(t, p, d))| {
            let direct = oracle.cost(NodeId(p), NodeId(d));
            Order::from_scales(
                OrderId(i as u32),
                NodeId(p),
                NodeId(d),
                1,
                t,
                direct,
                6.0,
                2.0,
            )
        })
        .collect()
}

fn workers() -> Vec<Worker> {
    vec![
        Worker::new(WorkerId(0), NodeId(3), 4), // w1 at d
        Worker::new(WorkerId(1), NodeId(0), 4), // w2 at a
    ]
}

fn sim_cfg() -> SimConfig {
    SimConfig {
        check_period: 10,
        weights: CostWeights::default(),
        drain_horizon: 3600,
        parallelism: watter::core::DispatchParallelism::SEQUENTIAL,
    }
}

fn run_watter() -> Measurements {
    let graph = network();
    let oracle = CostMatrix::build(&graph);
    let grid = GridIndex::build(&graph, 2);
    let mut d = WatterDispatcher::new(
        WatterConfig {
            pool: PoolConfig {
                limits: PlanLimits { capacity: 4 },
                clique: CliqueLimits::default(),
                weights: CostWeights::default(),
            },
            spatial: Some(watter_pool::SpatialPrune::for_graph(&graph, grid.clone())),
            grid,
            check_period: 10,
            cancellation: watter_sim::CancellationModel::OFF,
            cancel_seed: 0,
            parallelism: watter::core::DispatchParallelism::SEQUENTIAL,
        },
        OnlinePolicy,
    );
    run(orders(&oracle), workers(), &mut d, &oracle, sim_cfg())
}

#[test]
fn figure1_travel_times_match_example() {
    let g = network();
    let m = CostMatrix::build(&g);
    // The costs Example 1's arithmetic relies on (in minutes):
    assert_eq!(m.cost(NodeId(0), NodeId(2)), 120); // a -> c = 2
    assert_eq!(m.cost(NodeId(3), NodeId(2)), 180); // d -> c = 3
    assert_eq!(m.cost(NodeId(3), NodeId(5)), 120); // d -> f = 2
    assert_eq!(m.cost(NodeId(4), NodeId(5)), 60); // e -> f = 1
    assert_eq!(g.edge_count(), 14); // 7 undirected streets
}

#[test]
fn non_sharing_totals_twelve_minutes() {
    let graph = network();
    let oracle = CostMatrix::build(&graph);
    let mut d = NonSharingDispatcher::new();
    let m = run(orders(&oracle), workers(), &mut d, &oracle, sim_cfg());
    assert_eq!(m.served_orders, 4);
    // ⟨d,f,e,f⟩ = 4 min and ⟨a,c,d,c⟩ = 8 min.
    assert_eq!(m.worker_travel, 12.0 * 60.0);
}

#[test]
fn pooling_reaches_the_optimal_five_minutes() {
    let m = run_watter();
    assert_eq!(m.served_orders, 4);
    assert_eq!(m.rejected_orders, 0);
    // Optimal grouping {o1,o3} (3 min) + {o2,o4} (2 min).
    assert_eq!(m.route_travel(), 5.0 * 60.0);
    // Both orders rode in pairs.
    assert_eq!(m.group_size_hist, vec![0, 4]);
}

#[test]
fn pooling_beats_non_sharing_overall() {
    let graph = network();
    let oracle = CostMatrix::build(&graph);
    let mut ns = NonSharingDispatcher::new();
    let ns_m = run(orders(&oracle), workers(), &mut ns, &oracle, sim_cfg());
    let wt_m = run_watter();
    assert!(wt_m.worker_travel < ns_m.worker_travel);
    assert!(wt_m.unified_cost() < ns_m.unified_cost());
}
