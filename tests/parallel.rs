//! Determinism contract of the parallel sharded dispatch engine.
//!
//! The engine parallelizes only *pure* computation (pair-edge evaluation,
//! clique subtree search, best-group recomputation, nearest-idle fleet
//! scans) and commits every state change sequentially in a canonical
//! order, so the same scenario seed must yield **bit-identical
//! measurements for every thread count and every shard count**. These
//! tests pin that contract end to end, over all three city profiles and
//! over order streams deliberately straddling shard boundaries.
//!
//! Wall-clock decision time is the one measurement that legitimately
//! varies run to run; outcome tuples therefore compare served/rejected
//! counts and the exact bit patterns of the paper's cost metrics,
//! mirroring `tests/accel.rs`.

use proptest::prelude::*;
use watter::prelude::*;
use watter_core::{DispatchParallelism, Measurements};
use watter_strategy::OnlinePolicy;

/// Thread × shard settings swept against the sequential baseline. Thread
/// counts cover the proptest contract ({1, 2, 4, 8}); shard counts mix
/// no-op sharding (1), row bands that divide the grid evenly, and a shard
/// count that doesn't divide the grid dimension (uneven bands).
const SWEEP: [(usize, usize); 5] = [(1, 4), (2, 1), (2, 2), (4, 3), (8, 6)];

/// The outcome fingerprint that must be bit-identical across settings.
fn fingerprint(m: &Measurements) -> (u64, u64, u64, u64, u64) {
    (
        m.served_orders,
        m.rejected_orders,
        m.extra_time().to_bits(),
        m.unified_cost().to_bits(),
        m.mean_group_size().to_bits(),
    )
}

fn run_with(scenario: &mut Scenario, parallelism: DispatchParallelism) -> Measurements {
    use watter::runner::{sim_config, watter_config};
    scenario.params.parallelism = parallelism;
    let mut d = WatterDispatcher::new(watter_config(scenario), OnlinePolicy);
    watter_sim::run(
        scenario.orders.clone(),
        scenario.workers.clone(),
        &mut d,
        scenario.oracle.as_ref(),
        sim_config(scenario),
    )
}

proptest! {
    // Each case runs the engine six times on 150 orders; keep the case
    // count modest so single-core CI stays fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed ⇒ bit-identical measurements for every thread count and
    /// shard count, on every city profile.
    #[test]
    fn engine_outcomes_are_thread_and_shard_invariant(
        pidx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let mut params = ScenarioParams::default_for(CityProfile::ALL[pidx]);
        params.n_orders = 150;
        params.n_workers = 15;
        params.city_side = 12;
        params.seed = seed;
        let mut scenario = Scenario::build(params);

        let baseline = run_with(&mut scenario, DispatchParallelism::SEQUENTIAL);
        prop_assert!(
            baseline.served_orders > 0,
            "degenerate scenario: nothing served, the sweep would be inert"
        );
        for (threads, shards) in SWEEP {
            let m = run_with(&mut scenario, DispatchParallelism { threads, shards });
            prop_assert_eq!(
                fingerprint(&m),
                fingerprint(&baseline),
                "threads={} shards={} diverged from sequential", threads, shards
            );
        }
    }
}

/// Shard-boundary stress: every pick-up lands in one of the two grid rows
/// adjacent to a shard boundary (for 2 shards on a 10-row grid, rows 4
/// and 5), so essentially every shareable pair straddles shards and every
/// group's members span two owner shards. Outcomes must still match the
/// sequential engine bit for bit — the share graph is global; shards only
/// partition the proposal sweep and insert fan-out.
#[test]
fn shard_boundary_straddling_orders_match_sequential() {
    let side = 20usize;
    let mut params = ScenarioParams::default_for(CityProfile::Chengdu);
    params.n_orders = 120;
    params.n_workers = 12;
    params.city_side = side;
    params.grid_dim = 10;
    params.seed = 4242;
    let mut scenario = Scenario::build(params);

    // Rewrite every pick-up into the two city rows that map to the grid
    // rows flanking the 2-shard boundary (grid rows 4 and 5 of 10), while
    // keeping each order's column. Recompute the direct costs the stream
    // generator had cached for the old pick-ups.
    let boundary_rows = [(side / 2 - 1) as u32, (side / 2) as u32];
    let orders: Vec<_> = scenario
        .orders
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let col = o.pickup.0 % side as u32;
            let pickup = watter_core::NodeId(boundary_rows[i % 2] * side as u32 + col);
            let direct = watter_core::TravelCost::cost(&scenario.oracle, pickup, o.dropoff);
            watter_core::Order {
                pickup,
                direct_cost: direct,
                deadline: o.release + 3 * direct,
                wait_limit: 2 * direct,
                ..o.clone()
            }
        })
        .filter(|o| o.direct_cost > 0)
        .collect();
    scenario.orders = orders;

    let baseline = run_with(&mut scenario, DispatchParallelism::SEQUENTIAL);
    assert!(baseline.served_orders > 0, "boundary stream served nothing");
    for (threads, shards) in [(2usize, 2usize), (4, 2), (4, 5), (8, 10)] {
        let m = run_with(&mut scenario, DispatchParallelism { threads, shards });
        assert_eq!(
            fingerprint(&m),
            fingerprint(&baseline),
            "threads={threads} shards={shards} diverged on boundary-straddling stream"
        );
    }
}
